"""The socket transport: framed envelopes over asyncio TCP streams.

:class:`TcpTransport` implements the runtime's
:class:`~repro.runtime.transport.Transport` contract with real
sockets: local inboxes come from
:class:`~repro.runtime.transport.MailboxTransport`, and anything
addressed off-process is framed by :mod:`repro.net.codec` and written
to a pooled per-endpoint connection.

Connection handling, in one place:

- **lazy dial** -- a peer connection is opened on the first frame
  addressed to its endpoint, never at startup, so process launch order
  does not matter;
- **reconnect** -- a failed dial or a broken write backs off
  exponentially (``dial_backoff_base`` doubling to ``dial_backoff_cap``)
  and retries with the frame still in hand, so a worker restart costs
  latency, not messages queued on the sender;
- **backpressure** -- each endpoint's send queue is bounded
  (``send_queue_frames``); a sender outrunning a dead peer eventually
  blocks in :meth:`TcpTransport.send` instead of growing memory;
- **graceful close** -- :meth:`TcpTransport.aclose` drains send
  queues (bounded by ``close_grace_seconds``), closes every stream,
  and stops the listener.

``force_wire=True`` disables the local-inbox fast path so even
self-addressed envelopes make a full trip through the socket stack --
the runtime-vs-simulator parity test runs the whole engine through
this mode on localhost.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional, Set

from repro.core.attributes import NodeId
from repro.net.codec import CodecError, FrameDecoder, encode_frame
from repro.net.directory import Endpoint, PeerDirectory
from repro.obs import log, names
from repro.runtime.messages import Envelope
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.transport import MailboxTransport


class _PeerLink:
    """One pooled outbound connection: bounded queue + sender task."""

    def __init__(self, transport: "TcpTransport", endpoint: Endpoint) -> None:
        self.transport = transport
        self.endpoint = endpoint
        self.queue: "asyncio.Queue[bytes]" = asyncio.Queue(
            maxsize=transport.send_queue_frames
        )
        self._writer: Optional[asyncio.StreamWriter] = None
        self._sender_task: Optional["asyncio.Task[None]"] = None
        self._closing = False

    # ------------------------------------------------------------------
    async def enqueue(self, frame: bytes) -> None:
        """Queue ``frame`` for delivery (blocks when the queue is full)."""
        if self._sender_task is None or self._sender_task.done():
            self._sender_task = asyncio.ensure_future(self._sender())
        await self.queue.put(frame)

    def idle(self) -> bool:
        return self.queue.empty()

    # ------------------------------------------------------------------
    async def _sender(self) -> None:
        """Drain the queue onto the stream, redialing as needed."""
        metrics = self.transport.metrics
        while not self._closing:
            frame = await self.queue.get()
            backoff = self.transport.dial_backoff_base
            while not self._closing:
                try:
                    writer = await self._connect()
                    writer.write(frame)
                    await writer.drain()
                    metrics.incr(names.NET_FRAMES_SENT, endpoint=str(self.endpoint))
                    metrics.incr(
                        names.NET_BYTES_SENT, len(frame), endpoint=str(self.endpoint)
                    )
                    break
                except (ConnectionError, OSError):
                    # The peer is down or restarting: drop the dead
                    # stream, back off, and retry the same frame -- the
                    # queue keeps ordering, the bounded size keeps memory.
                    self._drop_writer()
                    metrics.incr(names.NET_RECONNECTS, endpoint=str(self.endpoint))
                    log.emit(
                        names.LOG_NET_RECONNECT,
                        lane=names.LANE_TRANSPORT,
                        severity="warning",
                        endpoint=str(self.endpoint),
                        backoff_seconds=backoff,
                    )
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2.0, self.transport.dial_backoff_cap)

    async def _connect(self) -> asyncio.StreamWriter:
        if self._writer is not None and not self._writer.is_closing():
            return self._writer
        started = time.monotonic()
        reader, writer = await asyncio.open_connection(*self.endpoint.as_pair())
        del reader  # outbound links are write-only; the peer never replies
        self.transport.metrics.observe(
            names.NET_DIAL_LATENCY_S,
            time.monotonic() - started,
            endpoint=str(self.endpoint),
        )
        self._writer = writer  # noqa: REMO421 -- only the single sender task dials
        return writer

    def _drop_writer(self) -> None:
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()

    # ------------------------------------------------------------------
    async def aclose(self, grace_seconds: float) -> None:
        """Bounded-grace drain, then tear the link down."""
        deadline = time.monotonic() + grace_seconds
        while not self.queue.empty() and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        self.close()
        if self._sender_task is not None:
            try:
                await asyncio.wait_for(
                    asyncio.gather(self._sender_task, return_exceptions=True),
                    timeout=grace_seconds,
                )
            except asyncio.TimeoutError:
                pass

    def close(self) -> None:
        self._closing = True
        if self._sender_task is not None and not self._sender_task.done():
            self._sender_task.cancel()
        self._drop_writer()


class TcpTransport(MailboxTransport):
    """Length-prefix-framed envelope delivery over asyncio TCP."""

    transport_kind = "tcp"

    def __init__(
        self,
        directory: PeerDirectory,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        metrics: Optional[RuntimeMetrics] = None,
        force_wire: bool = False,
        codec: Optional[int] = None,
        send_queue_frames: int = 1024,
        dial_backoff_base: float = 0.05,
        dial_backoff_cap: float = 2.0,
        close_grace_seconds: float = 1.0,
    ) -> None:
        super().__init__(metrics=metrics)
        self.directory = directory
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.force_wire = force_wire
        self.codec = codec
        self.send_queue_frames = send_queue_frames
        self.dial_backoff_base = dial_backoff_base
        self.dial_backoff_cap = dial_backoff_cap
        self.close_grace_seconds = close_grace_seconds
        self._server: Optional[asyncio.base_events.Server] = None
        self._links: Dict[Endpoint, _PeerLink] = {}
        self._inbound_writers: Set[asyncio.StreamWriter] = set()
        self._start_lock = asyncio.Lock()
        #: Frames this process put on the wire / routed off the wire.
        #: Their difference is the in-flight count ``idle`` consults in
        #: ``force_wire`` (single-process) mode, where every wire frame
        #: loops back to this very transport.
        self._wire_frames_out = 0
        self._wire_frames_in = 0

    # ------------------------------------------------------------------
    # Listener
    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> Endpoint:
        """The bound listen endpoint (resolved once started)."""
        return Endpoint(self.listen_host, self.listen_port)

    async def start(self) -> Endpoint:
        """Start the listener (idempotent); returns the bound endpoint."""
        async with self._start_lock:
            if self._server is None:
                self._server = await asyncio.start_server(
                    self._serve_connection, self.listen_host, self.listen_port
                )
                self.listen_port = self._server.sockets[0].getsockname()[1]
        return self.endpoint

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Inbound half: parse frames off one peer's stream and route."""
        self._inbound_writers.add(writer)
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                self.metrics.incr(names.NET_BYTES_RECEIVED, len(chunk))
                try:
                    frames = decoder.feed(chunk)
                except CodecError:
                    # Framing is lost; nothing on this stream can be
                    # trusted anymore.  Count and drop the connection.
                    self.metrics.incr(names.NET_FRAMES_DROPPED, reason="corrupt")
                    log.emit(
                        names.LOG_NET_FRAME_DROPPED,
                        lane=names.LANE_TRANSPORT,
                        severity="error",
                        reason="corrupt",
                    )
                    return
                for dest, envelope in frames:
                    self._route_inbound(dest, envelope)
        except (ConnectionError, OSError):
            return
        except asyncio.CancelledError:
            # Loop teardown cancels handler tasks still blocked in
            # read(); exiting quietly here (the connection is going
            # away regardless) keeps shutdown free of spurious
            # "exception in callback" noise from the streams layer.
            return
        finally:
            self._inbound_writers.discard(writer)  # noqa: REMO421 -- set add/discard of own entry
            writer.close()

    def _route_inbound(self, dest: NodeId, envelope: Envelope) -> None:
        self._wire_frames_in += 1
        self.metrics.incr(names.NET_FRAMES_RECEIVED)
        if not self.deliver_local(dest, envelope):
            # Arrived at the right process for the directory's idea of
            # ``dest``, but no such inbox lives here (stale shard map,
            # mid-restart window).  At-most-once: count and drop.
            self.metrics.incr(names.NET_FRAMES_DROPPED, reason="unknown_address")
            log.emit(
                names.LOG_NET_FRAME_DROPPED,
                lane=names.LANE_TRANSPORT,
                severity="warning",
                reason="unknown_address",
                dest=dest,
            )

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    async def send(self, to: NodeId, envelope: Envelope) -> bool:
        if not self.force_wire and self.deliver_local(to, envelope):
            self._count_sent()
            return True
        endpoint = self.directory.endpoint_of(to)
        if endpoint is None:
            return False
        await self.start()
        link = self._links.get(endpoint)
        if link is None:
            link = self._links[endpoint] = _PeerLink(self, endpoint)
        frame = encode_frame(to, envelope, self.codec)
        self._wire_frames_out += 1
        await link.enqueue(frame)
        self._count_sent()
        return True

    def idle(self) -> bool:
        if any(not link.idle() for link in self._links.values()):
            return False
        if self.force_wire and self._wire_frames_out != self._wire_frames_in:
            # Single-process wire mode: every frame sent loops back to
            # this transport, so out minus in is the exact in-flight
            # count (queued in the kernel or awaiting the reader task).
            return False
        return super().idle()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        for link in list(self._links.values()):
            await link.aclose(self.close_grace_seconds)
        self._links.clear()  # noqa: REMO421 -- iterates a snapshot; teardown-only path
        server, self._server = self._server, None
        if server is not None:
            server.close()
            try:
                await asyncio.wait_for(server.wait_closed(), timeout=self.close_grace_seconds)
            except asyncio.TimeoutError:
                pass
        for writer in list(self._inbound_writers):
            writer.close()
        self._inbound_writers.clear()

    def close(self) -> None:
        """Sync best-effort teardown (no drain; prefer :meth:`aclose`)."""
        for link in list(self._links.values()):
            link.close()
        self._links.clear()
        server, self._server = self._server, None
        if server is not None:
            server.close()
        for writer in list(self._inbound_writers):
            writer.close()
        self._inbound_writers.clear()
