"""The wire codec: length-prefixed frames around serialized envelopes.

Everything codec-ish lives in this one module so the wire format has a
single owner.  A frame is::

    offset  size  field
    0       2     magic 0x524D ("RM")
    2       1     protocol version (PROTOCOL_VERSION)
    3       1     payload codec (0 = JSON, 1 = msgpack)
    4       8     destination NodeId (signed big-endian)
    12      4     payload length N (unsigned big-endian)
    16      N     payload bytes

The destination rides in the header because one process hosts many
addresses (a worker hosts a shard of node agents plus its control
inbox): the frame reader routes on the header without decoding the
payload.  Length is bounded by :data:`MAX_FRAME_BYTES` so a corrupt or
hostile peer cannot make the reader allocate unbounded memory.

Payloads are a tagged dict per :class:`~repro.runtime.messages.Envelope`
subclass, encoded as msgpack when the optional dependency is importable
and JSON otherwise -- the codec byte says which, and a decoder missing
msgpack rejects msgpack frames with :class:`CodecError` rather than
guessing.  Version negotiation is deliberately minimal: the version
byte must be one of :data:`COMPAT_VERSIONS`, and anything else is a
:class:`FrameError` the connection handler treats as fatal for that
connection (both ends of a deployment normally run the same build, so
"negotiation" is refusal).

Version history: v1 is the original frame; v2 (current) adds an
*optional* ``"tc"`` key to tick/update payloads carrying the
distributed-trace context as ``[trace_id_hex, span_id]``.  v1 frames
-- and v2 frames without the key -- decode to envelopes with
``trace_ctx=None``, so old peers interoperate for the payload schema
both sides understand.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.attributes import NodeAttributePair, NodeId
from repro.obs.trace import TraceContext
from repro.runtime.messages import (
    Envelope,
    HeartbeatEnvelope,
    StopEnvelope,
    TickEnvelope,
    UpdateEnvelope,
)
from repro.simulation.messages import Reading

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - the common case in this image
    msgpack = None

#: First two frame bytes; "RM" for REMO.
MAGIC = 0x524D

#: Bump on any change to the frame layout or payload schema.
PROTOCOL_VERSION = 2

#: Versions this build decodes.  v1 payloads are a strict subset of
#: v2 (no ``"tc"`` trace-context key), so accepting both is free.
COMPAT_VERSIONS = frozenset({1, PROTOCOL_VERSION})

#: Payload codec ids (the header's codec byte).
CODEC_JSON = 0
CODEC_MSGPACK = 1

#: Refuse frames claiming a payload larger than this (8 MiB): a bad
#: length prefix must fail fast, not trigger a giant allocation.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: ``magic | version | codec | dest | length``.
_HEADER = struct.Struct(">HBBqI")
HEADER_BYTES = _HEADER.size


class CodecError(ValueError):
    """The payload bytes do not decode to a known envelope."""


class FrameError(CodecError):
    """The frame header is corrupt, foreign, or oversized.

    A connection that produces one of these is unrecoverable -- stream
    framing is lost -- so handlers drop the connection.
    """


def default_codec() -> int:
    """The codec this build prefers (msgpack when importable)."""
    return CODEC_MSGPACK if msgpack is not None else CODEC_JSON


# ---------------------------------------------------------------------------
# Envelope <-> plain dict
# ---------------------------------------------------------------------------
def _payload_items(payload: Dict[NodeAttributePair, Reading]) -> List[List[Any]]:
    return [
        [pair.node, pair.attribute, reading.value, reading.sampled_at]
        for pair, reading in sorted(payload.items())
    ]


def _trace_ctx_item(ctx: TraceContext) -> List[Any]:
    return [ctx.trace_id, ctx.span_id]


def _obj_trace_ctx(obj: Dict[str, Any]) -> Optional[TraceContext]:
    """The optional ``"tc"`` key back into a context (``None`` if absent).

    Malformed contexts raise (callers wrap into :class:`CodecError`):
    a peer that *sends* the key must send it well-formed.
    """
    item = obj.get("tc")
    if item is None:
        return None
    trace_id, span_id = item
    if not isinstance(trace_id, str) or len(trace_id) != 32:
        raise ValueError(f"bad trace id in trace context: {trace_id!r}")
    int(trace_id, 16)
    return TraceContext(trace_id=trace_id, span_id=int(span_id))


def envelope_to_obj(envelope: Envelope) -> Dict[str, Any]:
    """Lower an envelope to a JSON/msgpack-safe tagged dict."""
    if isinstance(envelope, TickEnvelope):
        obj: Dict[str, Any] = {
            "kind": "tick",
            "period": envelope.period,
            "sent_monotonic": envelope.sent_monotonic,
        }
        if envelope.trace_ctx is not None:
            obj["tc"] = _trace_ctx_item(envelope.trace_ctx)
        return obj
    if isinstance(envelope, UpdateEnvelope):
        obj = {
            "kind": "update",
            "sender": envelope.sender,
            "tree": sorted(envelope.tree),
            "period": envelope.period,
            "payload": _payload_items(envelope.payload),
        }
        if envelope.trace_ctx is not None:
            obj["tc"] = _trace_ctx_item(envelope.trace_ctx)
        return obj
    if isinstance(envelope, HeartbeatEnvelope):
        return {"kind": "heartbeat", "sender": envelope.sender, "period": envelope.period}
    if isinstance(envelope, StopEnvelope):
        return {"kind": "stop"}
    raise CodecError(f"cannot encode envelope type {type(envelope).__name__}")


def _obj_tick(obj: Dict[str, Any]) -> Envelope:
    return TickEnvelope(
        period=int(obj["period"]),
        sent_monotonic=float(obj["sent_monotonic"]),
        trace_ctx=_obj_trace_ctx(obj),
    )


def _obj_update(obj: Dict[str, Any]) -> Envelope:
    payload = {
        NodeAttributePair(int(node), str(attr)): Reading(
            value=float(value), sampled_at=float(sampled_at)
        )
        for node, attr, value, sampled_at in obj["payload"]
    }
    return UpdateEnvelope(
        sender=int(obj["sender"]),
        tree=frozenset(str(a) for a in obj["tree"]),
        period=int(obj["period"]),
        payload=payload,
        trace_ctx=_obj_trace_ctx(obj),
    )


def _obj_heartbeat(obj: Dict[str, Any]) -> Envelope:
    return HeartbeatEnvelope(sender=int(obj["sender"]), period=int(obj["period"]))


_DECODERS: Dict[str, Callable[[Dict[str, Any]], Envelope]] = {
    "tick": _obj_tick,
    "update": _obj_update,
    "heartbeat": _obj_heartbeat,
    "stop": lambda obj: StopEnvelope(),
}


def envelope_from_obj(obj: Dict[str, Any]) -> Envelope:
    """Raise :class:`CodecError` unless ``obj`` is a valid tagged dict."""
    if not isinstance(obj, dict):
        raise CodecError(f"envelope payload must be a mapping, got {type(obj).__name__}")
    kind = obj.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise CodecError(f"unknown envelope kind {kind!r}")
    try:
        return decoder(obj)
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed {kind!r} envelope: {exc}") from exc


# ---------------------------------------------------------------------------
# Payload bytes
# ---------------------------------------------------------------------------
def encode_payload(envelope: Envelope, codec: Optional[int] = None) -> Tuple[int, bytes]:
    """Serialize one envelope; returns ``(codec_id, payload_bytes)``."""
    codec = default_codec() if codec is None else codec
    obj = envelope_to_obj(envelope)
    if codec == CODEC_JSON:
        return CODEC_JSON, json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if codec == CODEC_MSGPACK:
        if msgpack is None:
            raise CodecError("msgpack codec requested but msgpack is not installed")
        return CODEC_MSGPACK, msgpack.packb(obj, use_bin_type=True)
    raise CodecError(f"unknown codec id {codec}")


def decode_payload(codec: int, payload: bytes) -> Envelope:
    if codec == CODEC_JSON:
        try:
            obj = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"payload is not valid JSON: {exc}") from exc
    elif codec == CODEC_MSGPACK:
        if msgpack is None:
            raise CodecError("frame uses the msgpack codec but msgpack is not installed")
        try:
            obj = msgpack.unpackb(payload, raw=False)
        except Exception as exc:
            raise CodecError(f"payload is not valid msgpack: {exc}") from exc
    else:
        raise CodecError(f"unknown codec id {codec}")
    return envelope_from_obj(obj)


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------
def encode_frame(dest: NodeId, envelope: Envelope, codec: Optional[int] = None) -> bytes:
    """One wire frame carrying ``envelope`` addressed to ``dest``."""
    codec_id, payload = encode_payload(envelope, codec)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, codec_id, dest, len(payload))
    return header + payload


def decode_header(header: bytes) -> Tuple[int, NodeId, int]:
    """Validate a 16-byte header; returns ``(codec, dest, length)``."""
    magic, version, codec, dest, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad magic 0x{magic:04x} (expected 0x{MAGIC:04x})")
    if version not in COMPAT_VERSIONS:
        raise FrameError(
            f"protocol version {version} not supported (this build speaks "
            f"{sorted(COMPAT_VERSIONS)})"
        )
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"declared payload of {length} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return codec, dest, length


class FrameDecoder:
    """Incremental frame parser over an untrusted byte stream.

    Feed it whatever chunks the socket yields; it emits complete
    ``(dest, envelope)`` pairs and buffers the rest.  Corruption
    (:class:`FrameError` / :class:`CodecError`) propagates to the
    caller, which should drop the connection -- once framing is lost
    there is no way to resynchronize a length-prefixed stream.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held waiting for a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Tuple[NodeId, Envelope]]:
        self._buffer.extend(data)
        frames: List[Tuple[NodeId, Envelope]] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return frames
            codec, dest, length = decode_header(bytes(self._buffer[:HEADER_BYTES]))
            end = HEADER_BYTES + length
            if len(self._buffer) < end:
                return frames
            payload = bytes(self._buffer[HEADER_BYTES:end])
            del self._buffer[:end]
            frames.append((dest, decode_payload(codec, payload)))
