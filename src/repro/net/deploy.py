"""``repro deploy``: one plan, many processes, real sockets.

The deployment model keeps every process *deterministically
reconstructible* instead of shipping objects between processes: a
:class:`DeploySpec` (a small JSON document) names the workload
parameters, scheme, runtime config, shard assignment, and endpoint
table, and every child process independently rebuilds the identical
cluster, task list, plan, and ground-truth
:class:`~repro.cluster.metrics.MetricRegistry` from it.  (Planning and
sampling are fully seeded and hash-order independent, so N processes
re-planning from one spec agree bit-for-bit -- and a worker that is
killed and restarted mid-run rebuilds the same world and resyncs its
registry replica off the next tick's period number.)

Topology: the collector runs in its own process and drives the clock
-- one :class:`~repro.runtime.messages.TickEnvelope` per worker per
period, addressed to the worker's reserved *control address*
(:func:`control_address`), which the worker fans out to its local node
agents.  Update and heartbeat envelopes flow the other way, straight
from agents to the collector (or to parent nodes, which may live in a
different worker) through each process's
:class:`~repro.net.tcp.TcpTransport`.

The supervisor (:func:`run_deploy`) spawns children, waits for
readiness files, restarts crashed workers with a bounded budget,
optionally injects a chaos kill, and merges the children's metric
dumps into one :class:`~repro.runtime.report.RuntimeReport` whose
``as_dict`` output is shape-identical to ``repro run --json``.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.checks import check_shard_assignment
from repro.checks.diagnostics import DiagnosticReport
from repro.cluster.node import Cluster
from repro.core.attributes import NodeId
from repro.core.cost import CostModel
from repro.core.plan import MonitoringPlan, ShardedPlan
from repro.core.planner import RemoPlanner
from repro.core.schemes import OneSetPlanner, SingletonSetPlanner
from repro.net.directory import Endpoint, PeerDirectory
from repro.obs import log, names
from repro.runtime.config import DropPolicy, RuntimeConfig
from repro.runtime.messages import MAX_COLLECTOR_SHARDS, collector_shard_address
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.report import RuntimePeriodSample, RuntimeReport
from repro.workloads.presets import quickstart_workload, sampled_workload

#: Worker control inboxes live at ``CONTROL_ADDRESS_BASE - rank`` --
#: below every plan NodeId (>= 0) and distinct from the collector (-1).
CONTROL_ADDRESS_BASE = -1000

#: A worker that crashes more than this many times stays down.
MAX_RESTARTS_PER_WORKER = 3

PLANNERS = {
    "remo": RemoPlanner,
    "singleton": SingletonSetPlanner,
    "one-set": OneSetPlanner,
}


def control_address(rank: int) -> NodeId:
    """The reserved inbox address of worker ``rank``'s control loop."""
    if rank < 0:
        raise ValueError(f"rank must be >= 0, got {rank}")
    return CONTROL_ADDRESS_BASE - rank


def shard_nodes(nodes: Sequence[NodeId], workers: int) -> List[List[NodeId]]:
    """Split ``nodes`` round-robin into ``workers`` balanced shards.

    Deterministic (input is sorted first) and balanced to within one
    node; returns one possibly-empty list per worker rank.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    shards: List[List[NodeId]] = [[] for _ in range(workers)]
    for index, node in enumerate(sorted(nodes)):
        shards[index % workers].append(node)
    return shards


def participating_nodes(plan: MonitoringPlan) -> List[NodeId]:
    """Every node that appears in any of the plan's trees, sorted."""
    found = {node for result in plan.trees.values() for node in result.tree.nodes}
    return sorted(found)


def allocate_endpoints(count: int, host: str = "127.0.0.1") -> List[Endpoint]:
    """Reserve ``count`` distinct free ports on ``host``.

    Binds ephemeral sockets to learn free port numbers, then closes
    them; all sockets are held open until every port is known so the
    OS cannot hand the same port out twice within one call.
    """
    sockets: List[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
        return [Endpoint(host, sock.getsockname()[1]) for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


# ---------------------------------------------------------------------------
# The spec: everything a child process needs to rebuild its world
# ---------------------------------------------------------------------------
@dataclass
class DeploySpec:
    """The JSON-serializable contract between supervisor and children."""

    workload: Dict[str, Any]
    scheme: str
    periods: int
    shards: List[List[NodeId]]
    worker_endpoints: List[Endpoint]
    collector_endpoint: Endpoint
    rundir: str
    config: Dict[str, Any] = field(default_factory=dict)
    #: Collector shards co-hosted in the collector process; every shard
    #: address resolves to the collector endpoint (hash-sharded trees).
    collectors: int = 1
    #: When set, every child installs a tracer + JSONL log sink and
    #: dumps its spans to :meth:`trace_path` on exit; ``repro trace``
    #: merges the per-process artifacts into one Chrome trace.
    trace: bool = False

    @property
    def workers(self) -> int:
        return len(self.shards)

    # -- reconstruction -------------------------------------------------
    def build_workload(self) -> Tuple[Cluster, CostModel, list]:
        workload = dict(self.workload)
        preset = workload.pop("preset", None)
        if preset == "quickstart":
            return quickstart_workload()
        if preset is not None:
            raise ValueError(f"unknown workload preset {preset!r}")
        return sampled_workload(**workload)

    def build_plan(self) -> Tuple[Cluster, CostModel, MonitoringPlan]:
        cluster, cost, tasks = self.build_workload()
        plan = PLANNERS[self.scheme](cost).plan(tasks, cluster)
        return cluster, cost, plan

    def build_config(self) -> RuntimeConfig:
        config = dict(self.config)
        if "drop_policy" in config:
            config["drop_policy"] = DropPolicy(config["drop_policy"])
        return RuntimeConfig(**config)

    def build_sharded(self, plan: MonitoringPlan) -> Optional[ShardedPlan]:
        """The collector-shard layout, or ``None`` when unsharded.

        Hash mode keys on canonical attribute-set strings, so every
        process that replans from this spec derives the identical
        set -> shard assignment without shipping it in the spec.
        """
        if self.collectors <= 1:
            return None
        return ShardedPlan.build(plan, self.collectors, "hash")

    def build_directory(self) -> PeerDirectory:
        """The full address table every process shares."""
        directory = PeerDirectory()
        for rank, shard in enumerate(self.shards):
            endpoint = self.worker_endpoints[rank]
            directory.assign(shard, endpoint)
            directory.assign([control_address(rank)], endpoint)
        directory.assign(
            [collector_shard_address(shard) for shard in range(self.collectors)],
            self.collector_endpoint,
        )
        return directory

    # -- file-based coordination ---------------------------------------
    @property
    def spec_path(self) -> str:
        return os.path.join(self.rundir, "spec.json")

    def ready_path(self, role: str) -> str:
        """The readiness-marker file for ``collector`` / ``worker-N``."""
        return os.path.join(self.rundir, f"ready-{role}")

    def report_path(self, role: str) -> str:
        return os.path.join(self.rundir, f"report-{role}.json")

    def trace_path(self, role: str) -> str:
        """Per-process span artifact (JSONL) written when tracing is on."""
        return os.path.join(self.rundir, f"trace-{role}.jsonl")

    def log_path(self, role: str) -> str:
        """Per-process structured-log JSONL sink (tracing runs only)."""
        return os.path.join(self.rundir, f"log-{role}.jsonl")

    def flight_path(self, role: str) -> str:
        """Flight-recorder dump for ``role`` (crash / restart / check fail)."""
        return os.path.join(self.rundir, f"flight-{role}.json")

    @property
    def go_path(self) -> str:
        """Written by the supervisor once every process is ready."""
        return os.path.join(self.rundir, "go")

    # -- serialization -------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "periods": self.periods,
            "shards": [list(shard) for shard in self.shards],
            "worker_endpoints": [list(e.as_pair()) for e in self.worker_endpoints],
            "collector_endpoint": list(self.collector_endpoint.as_pair()),
            "rundir": self.rundir,
            "config": self.config,
            "collectors": self.collectors,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeploySpec":
        return cls(
            workload=dict(data["workload"]),
            scheme=str(data["scheme"]),
            periods=int(data["periods"]),
            shards=[[int(n) for n in shard] for shard in data["shards"]],
            worker_endpoints=[
                Endpoint(str(h), int(p)) for h, p in data["worker_endpoints"]
            ],
            collector_endpoint=Endpoint(
                str(data["collector_endpoint"][0]), int(data["collector_endpoint"][1])
            ),
            rundir=str(data["rundir"]),
            config=dict(data.get("config", {})),
            collectors=int(data.get("collectors", 1)),
            trace=bool(data.get("trace", False)),
        )

    def save(self) -> str:
        write_json_atomic(self.spec_path, self.as_dict())
        return self.spec_path

    @classmethod
    def load(cls, path: str) -> "DeploySpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def write_json_atomic(path: str, payload: Mapping[str, Any]) -> None:
    """Write-then-rename so readers never observe a torn file."""
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp_path, path)


# ---------------------------------------------------------------------------
# Spec construction + pre-launch validation
# ---------------------------------------------------------------------------
def make_spec(
    workload: Mapping[str, Any],
    scheme: str,
    workers: int,
    periods: int,
    config: Mapping[str, Any],
    rundir: Optional[str] = None,
    host: str = "127.0.0.1",
    collectors: int = 1,
    trace: bool = False,
) -> Tuple[DeploySpec, MonitoringPlan, Cluster, DiagnosticReport]:
    """Plan once, shard, allocate ports, and validate the assignment.

    Returns the saved spec, the supervisor's plan and cluster (for the
    pre-launch plan check and report headers), and the shard
    :class:`DiagnosticReport` (callers gate on its errors).
    """
    if not 1 <= collectors <= MAX_COLLECTOR_SHARDS:
        raise DeployError(
            f"collectors must be in [1, {MAX_COLLECTOR_SHARDS}], got {collectors}"
        )
    if rundir is None:
        rundir = tempfile.mkdtemp(prefix="repro-deploy-")
    else:
        os.makedirs(rundir, exist_ok=True)
    spec = DeploySpec(
        workload=dict(workload),
        scheme=scheme,
        periods=periods,
        shards=[],
        worker_endpoints=[],
        collector_endpoint=Endpoint(host, 0),
        rundir=rundir,
        config=dict(config),
        collectors=collectors,
        trace=trace,
    )
    cluster, _cost, plan = spec.build_plan()
    spec.shards = shard_nodes(participating_nodes(plan), workers)
    endpoints = allocate_endpoints(workers + 1, host=host)
    spec.worker_endpoints = endpoints[:workers]
    spec.collector_endpoint = endpoints[workers]
    shard_report = check_shard_assignment(
        participating_nodes(plan),
        spec.shards,
        [e.as_pair() for e in endpoints],
    )
    if not shard_report.has_errors:
        spec.save()
    return spec, plan, cluster, shard_report


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------
@dataclass
class DeployOutcome:
    """What one supervised deployment produced."""

    report: RuntimeReport
    spec: DeploySpec
    restarts: Dict[int, int]
    worker_reports: int
    #: Per-process span artifacts found in the rundir (tracing runs).
    trace_files: List[str] = field(default_factory=list)
    #: Flight-recorder dumps found in the rundir (crashes/restarts).
    flight_records: List[str] = field(default_factory=list)

    def restart_total(self) -> int:
        return sum(self.restarts.values())


class DeployError(RuntimeError):
    """The deployment could not complete (startup or collector failure)."""


def _wait_for_files(paths: Sequence[str], timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(os.path.exists(path) for path in paths):
            return
        time.sleep(0.02)
    missing = [path for path in paths if not os.path.exists(path)]
    raise DeployError(f"timed out after {timeout:.0f}s waiting for {what}: {missing}")


def run_deploy(
    spec: DeploySpec,
    plan: Optional[MonitoringPlan] = None,
    chaos_kill: Optional[Mapping[int, float]] = None,
    startup_timeout: float = 30.0,
    metrics: Optional[RuntimeMetrics] = None,
) -> DeployOutcome:
    """Spawn, supervise, and harvest one multi-process deployment.

    ``chaos_kill`` maps worker rank -> seconds after go at which the
    supervisor SIGKILLs that worker once (it is then restarted through
    the normal crash path -- the kill-and-restart acceptance test).

    The merged report's metrics are the union of the collector's and
    every worker's registries (counters added, histograms merged), so
    ``DeployOutcome.report.as_dict()`` has the exact ``repro run
    --json`` shape.
    """
    # Child entrypoints live in repro.net.worker; imported lazily to
    # keep module import acyclic (worker imports deploy for the spec).
    import multiprocessing

    from repro.net.worker import collector_main, worker_main

    if plan is None:
        _cluster, _cost, plan = spec.build_plan()
    merged = metrics if metrics is not None else RuntimeMetrics()
    started = time.monotonic()
    context = multiprocessing.get_context("spawn")
    restarts: Dict[int, int] = {rank: 0 for rank in range(spec.workers)}
    pending_kill = dict(chaos_kill or {})

    def spawn_worker(rank: int):
        process = context.Process(
            target=worker_main, args=(spec.spec_path, rank), daemon=True
        )
        process.start()  # noqa: REMO412 -- multiprocessing.Process.start is sync
        return process

    collector = context.Process(
        target=collector_main, args=(spec.spec_path,), daemon=True
    )
    collector.start()  # noqa: REMO412 -- multiprocessing.Process.start is sync
    workers = {rank: spawn_worker(rank) for rank in range(spec.workers)}
    go_at: Optional[float] = None
    try:
        _wait_for_files(
            [spec.ready_path("collector")]
            + [spec.ready_path(f"worker-{rank}") for rank in range(spec.workers)],
            timeout=startup_timeout,
            what="process readiness",
        )
        # Every listener is up: release the collector's clock.
        write_json_atomic(spec.go_path, {"go": True})
        go_at = time.monotonic()

        while collector.is_alive():
            now = time.monotonic()
            for rank, kill_after in list(pending_kill.items()):
                if now - go_at >= kill_after and workers[rank].is_alive():
                    # Chaos: SIGKILL, no cleanup -- the restart path
                    # below must bring the shard back on its own.
                    log.emit(
                        names.LOG_DEPLOY_CHAOS_KILL,
                        lane=names.LANE_DEPLOY,
                        severity="warning",
                        rank=rank,
                        after_seconds=kill_after,
                    )
                    workers[rank].kill()
                    del pending_kill[rank]
            for rank, process in list(workers.items()):
                if process.is_alive():
                    continue
                if process.exitcode == 0:
                    continue  # clean exit (stop received); nothing to revive
                if restarts[rank] >= MAX_RESTARTS_PER_WORKER:
                    continue
                restarts[rank] += 1
                merged.incr(names.DEPLOY_WORKER_RESTARTS, rank=rank)
                # The SIGKILLed child cannot dump its own flight record
                # -- the supervisor dumps what *it* saw instead.
                log.emit(
                    names.LOG_DEPLOY_WORKER_RESTART,
                    lane=names.LANE_DEPLOY,
                    severity="warning",
                    rank=rank,
                    restart=restarts[rank],
                    exitcode=process.exitcode,
                )
                log.dump_flight(
                    spec.flight_path("supervisor"),
                    reason=f"worker-{rank} exited {process.exitcode}; restarting",
                )
                workers[rank] = spawn_worker(rank)
            time.sleep(0.02)

        if collector.exitcode != 0:
            raise DeployError(
                f"collector process exited with code {collector.exitcode}"
            )
        # The collector has sent stop everywhere; give workers a
        # moment to flush their report files, then insist.
        for process in workers.values():
            process.join(timeout=10.0)
    finally:
        for process in [collector, *workers.values()]:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()

    # -- harvest -------------------------------------------------------
    collector_report_path = spec.report_path("collector")
    if not os.path.exists(collector_report_path):
        raise DeployError("collector exited without writing its report")
    with open(collector_report_path) as fh:
        collector_dump = json.load(fh)
    merged.registry.absorb(collector_dump["metrics"])
    worker_reports = 0
    for rank in range(spec.workers):
        worker_report_path = spec.report_path(f"worker-{rank}")
        if not os.path.exists(worker_report_path):
            continue  # worker never reached a clean stop (restart storm)
        with open(worker_report_path) as fh:
            merged.registry.absorb(json.load(fh)["metrics"])
        worker_reports += 1

    from repro.runtime.collector import FailureEvent

    report = RuntimeReport(
        requested_pairs=len(plan.pairs),
        n_periods=spec.periods,
        samples=[
            RuntimePeriodSample(
                period=int(s["period"]),
                mean_error=float(s["mean_error"]),
                fresh_fraction=float(s["fresh_fraction"]),
                received_fraction=float(s["received_fraction"]),
            )
            for s in collector_dump["samples"]
        ],
        failure_events=[
            FailureEvent(int(e["node"]), int(e["period"]), str(e["kind"]))
            for e in collector_dump["failure_events"]
        ],
        metrics=merged,
        wall_seconds=time.monotonic() - started,
    )
    roles = ["collector", "supervisor"] + [
        f"worker-{rank}" for rank in range(spec.workers)
    ]
    return DeployOutcome(
        report=report,
        spec=spec,
        restarts=restarts,
        worker_reports=worker_reports,
        trace_files=[
            p for p in (spec.trace_path(role) for role in roles) if os.path.exists(p)
        ],
        flight_records=[
            p for p in (spec.flight_path(role) for role in roles) if os.path.exists(p)
        ],
    )


def parse_chaos_kill(spec: str) -> Tuple[int, float]:
    """Parse a ``RANK:SECONDS`` chaos-kill directive."""
    parts = spec.split(":")
    if len(parts) != 2:
        raise ValueError(f"expected RANK:SECONDS, got {spec!r}")
    rank, seconds = int(parts[0]), float(parts[1])
    if rank < 0 or seconds < 0:
        raise ValueError(f"RANK and SECONDS must be non-negative, got {spec!r}")
    return rank, seconds


__all__ = [
    "CONTROL_ADDRESS_BASE",
    "MAX_RESTARTS_PER_WORKER",
    "DeployError",
    "DeployOutcome",
    "DeploySpec",
    "allocate_endpoints",
    "control_address",
    "make_spec",
    "parse_chaos_kill",
    "participating_nodes",
    "run_deploy",
    "shard_nodes",
    "write_json_atomic",
]
