"""Child-process entrypoints for ``repro deploy``.

Two roles, both reconstructed from one
:class:`~repro.net.deploy.DeploySpec`:

- :func:`worker_main` (one per shard) hosts the shard's
  :class:`~repro.runtime.agent.NodeAgent` tasks behind a
  :class:`~repro.net.tcp.TcpTransport` listener, plus a *control loop*
  on the worker's reserved address: each inbound tick advances the
  local ground-truth registry replica to match the tick's period
  (``advance-to-match`` -- what lets a freshly restarted worker resync
  deterministically mid-run) and fans the tick out to the local
  agents.
- :func:`collector_main` runs the
  :class:`~repro.runtime.collector.CollectorAgent` and drives the
  clock: one tick per worker per period, a wall-clock period window, a
  bounded settle, then period scoring -- the multi-process analogue of
  :meth:`repro.runtime.engine.MonitoringRuntime.run_async`.

On stop each process dumps its full metrics registry to a JSON report
file the supervisor merges.  Entry functions are module-level so the
``spawn`` multiprocessing context can import them by name.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Dict

from repro.cluster.metrics import MetricRegistry
from repro.core.attributes import NodeId
from repro.net.deploy import DeploySpec, control_address, write_json_atomic
from repro.net.tcp import TcpTransport
from repro.runtime.agent import NodeAgent
from repro.runtime.collector import CollectorAgent
from repro.runtime.engine import build_roles
from repro.runtime.messages import (
    COLLECTOR_ADDRESS,
    StopEnvelope,
    TickEnvelope,
)
from repro.runtime.metrics import RuntimeMetrics


def _ground_truth(spec: DeploySpec, plan) -> MetricRegistry:
    """The shared ground-truth replica, constructed deterministically.

    Pair order fixes the seeded RNG's consumption order, so every
    process MUST build from ``sorted(plan.pairs)`` -- raw set
    iteration varies with each process's hash randomization.
    """
    config = spec.build_config()
    return MetricRegistry(sorted(plan.pairs), seed=config.seed)


class WorkerRuntime:
    """One shard of node agents plus the tick/stop control loop."""

    def __init__(self, spec: DeploySpec, rank: int) -> None:
        self.spec = spec
        self.rank = rank
        self.shard = list(spec.shards[rank])
        self.config = spec.build_config()
        cluster, cost, plan = spec.build_plan()
        self.plan = plan
        self.registry = _ground_truth(spec, plan)
        self._advanced = 0
        self.metrics = RuntimeMetrics()
        endpoint = spec.worker_endpoints[rank]
        self.transport = TcpTransport(
            spec.build_directory(),
            listen_host=endpoint.host,
            listen_port=endpoint.port,
            metrics=self.metrics,
        )
        # The engine's own role builder, over the identical re-planned
        # forest: single-process runs and deploy workers can never
        # disagree about tree ids, depths, or local demands.
        roles = build_roles(plan)
        self.agents: Dict[NodeId, NodeAgent] = {
            node: NodeAgent(
                node_id=node,
                capacity=cluster.capacity(node),
                roles=roles[node],
                cost=cost,
                registry=self.registry,
                transport=self.transport,
                metrics=self.metrics,
                config=self.config,
            )
            for node in self.shard
        }

    # ------------------------------------------------------------------
    async def run(self) -> None:
        ctrl = control_address(self.rank)
        self.transport.register(ctrl)
        for node in self.agents:
            self.transport.register(node)
        await self.transport.start()
        tasks = [asyncio.ensure_future(agent.run()) for agent in self.agents.values()]
        # Listener bound, agents listening: tell the supervisor.
        write_json_atomic(
            self.spec.ready_path(f"worker-{self.rank}"), {"rank": self.rank}
        )
        try:
            while True:
                envelope = await self.transport.recv(
                    ctrl, timeout=self.config.recv_timeout_seconds
                )
                if envelope is None:
                    continue
                if isinstance(envelope, StopEnvelope):
                    break
                if isinstance(envelope, TickEnvelope):
                    self._on_tick(envelope)
            for node in self.agents:
                self.transport.deliver_local(node, StopEnvelope())
            if tasks:
                await asyncio.wait(tasks, timeout=5.0)
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            write_json_atomic(
                self.spec.report_path(f"worker-{self.rank}"),
                {"rank": self.rank, "metrics": self.metrics.registry.dump()},
            )
            await self.transport.aclose()

    def _on_tick(self, tick: TickEnvelope) -> None:
        # Advance-to-match: the collector advanced its replica once for
        # this tick; a steady worker advances once too, while a freshly
        # restarted one fast-forwards from zero to the same point.
        while self._advanced <= tick.period:
            self.registry.advance_all()
            self._advanced += 1
        for node in self.agents:
            self.transport.deliver_local(node, tick)


class CollectorRuntime:
    """The collector process: clock source, scorer, failure detector."""

    def __init__(self, spec: DeploySpec) -> None:
        self.spec = spec
        self.config = spec.build_config()
        cluster, cost, plan = spec.build_plan()
        self.plan = plan
        self.registry = _ground_truth(spec, plan)
        self.metrics = RuntimeMetrics()
        endpoint = spec.collector_endpoint
        self.transport = TcpTransport(
            spec.build_directory(),
            listen_host=endpoint.host,
            listen_port=endpoint.port,
            metrics=self.metrics,
        )
        self.expected_nodes = sorted(
            node for shard in spec.shards for node in shard
        )
        self.collector = CollectorAgent(
            requested_pairs=sorted(plan.pairs),
            expected_nodes=self.expected_nodes,
            central_capacity=cluster.central_capacity,
            cost=cost,
            registry=self.registry,
            transport=self.transport,
            metrics=self.metrics,
            config=self.config,
        )

    # ------------------------------------------------------------------
    async def run(self) -> None:
        self.transport.register(COLLECTOR_ADDRESS)
        await self.transport.start()
        collector_task = asyncio.ensure_future(self.collector.run())
        write_json_atomic(self.spec.ready_path("collector"), {"role": "collector"})
        await self._await_go()
        try:
            for period in range(self.spec.periods):
                self.registry.advance_all()
                tick = TickEnvelope(period=period)
                self.transport.deliver_local(COLLECTOR_ADDRESS, tick)
                for rank in range(self.spec.workers):
                    await self.transport.send(control_address(rank), tick)
                await asyncio.sleep(self.config.period_seconds)
                await self._settle()
                self.collector.close_period(period)
            for rank in range(self.spec.workers):
                await self.transport.send(control_address(rank), StopEnvelope())
            self.transport.deliver_local(COLLECTOR_ADDRESS, StopEnvelope())
            await asyncio.wait([collector_task], timeout=5.0)
        finally:
            if not collector_task.done():
                collector_task.cancel()
            write_json_atomic(
                self.spec.report_path("collector"),
                {
                    "samples": [
                        {
                            "period": s.period,
                            "mean_error": s.mean_error,
                            "fresh_fraction": s.fresh_fraction,
                            "received_fraction": s.received_fraction,
                        }
                        for s in self.collector.samples
                    ],
                    "failure_events": [
                        {"node": e.node, "period": e.period, "kind": e.kind}
                        for e in self.collector.failure_events
                    ],
                    "metrics": self.metrics.registry.dump(),
                },
            )
            await self.transport.aclose()

    async def _await_go(self) -> None:
        """Hold the clock until the supervisor says every listener is up.

        Not strictly required for correctness -- outbound links retry
        with backoff -- but it keeps period 0 from burning its window
        on dial retries against workers that have not bound yet.
        """
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(self.spec.go_path):
                return
            await asyncio.sleep(0.02)

    async def _settle(self) -> None:
        """Let straggler frames land before scoring, bounded in time.

        The collector cannot see other processes' in-flight work the
        way the single-process engine can, so this settles on the local
        signal available -- its own transport going idle -- and bounds
        the wait by one extra period.
        """
        deadline = time.monotonic() + self.config.period_seconds
        while time.monotonic() < deadline:
            if self.transport.idle():
                return
            await asyncio.sleep(0.005)


# ---------------------------------------------------------------------------
# Spawn targets (must be importable module-level callables)
# ---------------------------------------------------------------------------
def worker_main(spec_path: str, rank: int) -> None:
    """Entrypoint of worker process ``rank``."""
    spec = DeploySpec.load(spec_path)
    asyncio.run(WorkerRuntime(spec, rank).run())


def collector_main(spec_path: str) -> None:
    """Entrypoint of the collector process."""
    spec = DeploySpec.load(spec_path)
    asyncio.run(CollectorRuntime(spec).run())
