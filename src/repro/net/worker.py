"""Child-process entrypoints for ``repro deploy``.

Two roles, both reconstructed from one
:class:`~repro.net.deploy.DeploySpec`:

- :func:`worker_main` (one per shard) hosts the shard's
  :class:`~repro.runtime.agent.NodeAgent` tasks behind a
  :class:`~repro.net.tcp.TcpTransport` listener, plus a *control loop*
  on the worker's reserved address: each inbound tick advances the
  local ground-truth registry replica to match the tick's period
  (``advance-to-match`` -- what lets a freshly restarted worker resync
  deterministically mid-run) and fans the tick out to the local
  agents.
- :func:`collector_main` hosts one
  :class:`~repro.runtime.collector.CollectorAgent` per collector shard
  (``spec.collectors``, each on its reserved address) and drives the
  clock: one tick per worker per period, a wall-clock period window, a
  bounded settle, then per-shard period scoring merged into
  cluster-wide samples -- the multi-process analogue of
  :meth:`repro.runtime.engine.MonitoringRuntime.run_async`.

On stop each process dumps its full metrics registry to a JSON report
file the supervisor merges.  Entry functions are module-level so the
``spawn`` multiprocessing context can import them by name.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Callable, Coroutine, Dict

from repro.cluster.metrics import MetricRegistry
from repro.core.attributes import NodeId
from repro.net.deploy import DeploySpec, control_address, write_json_atomic
from repro.net.tcp import TcpTransport
from repro.obs import log, names, trace
from repro.obs.export import write_jsonl_spans
from repro.runtime.agent import NodeAgent
from repro.runtime.collector import CollectorAgent
from repro.runtime.engine import build_roles, collector_addresses, merge_period_samples
from repro.runtime.messages import (
    StopEnvelope,
    TickEnvelope,
    collector_shard_address,
)
from repro.runtime.metrics import RuntimeMetrics


def _ground_truth(spec: DeploySpec, plan) -> MetricRegistry:
    """The shared ground-truth replica, constructed deterministically.

    Pair order fixes the seeded RNG's consumption order, so every
    process MUST build from ``sorted(plan.pairs)`` -- raw set
    iteration varies with each process's hash randomization.
    """
    config = spec.build_config()
    return MetricRegistry(sorted(plan.pairs), seed=config.seed)


class WorkerRuntime:
    """One shard of node agents plus the tick/stop control loop."""

    def __init__(self, spec: DeploySpec, rank: int) -> None:
        self.spec = spec
        self.rank = rank
        self.shard = list(spec.shards[rank])
        self.config = spec.build_config()
        cluster, cost, plan = spec.build_plan()
        self.plan = plan
        self.registry = _ground_truth(spec, plan)
        self._advanced = 0
        self.metrics = RuntimeMetrics()
        endpoint = spec.worker_endpoints[rank]
        self.transport = TcpTransport(
            spec.build_directory(),
            listen_host=endpoint.host,
            listen_port=endpoint.port,
            metrics=self.metrics,
        )
        # The engine's own role builder, over the identical re-planned
        # forest: single-process runs and deploy workers can never
        # disagree about tree ids, depths, or local demands.  With
        # sharded collectors, each tree's root reports to its shard's
        # address (all shards resolve to the collector endpoint).
        sharded = spec.build_sharded(plan)
        roles = build_roles(
            plan,
            collector_of=collector_addresses(sharded) if sharded is not None else None,
        )
        self.agents: Dict[NodeId, NodeAgent] = {
            node: NodeAgent(
                node_id=node,
                capacity=cluster.capacity(node),
                roles=roles[node],
                cost=cost,
                registry=self.registry,
                transport=self.transport,
                metrics=self.metrics,
                config=self.config,
            )
            for node in self.shard
        }

    # ------------------------------------------------------------------
    async def run(self) -> None:
        ctrl = control_address(self.rank)
        self.transport.register(ctrl)
        for node in self.agents:
            self.transport.register(node)
        await self.transport.start()
        tasks = [asyncio.ensure_future(agent.run()) for agent in self.agents.values()]
        # Listener bound, agents listening: tell the supervisor.
        write_json_atomic(
            self.spec.ready_path(f"worker-{self.rank}"), {"rank": self.rank}
        )
        try:
            while True:
                envelope = await self.transport.recv(
                    ctrl, timeout=self.config.recv_timeout_seconds
                )
                if envelope is None:
                    continue
                if isinstance(envelope, StopEnvelope):
                    break
                if isinstance(envelope, TickEnvelope):
                    self._on_tick(envelope)
            for node in self.agents:
                self.transport.deliver_local(node, StopEnvelope())
            if tasks:
                await asyncio.wait(tasks, timeout=5.0)
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            write_json_atomic(
                self.spec.report_path(f"worker-{self.rank}"),
                {"rank": self.rank, "metrics": self.metrics.registry.dump()},
            )
            await self.transport.aclose()

    def _on_tick(self, tick: TickEnvelope) -> None:
        # Advance-to-match: the collector advanced its replica once for
        # this tick; a steady worker advances once too, while a freshly
        # restarted one fast-forwards from zero to the same point.
        while self._advanced <= tick.period:
            self.registry.advance_all()
            self._advanced += 1
        for node in self.agents:
            self.transport.deliver_local(node, tick)


class CollectorRuntime:
    """The collector process: clock source, scorer, failure detector."""

    def __init__(self, spec: DeploySpec) -> None:
        self.spec = spec
        self.config = spec.build_config()
        cluster, cost, plan = spec.build_plan()
        self.plan = plan
        self.registry = _ground_truth(spec, plan)
        self.metrics = RuntimeMetrics()
        endpoint = spec.collector_endpoint
        self.transport = TcpTransport(
            spec.build_directory(),
            listen_host=endpoint.host,
            listen_port=endpoint.port,
            metrics=self.metrics,
        )
        self.expected_nodes = sorted(
            node for shard in spec.shards for node in shard
        )
        # One CollectorAgent per collector shard, co-hosted in this
        # process on distinct reserved addresses.  Each scores only its
        # shard's pairs and expects heartbeats only from nodes with a
        # role in its shard's trees (other nodes never dial it).
        sharded = spec.build_sharded(plan)
        if sharded is None:
            shard_specs = [
                (collector_shard_address(0), sorted(plan.pairs), self.expected_nodes)
            ]
        else:
            expected = set(self.expected_nodes)
            shard_specs = [
                (
                    collector_shard_address(shard),
                    sorted(sharded.pairs_for(shard)),
                    [n for n in sharded.nodes_for(shard) if n in expected],
                )
                for shard in range(sharded.shards)
            ]
        self.collectors = {
            address: CollectorAgent(
                requested_pairs=pairs,
                expected_nodes=nodes,
                central_capacity=cluster.central_capacity,
                cost=cost,
                registry=self.registry,
                transport=self.transport,
                metrics=self.metrics,
                config=self.config,
                address=address,
            )
            for address, pairs, nodes in shard_specs
        }
        self._shard_weights = {
            address: len(pairs) for address, pairs, _nodes in shard_specs
        }
        #: Shard-0 agent, for callers written against one collector.
        self.collector = self.collectors[collector_shard_address(0)]

    # ------------------------------------------------------------------
    async def run(self) -> None:
        for address in self.collectors:
            self.transport.register(address)
        await self.transport.start()
        collector_tasks = [
            asyncio.ensure_future(agent.run()) for agent in self.collectors.values()
        ]
        write_json_atomic(self.spec.ready_path("collector"), {"role": "collector"})
        await self._await_go()
        try:
            for period in range(self.spec.periods):
                # The clock owner mints one trace per period and stamps
                # its context on every tick: each worker's agent waves
                # join this trace with the period root span (recorded
                # here, in the collector process) as their parent --
                # the forward cross-process link over TCP.
                period_ctx = (
                    trace.new_root_context()
                    if trace.active_tracer() is not None
                    else None
                )
                with trace.attach(period_ctx):
                    with trace.span(
                        names.SPAN_RUNTIME_PERIOD,
                        lane=names.LANE_ENGINE,
                        period=period,
                    ) as period_span:
                        self.registry.advance_all()
                        tick = TickEnvelope(
                            period=period, trace_ctx=period_span.context()
                        )
                        for address in self.collectors:
                            self.transport.deliver_local(address, tick)
                        for rank in range(self.spec.workers):
                            await self.transport.send(control_address(rank), tick)
                        await asyncio.sleep(self.config.period_seconds)
                        with trace.span(
                            names.SPAN_RUNTIME_SETTLE,
                            lane=names.LANE_ENGINE,
                            period=period,
                        ):
                            await self._settle()
                        for agent in self.collectors.values():
                            agent.close_period(period)
            for rank in range(self.spec.workers):
                await self.transport.send(control_address(rank), StopEnvelope())
            for address in self.collectors:
                self.transport.deliver_local(address, StopEnvelope())
            await asyncio.wait(collector_tasks, timeout=5.0)
        finally:
            for task in collector_tasks:
                if not task.done():
                    task.cancel()
            write_json_atomic(
                self.spec.report_path("collector"),
                {
                    "samples": [
                        {
                            "period": s.period,
                            "mean_error": s.mean_error,
                            "fresh_fraction": s.fresh_fraction,
                            "received_fraction": s.received_fraction,
                        }
                        for s in self._merged_samples()
                    ],
                    "failure_events": [
                        {"node": e.node, "period": e.period, "kind": e.kind}
                        for e in self._merged_failure_events()
                    ],
                    "metrics": self.metrics.registry.dump(),
                },
            )
            await self.transport.aclose()

    def _merged_samples(self):
        """Cluster-wide period scores: pair-count-weighted shard merge."""
        agents = [self.collectors[a] for a in sorted(self.collectors)]
        if len(agents) == 1:
            return list(agents[0].samples)
        count = min(len(agent.samples) for agent in agents)
        return [
            merge_period_samples(
                agents[0].samples[index].period,
                [
                    (self._shard_weights[agent.address], agent.samples[index])
                    for agent in agents
                ],
            )
            for index in range(count)
        ]

    def _merged_failure_events(self):
        """Failure transitions across shards, de-duplicated and ordered."""
        seen = set()
        events = []
        for address in sorted(self.collectors):
            for event in self.collectors[address].failure_events:
                key = (event.node, event.period, event.kind)
                if key not in seen:
                    seen.add(key)
                    events.append(event)
        events.sort(key=lambda e: (e.period, e.node, e.kind))
        return events

    async def _await_go(self) -> None:
        """Hold the clock until the supervisor says every listener is up.

        Not strictly required for correctness -- outbound links retry
        with backoff -- but it keeps period 0 from burning its window
        on dial retries against workers that have not bound yet.
        """
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(self.spec.go_path):
                return
            await asyncio.sleep(0.02)

    async def _settle(self) -> None:
        """Let straggler frames land before scoring, bounded in time.

        The collector cannot see other processes' in-flight work the
        way the single-process engine can, so this settles on the local
        signal available -- its own transport going idle -- and bounds
        the wait by one extra period.
        """
        deadline = time.monotonic() + self.config.period_seconds
        while time.monotonic() < deadline:
            if self.transport.idle():
                return
            await asyncio.sleep(0.005)


# ---------------------------------------------------------------------------
# Spawn targets (must be importable module-level callables)
# ---------------------------------------------------------------------------
def _run_role(
    spec: DeploySpec,
    role: str,
    runner: Callable[[], Coroutine[object, object, None]],
) -> None:
    """Shared child harness: tracing, log sink, crash flight dump.

    When the spec enables tracing the child installs a process-local
    tracer plus a JSONL log sink, and dumps its spans to the role's
    trace artifact on the way out (clean or crashing).  The flight
    recorder is always on: any crash dumps the last events/spans to the
    role's flight artifact before the exception propagates -- a
    SIGKILLed child cannot, which is why the supervisor also dumps its
    own on restarts.
    """
    tracer = trace.install() if spec.trace else None
    if spec.trace:
        log.install_sink(spec.log_path(role))
    log.emit(names.LOG_DEPLOY_WORKER_START, lane=names.LANE_DEPLOY, role=role)
    try:
        asyncio.run(runner())
    except BaseException as exc:
        log.emit(
            names.LOG_DEPLOY_WORKER_CRASH,
            lane=names.LANE_DEPLOY,
            severity="error",
            role=role,
            error=repr(exc),
        )
        log.dump_flight(spec.flight_path(role), reason=f"{role} crashed: {exc!r}")
        raise
    finally:
        log.emit(names.LOG_DEPLOY_WORKER_EXIT, lane=names.LANE_DEPLOY, role=role)
        if tracer is not None:
            write_jsonl_spans(tracer.spans(), spec.trace_path(role))
        log.uninstall_sink()


def worker_main(spec_path: str, rank: int) -> None:
    """Entrypoint of worker process ``rank``."""
    spec = DeploySpec.load(spec_path)
    _run_role(spec, f"worker-{rank}", lambda: WorkerRuntime(spec, rank).run())


def collector_main(spec_path: str) -> None:
    """Entrypoint of the collector process."""
    spec = DeploySpec.load(spec_path)
    _run_role(spec, "collector", lambda: CollectorRuntime(spec).run())
