"""Real networking for the runtime: wire codec, TCP transport, deploy.

:mod:`repro.net` is the seam between the single-process runtime and a
multi-process deployment.  It contains:

- :mod:`repro.net.codec` -- the length-prefixed wire format for
  :class:`~repro.runtime.messages.Envelope` (the one module that owns
  byte layout);
- :mod:`repro.net.directory` -- :class:`PeerDirectory`, the static
  NodeId -> ``host:port`` table;
- :mod:`repro.net.tcp` -- :class:`TcpTransport`, the asyncio-streams
  implementation of the runtime :class:`~repro.runtime.transport.Transport`
  contract;
- :mod:`repro.net.deploy` -- ``repro deploy``: shard a plan across
  worker processes, supervise them, and merge their reports;
- :mod:`repro.net.worker` -- the child-process entrypoints.
"""

from repro.net.codec import (
    CODEC_JSON,
    CODEC_MSGPACK,
    HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    CodecError,
    FrameDecoder,
    FrameError,
    decode_header,
    decode_payload,
    default_codec,
    encode_frame,
    encode_payload,
    envelope_from_obj,
    envelope_to_obj,
)
from repro.net.deploy import (
    CONTROL_ADDRESS_BASE,
    DeployError,
    DeployOutcome,
    DeploySpec,
    control_address,
    make_spec,
    parse_chaos_kill,
    participating_nodes,
    run_deploy,
    shard_nodes,
)
from repro.net.directory import Endpoint, PeerDirectory
from repro.net.tcp import TcpTransport

__all__ = [
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "CONTROL_ADDRESS_BASE",
    "CodecError",
    "DeployError",
    "DeployOutcome",
    "DeploySpec",
    "Endpoint",
    "FrameDecoder",
    "FrameError",
    "HEADER_BYTES",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "PeerDirectory",
    "TcpTransport",
    "control_address",
    "make_spec",
    "parse_chaos_kill",
    "participating_nodes",
    "run_deploy",
    "shard_nodes",
    "decode_header",
    "decode_payload",
    "default_codec",
    "encode_frame",
    "encode_payload",
    "envelope_from_obj",
    "envelope_to_obj",
]
