"""The peer directory: where each address lives on the network.

A :class:`PeerDirectory` maps :class:`~repro.core.attributes.NodeId`
addresses to ``host:port`` :class:`Endpoint`\\ s.  Many addresses map
to one endpoint -- a worker process hosts a whole shard of node agents
behind a single listening socket -- and :class:`repro.net.TcpTransport`
pools connections per *endpoint*, not per address, so tree edges
between two shards share one TCP stream.

The directory is deliberately static data (built by ``repro deploy``
before any process starts, serialized into each worker's spec); there
is no gossip or discovery here.  ``default`` covers the single-host
loopback case where every address is served by one endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.attributes import NodeId


@dataclass(frozen=True, order=True)
class Endpoint:
    """One listening socket: ``host:port``."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    def as_pair(self) -> Tuple[str, int]:
        return (self.host, self.port)


class PeerDirectory:
    """NodeId -> :class:`Endpoint` lookup table."""

    def __init__(
        self,
        mapping: Optional[Mapping[NodeId, Endpoint]] = None,
        default: Optional[Endpoint] = None,
    ) -> None:
        self._mapping: Dict[NodeId, Endpoint] = dict(mapping or {})
        self.default = default

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, address: NodeId) -> bool:
        return address in self._mapping or self.default is not None

    def assign(self, addresses: Iterable[NodeId], endpoint: Endpoint) -> None:
        """Map every address in ``addresses`` to ``endpoint``."""
        for address in addresses:
            self._mapping[address] = endpoint

    def endpoint_of(self, address: NodeId) -> Optional[Endpoint]:
        """Where ``address`` listens, or ``None`` when unroutable."""
        return self._mapping.get(address, self.default)

    def addresses(self) -> List[NodeId]:
        return sorted(self._mapping)

    def addresses_at(self, endpoint: Endpoint) -> List[NodeId]:
        """Every explicitly mapped address served by ``endpoint``."""
        return sorted(a for a, e in self._mapping.items() if e == endpoint)

    def endpoints(self) -> List[Endpoint]:
        """Every distinct endpoint in the table (sorted, deduplicated)."""
        found = set(self._mapping.values())
        if self.default is not None:
            found.add(self.default)
        return sorted(found)

    # -- serialization (the deploy spec carries directories as JSON) ---
    def as_dict(self) -> Dict[str, object]:
        return {
            "peers": [[a, e.host, e.port] for a, e in sorted(self._mapping.items())],
            "default": list(self.default.as_pair()) if self.default else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PeerDirectory":
        peers = data.get("peers") or []
        mapping = {
            int(address): Endpoint(str(host), int(port))
            for address, host, port in peers  # type: ignore[union-attr]
        }
        raw_default = data.get("default")
        default = (
            Endpoint(str(raw_default[0]), int(raw_default[1]))  # type: ignore[index]
            if raw_default
            else None
        )
        return cls(mapping, default=default)
