"""A small synchronous client for the control-plane API.

Built on stdlib ``http.client`` so tests, CI smoke jobs, and the churn
benchmark can drive ``repro serve`` without pulling in an HTTP
library.  Synchronous on purpose: callers are load generators and test
harnesses living outside the server's event loop, where blocking I/O
is the simple and correct tool.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional


class ControlPlaneClientError(RuntimeError):
    """A non-2xx response from the control plane."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ControlPlaneClient:
    """One keep-alive connection to a control-plane server."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ControlPlaneClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException):
            # One reconnect: the server may have idled out the keep-alive.
            self._conn.close()
            self._conn.connect()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        content_type = response.getheader("Content-Type", "")
        # NDJSON ("application/x-ndjson") is many documents, not one --
        # it must take the text path and be split line-by-line upstream.
        if "application/json" in content_type:
            decoded: Any = json.loads(raw) if raw else {}
        else:
            decoded = raw.decode("utf-8")
        if response.status >= 400:
            message = (
                decoded.get("error", raw.decode("utf-8", "replace"))
                if isinstance(decoded, dict)
                else str(decoded)
            )
            raise ControlPlaneClientError(response.status, message)
        return decoded

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def status(self) -> Dict[str, Any]:
        return self._request("GET", "/status")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")

    def tenants(self) -> List[str]:
        return self._request("GET", "/tenants")["tenants"]

    def list_tasks(self, tenant: str) -> List[Dict[str, Any]]:
        return self._request("GET", f"/tenants/{tenant}/tasks")["tasks"]

    def submit_task(
        self,
        tenant: str,
        task_id: str,
        attributes: List[str],
        nodes: List[int],
        frequency: float = 1.0,
    ) -> Dict[str, Any]:
        return self._request(
            "POST",
            f"/tenants/{tenant}/tasks",
            {
                "task_id": task_id,
                "attributes": attributes,
                "nodes": nodes,
                "frequency": frequency,
            },
        )

    def get_task(self, tenant: str, task_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/tenants/{tenant}/tasks/{task_id}")["task"]

    def update_task(
        self,
        tenant: str,
        task_id: str,
        attributes: List[str],
        nodes: List[int],
        frequency: float = 1.0,
    ) -> Dict[str, Any]:
        return self._request(
            "PUT",
            f"/tenants/{tenant}/tasks/{task_id}",
            {"attributes": attributes, "nodes": nodes, "frequency": frequency},
        )

    def delete_task(self, tenant: str, task_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/tenants/{tenant}/tasks/{task_id}")

    def adapt(self, force_rebuild: bool = False) -> Dict[str, Any]:
        return self._request("POST", "/adapt", {"force_rebuild": force_rebuild})

    def adaptations(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/adaptations")["adaptations"]

    def plan(self) -> Dict[str, Any]:
        return self._request("GET", "/plan")

    def run(self, periods: int) -> Dict[str, Any]:
        return self._request("POST", "/run", {"periods": periods})

    def reports(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/reports")["reports"]

    def reports_stream(self) -> List[Dict[str, Any]]:
        text = self._request("GET", "/reports/stream")
        return [json.loads(line) for line in text.splitlines() if line.strip()]
