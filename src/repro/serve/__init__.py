"""The control-plane service (``repro serve``).

Monitoring-as-a-service on top of the planner/runtime stack: a
long-running asyncio HTTP API through which *tenants* submit, update,
and delete monitoring tasks, trigger online adaptation, launch live
runs, and scrape Prometheus metrics.  Task namespaces are isolated per
tenant (de-duplication scoped per tenant, unioned for planning), and
the resulting forest's collection trees are hash- or range-sharded
across N collector roots so no single collector aggregates everything.

Layering mirrors the rest of the repo: :mod:`repro.serve.http` is a
dependency-free HTTP/1.1 server, :mod:`repro.serve.controlplane` owns
the state machine, :mod:`repro.serve.server` binds the two, and
:mod:`repro.serve.client` is the synchronous driver for tests, CI, and
the churn benchmark.
"""

from repro.serve.controlplane import ControlPlane, NoPlanError, parse_task, task_as_dict
from repro.serve.client import ControlPlaneClient, ControlPlaneClientError
from repro.serve.http import HttpError, HttpRequest, HttpResponse, HttpServer, Router
from repro.serve.server import ControlPlaneServer, run_serve

__all__ = [
    "ControlPlane",
    "ControlPlaneClient",
    "ControlPlaneClientError",
    "ControlPlaneServer",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "NoPlanError",
    "Router",
    "parse_task",
    "run_serve",
    "task_as_dict",
]
