"""A minimal asyncio HTTP/1.1 server for the control plane.

Deliberately stdlib-only: the control plane needs request routing with
path parameters, JSON bodies, keep-alive, and nothing else, and taking
a web framework for that would push a heavyweight dependency onto
every deployment (the same reasoning that keeps the wire codec
hand-rolled in :mod:`repro.net.codec`).  The server speaks enough
HTTP/1.1 for ``curl``, ``python -m http.client``, and Prometheus
scrapers: request line + headers + ``Content-Length`` bodies in,
fixed-length responses out, ``Connection: close`` honored.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.obs import names, trace

#: Protects the header parser from unbounded memory on garbage input.
MAX_HEADER_BYTES = 64 * 1024
#: Largest accepted request body (task submissions are tiny).
MAX_BODY_BYTES = 4 * 1024 * 1024
#: Per-read timeout; an idle keep-alive connection is dropped after it.
READ_TIMEOUT_SECONDS = 30.0

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """Raise inside a handler to produce a non-200 JSON response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> object:
        """The body parsed as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from None


@dataclass
class HttpResponse:
    """One response; helpers build the common shapes."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json_response(cls, payload: object, status: int = 200) -> "HttpResponse":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status=status, body=body)

    @classmethod
    def text(
        cls, text: str, status: int = 200, content_type: str = "text/plain; charset=utf-8"
    ) -> "HttpResponse":
        return cls(status=status, body=text.encode("utf-8"), content_type=content_type)

    def encode(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body


#: A route handler: (request, path params) -> response.
Handler = Callable[[HttpRequest, Dict[str, str]], Awaitable[HttpResponse]]


class Router:
    """Method + pattern dispatch with ``{param}`` path segments."""

    def __init__(self) -> None:
        #: (method, segment pattern) -> handler; patterns are tuples of
        #: literal segments or ``{name}`` placeholders.
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(s for s in pattern.strip("/").split("/") if s)
        self._routes.append((method.upper(), segments, handler))

    def resolve(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        """Find the handler for ``method path``.

        Raises :class:`HttpError` 404 when no pattern matches the path
        and 405 when a pattern matches but not with this method.
        """
        segments = tuple(s for s in path.strip("/").split("/") if s)
        path_matched = False
        for route_method, pattern, handler in self._routes:
            params = _match(pattern, segments)
            if params is None:
                continue
            path_matched = True
            if route_method == method.upper():
                return handler, params
        if path_matched:
            raise HttpError(405, f"method {method} not allowed on {path}")
        raise HttpError(404, f"no route for {path}")


def _match(pattern: Tuple[str, ...], segments: Tuple[str, ...]) -> Optional[Dict[str, str]]:
    if len(pattern) != len(segments):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


class HttpServer:
    """Serve a :class:`Router` on an asyncio TCP listener."""

    def __init__(
        self,
        router: Router,
        host: str = "127.0.0.1",
        port: int = 0,
        observer: Optional[Callable[[str, str, int, float], None]] = None,
        on_connection: Optional[Callable[[], None]] = None,
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        #: Called after every request: (method, path, status, seconds).
        self.observer = observer
        self.on_connection = on_connection
        self._server: Optional["asyncio.AbstractServer"] = None

    async def start(self) -> None:
        """Bind the listener; ``self.port`` becomes the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        # Detach before the await so a concurrent stop() sees None
        # instead of closing (or resurrecting) the same listener.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        if self.on_connection is not None:
            self.on_connection()
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except HttpError as exc:
                    error = HttpResponse.json_response(
                        {"error": exc.message, "status": exc.status}, status=exc.status
                    )
                    writer.write(error.encode())
                    await writer.drain()
                    break
                if request is None:
                    break
                started = loop.time()
                # Every request runs inside a serve.request root span:
                # an inbound W3C ``traceparent`` header is adopted (the
                # caller's trace continues through the control plane's
                # handler spans), otherwise a fresh trace is minted.
                # The response always echoes a ``traceparent`` so
                # clients can correlate either way.
                header = request.headers.get("traceparent", "")
                inbound = trace.parse_traceparent(header) if header else None
                ctx = inbound if inbound is not None else trace.new_root_context()
                with trace.attach(ctx):
                    with trace.span(
                        names.SPAN_SERVE_REQUEST,
                        lane=names.LANE_SERVE,
                        method=request.method,
                        path=request.path,
                    ) as req_span:
                        response = await self._dispatch(request)
                        req_span.set(status=response.status)
                    out_ctx = req_span.context() or ctx
                response.headers.setdefault(
                    "traceparent", trace.format_traceparent(out_ctx)
                )
                if self.observer is not None:
                    self.observer(
                        request.method, request.path, response.status, loop.time() - started
                    )
                writer.write(response.encode())
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass  # peer went away or stalled; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(
        self, reader: "asyncio.StreamReader"
    ) -> Optional[HttpRequest]:
        """Parse one request; ``None`` at a clean end-of-stream."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=READ_TIMEOUT_SECONDS
            )
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between requests
            raise
        except asyncio.LimitOverrunError:
            raise HttpError(413, "request head exceeds the server limit") from None
        if len(head) > MAX_HEADER_BYTES:
            raise HttpError(413, "request head exceeds the server limit")
        request_line, _, header_block = head.decode("latin-1").partition("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in header_block.split("\r\n"):
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body of {length} bytes is too large")
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=READ_TIMEOUT_SECONDS
            )
        split = urlsplit(target)
        query = dict(parse_qsl(split.query))
        return HttpRequest(
            method=method.upper(),
            path=split.path,
            query=query,
            headers=headers,
            body=body,
        )

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        try:
            handler, params = self.router.resolve(request.method, request.path)
            return await handler(request, params)
        except HttpError as exc:
            return HttpResponse.json_response(
                {"error": exc.message, "status": exc.status}, status=exc.status
            )
        except Exception as exc:  # noqa: BLE001 - the server must not die
            return HttpResponse.json_response(
                {"error": f"{type(exc).__name__}: {exc}", "status": 500}, status=500
            )
