"""HTTP surface of the control plane (``repro serve``).

Routes (JSON in/out unless noted):

- ``GET  /health`` -- liveness probe;
- ``GET  /status`` -- tenants, staged ops, adaptation/run counts;
- ``GET  /metrics`` -- Prometheus text scrape of the service registry;
- ``GET  /tenants`` -- tenant names;
- ``GET  /tenants/{tenant}/tasks`` -- the tenant's tasks;
- ``POST /tenants/{tenant}/tasks`` -- submit a task
  (``{"task_id", "attributes", "nodes", "frequency"?}``);
- ``GET/PUT/DELETE /tenants/{tenant}/tasks/{task_id}`` -- inspect,
  update, or retire one task;
- ``POST /adapt`` -- apply staged ops and replan
  (``{"force_rebuild"?: bool}``);
- ``GET  /adaptations`` -- the adaptation log;
- ``GET  /plan`` -- current plan + collector-shard summary;
- ``POST /run`` -- run the plan live (``{"periods"?: int}``);
- ``GET  /reports`` -- archived run reports (JSON array);
- ``GET  /reports/stream`` -- the same reports as NDJSON, one per line.

Task mutations stage; ``POST /adapt`` applies.  All handlers run on
one event loop, so control-plane state needs no locking -- a run in
flight simply delays queued requests, mirroring the collector-driven
clock in ``repro deploy``.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Dict, Optional

from repro.core.tasks import (
    DuplicateTaskError,
    InvalidTenantError,
    UnknownTaskError,
)
from repro.obs import log, names
from repro.obs.export import prometheus_text
from repro.serve.controlplane import ControlPlane, NoPlanError, parse_task, task_as_dict
from repro.serve.http import HttpError, HttpRequest, HttpResponse, HttpServer, Router

#: Default number of periods for ``POST /run``.
DEFAULT_RUN_PERIODS = 5
#: Cap on periods per HTTP-triggered run; longer runs belong in
#: ``repro run``/``repro deploy``, not a request handler.
MAX_RUN_PERIODS = 10_000


class ControlPlaneServer:
    """Bind a :class:`ControlPlane` to an :class:`HttpServer`."""

    def __init__(
        self, controlplane: ControlPlane, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.controlplane = controlplane
        router = Router()
        router.add("GET", "/health", self._health)
        router.add("GET", "/status", self._status)
        router.add("GET", "/metrics", self._metrics)
        router.add("GET", "/tenants", self._tenants)
        router.add("GET", "/tenants/{tenant}/tasks", self._list_tasks)
        router.add("POST", "/tenants/{tenant}/tasks", self._submit_task)
        router.add("GET", "/tenants/{tenant}/tasks/{task_id}", self._get_task)
        router.add("PUT", "/tenants/{tenant}/tasks/{task_id}", self._update_task)
        router.add("DELETE", "/tenants/{tenant}/tasks/{task_id}", self._delete_task)
        router.add("POST", "/adapt", self._adapt)
        router.add("GET", "/adaptations", self._adaptations)
        router.add("GET", "/plan", self._plan)
        router.add("POST", "/run", self._run)
        router.add("GET", "/reports", self._reports)
        router.add("GET", "/reports/stream", self._reports_stream)
        self.http = HttpServer(
            router,
            host=host,
            port=port,
            observer=self._observe_request,
            on_connection=self._observe_connection,
        )

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        await self.http.start()

    async def stop(self) -> None:
        await self.http.stop()

    @property
    def port(self) -> int:
        return self.http.port

    @property
    def host(self) -> str:
        return self.http.host

    # -- request telemetry ---------------------------------------------
    def _observe_request(self, method: str, path: str, status: int, seconds: float) -> None:
        registry = self.controlplane.metrics
        registry.incr(names.SERVE_REQUESTS_TOTAL, method=method, status=status)
        registry.observe(names.SERVE_REQUEST_SECONDS, seconds, method=method)
        if status >= 400:
            registry.incr(names.SERVE_ERRORS_TOTAL, status=status)

    def _observe_connection(self) -> None:
        self.controlplane.metrics.incr(names.SERVE_CONNECTIONS_TOTAL)

    # -- handlers ------------------------------------------------------
    async def _health(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        return HttpResponse.json_response({"ok": True})

    async def _status(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        return HttpResponse.json_response(self.controlplane.status())

    async def _metrics(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        text = prometheus_text(self.controlplane.metrics)
        return HttpResponse.text(text, content_type="text/plain; version=0.0.4")

    async def _tenants(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        return HttpResponse.json_response({"tenants": self.controlplane.tenants.tenants()})

    async def _list_tasks(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        tasks = self.controlplane.tenants.tasks(params["tenant"])
        return HttpResponse.json_response(
            {"tenant": params["tenant"], "tasks": [task_as_dict(t) for t in tasks]}
        )

    async def _submit_task(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        task = self._parse_task(request, task_id=None)
        try:
            self.controlplane.submit_task(params["tenant"], task)
        except DuplicateTaskError as exc:
            raise HttpError(
                409, f"task {exc.args[0]!r} already exists for tenant {params['tenant']!r}"
            ) from None
        except InvalidTenantError as exc:
            raise HttpError(400, str(exc)) from None
        return HttpResponse.json_response(
            {"tenant": params["tenant"], "task": task_as_dict(task), "staged": True},
            status=201,
        )

    async def _get_task(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        task = self._resolve_task(params)
        return HttpResponse.json_response(
            {"tenant": params["tenant"], "task": task_as_dict(task)}
        )

    async def _update_task(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        task = self._parse_task(request, task_id=params["task_id"])
        try:
            self.controlplane.update_task(params["tenant"], task)
        except UnknownTaskError:
            raise HttpError(404, self._unknown_task(params)) from None
        except InvalidTenantError as exc:
            raise HttpError(400, str(exc)) from None
        return HttpResponse.json_response(
            {"tenant": params["tenant"], "task": task_as_dict(task), "staged": True}
        )

    async def _delete_task(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        try:
            self.controlplane.delete_task(params["tenant"], params["task_id"])
        except UnknownTaskError:
            raise HttpError(404, self._unknown_task(params)) from None
        return HttpResponse.json_response(
            {"tenant": params["tenant"], "task_id": params["task_id"], "staged": True}
        )

    async def _adapt(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        body = request.json()
        force = bool(body.get("force_rebuild", False)) if isinstance(body, dict) else False
        try:
            record = self.controlplane.adapt(force_rebuild=force)
        except NoPlanError as exc:
            raise HttpError(409, str(exc)) from None
        return HttpResponse.json_response(record)

    async def _adaptations(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        return HttpResponse.json_response({"adaptations": self.controlplane.adaptations})

    async def _plan(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        try:
            return HttpResponse.json_response(self.controlplane.plan_summary())
        except NoPlanError as exc:
            raise HttpError(409, str(exc)) from None

    async def _run(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        body = request.json()
        periods = DEFAULT_RUN_PERIODS
        if isinstance(body, dict) and "periods" in body:
            try:
                periods = int(body["periods"])
            except (TypeError, ValueError):
                raise HttpError(400, f"periods must be an integer, got {body['periods']!r}") from None
        if not 1 <= periods <= MAX_RUN_PERIODS:
            raise HttpError(400, f"periods must be in [1, {MAX_RUN_PERIODS}], got {periods}")
        try:
            payload = await self.controlplane.run(periods)
        except NoPlanError as exc:
            raise HttpError(409, str(exc)) from None
        return HttpResponse.json_response(payload)

    async def _reports(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        return HttpResponse.json_response({"reports": self.controlplane.reports})

    async def _reports_stream(self, request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        lines = "".join(
            json.dumps(report, sort_keys=True) + "\n"
            for report in self.controlplane.reports
        )
        return HttpResponse.text(lines, content_type="application/x-ndjson")

    # -- helpers -------------------------------------------------------
    def _parse_task(self, request: HttpRequest, task_id: Optional[str]):
        try:
            return parse_task(request.json(), task_id=task_id)
        except (ValueError, TypeError) as exc:
            raise HttpError(400, str(exc)) from None

    def _resolve_task(self, params: Dict[str, str]):
        try:
            return self.controlplane.get_task(params["tenant"], params["task_id"])
        except UnknownTaskError:
            raise HttpError(404, self._unknown_task(params)) from None

    @staticmethod
    def _unknown_task(params: Dict[str, str]) -> str:
        return f"tenant {params['tenant']!r} has no task {params['task_id']!r}"


def _write_announce(path: str, host: str, port: int) -> None:
    """Persist the bound endpoint for scripts that picked port 0."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"host": host, "port": port}, fh)
        fh.write("\n")


async def _serve_async(
    server: ControlPlaneServer,
    announce: Optional[str],
    max_seconds: Optional[float],
    ready_message: bool,
) -> None:
    await server.start()
    if announce:
        _write_announce(announce, server.host, server.port)
    # Structured instead of an ad-hoc print: the event lands in the
    # flight-recorder ring (and any JSONL sink) with trace identity,
    # and echoes one human-readable line to stdout when asked to.
    if ready_message:
        log.set_console(sys.stdout)
    try:
        log.emit(
            names.LOG_SERVE_READY,
            lane=names.LANE_SERVE,
            host=server.host,
            port=server.port,
            url=f"http://{server.host}:{server.port}",
        )
        if max_seconds is not None:
            await asyncio.sleep(max_seconds)
        else:
            while True:
                await asyncio.sleep(3600.0)
    finally:
        await server.stop()
        log.emit(names.LOG_SERVE_STOPPED, lane=names.LANE_SERVE)
        if ready_message:
            log.set_console(None)


def run_serve(
    controlplane: ControlPlane,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Optional[str] = None,
    max_seconds: Optional[float] = None,
    ready_message: bool = True,
) -> None:
    """Blocking entry point behind ``repro serve``.

    ``port=0`` binds an ephemeral port; ``announce`` writes the bound
    ``{"host", "port"}`` to a JSON file so callers can find it.
    ``max_seconds`` bounds the lifetime (CI smoke jobs); the default is
    to serve until interrupted.
    """
    server = ControlPlaneServer(controlplane, host=host, port=port)
    try:
        asyncio.run(
            _serve_async(server, announce, max_seconds, ready_message=ready_message)
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
