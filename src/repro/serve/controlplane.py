"""The control plane: multi-tenant task lifecycle over sharded collectors.

:class:`ControlPlane` is the long-running state machine behind
``repro serve``.  It owns:

- a :class:`~repro.core.tasks.MultiTenantTaskManager` -- per-tenant
  task namespaces whose pair-level de-duplication is scoped per tenant
  and unioned across tenants;
- an :class:`~repro.core.adaptation.AdaptiveMonitoringService` -- the
  planner that keeps one monitoring forest in sync with the union of
  all tenants' tasks, replanning online under cost-benefit throttling;
- the collector-shard layout (:class:`~repro.core.plan.ShardedPlan`) --
  rebuilt deterministically after every adaptation so N collector
  roots split the forest's trees;
- a :class:`~repro.obs.metrics.MetricsRegistry` that every run records
  into, so the ``/metrics`` scrape and the run reports are two views
  of the same counters and can never disagree.

Task mutations are *staged*: submit/update/delete validate and update
the tenant namespaces immediately but only take effect in the plan at
the next ``adapt()`` -- batching is what makes the adaptation
machinery's net-delta semantics worthwhile under churn.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional

from repro.checks.controlplane import check_collector_shards, check_tenant_namespaces
from repro.cluster.node import Cluster
from repro.core.adaptation import (
    AdaptationStrategy,
    AdaptiveMonitoringService,
    TaskOp,
)
from repro.core.cost import CostModel
from repro.core.plan import SHARD_MODES, ShardedPlan
from repro.core.tasks import (
    MonitoringTask,
    MultiTenantTaskManager,
    qualified_task_id,
)
from repro.obs import names, trace
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime.config import RuntimeConfig
from repro.runtime.engine import MonitoringRuntime
from repro.runtime.messages import MAX_COLLECTOR_SHARDS
from repro.runtime.metrics import RuntimeMetrics


class NoPlanError(RuntimeError):
    """Raised when a run/plan query arrives before any adaptation."""


def parse_task(payload: object, task_id: Optional[str] = None) -> MonitoringTask:
    """Build a :class:`MonitoringTask` from a JSON request body.

    ``task_id`` (from the URL) overrides any id in the body, so PUT to
    ``/tenants/{t}/tasks/{id}`` cannot rename a task.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"task body must be a JSON object, got {type(payload).__name__}")
    body_id = payload.get("task_id")
    final_id = task_id if task_id is not None else body_id
    if not isinstance(final_id, str) or not final_id:
        raise ValueError("task_id must be a non-empty string")
    attributes = payload.get("attributes")
    nodes = payload.get("nodes")
    if not isinstance(attributes, list) or not isinstance(nodes, list):
        raise ValueError("task body needs 'attributes' and 'nodes' lists")
    frequency = float(payload.get("frequency", 1.0))
    return MonitoringTask(final_id, attributes, [int(n) for n in nodes], frequency)


def task_as_dict(task: MonitoringTask) -> Dict[str, object]:
    return {
        "task_id": task.task_id,
        "attributes": sorted(str(a) for a in task.attributes),
        "nodes": sorted(int(n) for n in task.nodes),
        "frequency": task.frequency,
        "pairs": task.size,
    }


class ControlPlane:
    """Tenant task lifecycle, adaptation, and runs for one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        cost_model: CostModel,
        collectors: int = 1,
        shard_mode: str = "hash",
        strategy: AdaptationStrategy = AdaptationStrategy.ADAPTIVE,
        config: Optional[RuntimeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 1 <= collectors < MAX_COLLECTOR_SHARDS:
            raise ValueError(
                f"collectors must be in [1, {MAX_COLLECTOR_SHARDS}), got {collectors}"
            )
        if shard_mode not in SHARD_MODES:
            raise ValueError(f"shard_mode must be one of {SHARD_MODES}, got {shard_mode!r}")
        self.cluster = cluster
        self.cost = cost_model
        self.collectors = collectors
        self.shard_mode = shard_mode
        self.config = config if config is not None else RuntimeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tenants = MultiTenantTaskManager()
        self.service = AdaptiveMonitoringService(cluster, cost_model, strategy=strategy)
        self.sharded: Optional[ShardedPlan] = None
        #: Task ops staged since the last adaptation (qualified ids).
        self._pending: List[TaskOp] = []
        #: Logical adaptation clock (the throttler's ``now``).
        self._clock = itertools.count()
        self.adaptations: List[Dict[str, object]] = []
        self.reports: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Task lifecycle (staged; applied at the next adapt())
    # ------------------------------------------------------------------
    def _qualified(self, tenant: str, task: MonitoringTask) -> MonitoringTask:
        """The task as the flat planner-side manager sees it."""
        return MonitoringTask(
            qualified_task_id(tenant, task.task_id),
            task.attributes,
            task.nodes,
            task.frequency,
        )

    def _record_op(self, op: str, tenant: str) -> None:
        self.metrics.incr(names.CONTROLPLANE_TASK_OPS_TOTAL, op=op, tenant=tenant)
        self.metrics.set_gauge(names.CONTROLPLANE_TENANTS, len(self.tenants.tenants()))
        self.metrics.set_gauge(names.CONTROLPLANE_TASKS, self.tenants.task_count())
        self.metrics.set_gauge(names.CONTROLPLANE_PAIRS, self.tenants.pair_count())

    def submit_task(self, tenant: str, task: MonitoringTask) -> None:
        """Register a tenant task (duplicate ids rejected *per tenant*)."""
        self.tenants.add_task(tenant, task)
        self._pending.append(("add", self._qualified(tenant, task)))
        self._record_op("add", tenant)

    def update_task(self, tenant: str, task: MonitoringTask) -> None:
        self.tenants.modify_task(tenant, task)
        self._pending.append(("modify", self._qualified(tenant, task)))
        self._record_op("modify", tenant)

    def delete_task(self, tenant: str, task_id: str) -> None:
        task = self.tenants.get(tenant, task_id)
        self.tenants.remove_task(tenant, task_id)
        self._pending.append(("remove", self._qualified(tenant, task)))
        self._record_op("remove", tenant)

    def get_task(self, tenant: str, task_id: str) -> MonitoringTask:
        return self.tenants.get(tenant, task_id)

    @property
    def pending_ops(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    def adapt(self, force_rebuild: bool = False) -> Dict[str, object]:
        """Apply every staged op, replan, and re-shard the collectors.

        Runs even with no staged ops when ``force_rebuild`` is set (a
        from-scratch replan); otherwise a no-op batch still replays the
        adaptation machinery, which is harmless but pointless, so it is
        rejected to keep the adaptation log meaningful.
        """
        if not self._pending and not force_rebuild:
            raise NoPlanError("no staged task changes; nothing to adapt")
        ops, self._pending = self._pending, []
        now = float(next(self._clock))
        with trace.span(names.SPAN_CONTROLPLANE_ADAPT, lane=names.LANE_CONTROLPLANE):
            with use_registry(self.metrics):
                report = self.service.apply_changes(
                    ops, now=now, force_rebuild=force_rebuild
                )
        plan = self.service.plan
        problems: List[str] = []
        if plan is not None:
            self.sharded = ShardedPlan.build(plan, self.collectors, self.shard_mode)
            shard_report = check_collector_shards(
                plan,
                self.sharded.assignment,
                self.collectors,
                central_capacity=self.cluster.central_capacity,
            )
            shard_report.raise_if_errors("collector shard layout")
            problems.extend(d.format() for d in shard_report.warnings)
        else:
            self.sharded = None
        tenant_report = check_tenant_namespaces(
            {tenant: self.tenants.tasks(tenant) for tenant in self.tenants.tenants()}
        )
        problems.extend(d.format() for d in tenant_report.warnings)
        self.metrics.incr(names.CONTROLPLANE_ADAPTATIONS_TOTAL)
        self.metrics.observe(names.CONTROLPLANE_REPLAN_SECONDS, report.planning_seconds)
        self.metrics.set_gauge(names.CONTROLPLANE_COLLECTOR_SHARDS, self.collectors)
        record: Dict[str, object] = {
            "sequence": len(self.adaptations),
            "ops": len(ops),
            "strategy": report.strategy.value,
            "planning_seconds": report.planning_seconds,
            "adaptation_messages": report.adaptation_messages,
            "monitoring_volume": report.monitoring_volume,
            "coverage": report.coverage,
            "requested_pairs": report.requested_pairs,
            "applied_ops": list(report.applied_ops),
            "throttled_ops": report.throttled_ops,
            "warnings": problems,
            "shards": self.sharded.summary() if self.sharded is not None else None,
        }
        self.adaptations.append(record)
        return record

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    async def run(self, periods: int) -> Dict[str, object]:
        """Run the current plan live and archive the merged report."""
        plan = self.service.plan
        if plan is None or self.sharded is None:
            raise NoPlanError("no plan yet: submit tasks and POST /adapt first")
        runtime = MonitoringRuntime(
            plan,
            self.cluster,
            config=self.config,
            metrics=RuntimeMetrics(registry=self.metrics),
            sharded=self.sharded,
        )
        with trace.span(names.SPAN_CONTROLPLANE_RUN, lane=names.LANE_CONTROLPLANE):
            report = await runtime.run_async(periods)
        self.metrics.incr(names.CONTROLPLANE_RUNS_TOTAL)
        payload = report.as_dict()
        payload["run"] = len(self.reports)
        payload["collectors"] = self.collectors
        self.reports.append(payload)
        return payload

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def plan_summary(self) -> Dict[str, object]:
        plan = self.service.plan
        if plan is None or self.sharded is None:
            raise NoPlanError("no plan yet: submit tasks and POST /adapt first")
        return {
            "trees": plan.tree_count(),
            "requested_pairs": plan.requested_pair_count(),
            "collected_pairs": plan.collected_pair_count(),
            "coverage": plan.coverage(),
            "message_cost": plan.total_message_cost(),
            "max_depth": plan.max_tree_depth(),
            "central_usage": plan.central_usage(),
            "shard_mode": self.shard_mode,
            "shards": self.sharded.summary(),
        }

    def status(self) -> Dict[str, object]:
        return {
            "tenants": self.tenants.tenants(),
            "tasks": self.tenants.task_count(),
            "pairs": self.tenants.pair_count(),
            "pending_ops": self.pending_ops,
            "collectors": self.collectors,
            "shard_mode": self.shard_mode,
            "adaptations": len(self.adaptations),
            "runs": len(self.reports),
            "has_plan": self.service.plan is not None,
        }
