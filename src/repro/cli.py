"""Command-line interface: plan, simulate, adapt, check, and run.

Five subcommands over synthetic workloads, mirroring the examples:

- ``plan``       build a monitoring forest and print its summary;
- ``simulate``   run the planned forest in the discrete-event simulator
  and report coverage / percentage error / traffic;
- ``adapt``      drive the adaptive service through task-churn batches;
- ``check``      plan, then statically verify the plan's invariants
  (exit 1 on any ERROR diagnostic);
- ``run``        execute the plan live on the asyncio runtime -- one
  concurrent agent per node plus a collector -- with capacity
  budgets, heartbeats, and failure detection;
- ``metrics``    render (and validate) a ``--metrics`` Prometheus
  snapshot -- as a table, canonical Prometheus series lines (diffable
  against a ``repro serve`` ``/metrics`` scrape), or JSONL;
- ``serve``      run the multi-tenant control-plane HTTP service:
  tenants submit/update/delete tasks over HTTP, trigger adaptation,
  launch runs, and scrape ``/metrics``, over hash- or range-sharded
  collector roots;
- ``trace``      merge a deploy rundir's per-process span artifacts
  into one trace, with per-period critical-path and cross-process
  latency summaries (``--strict`` fails when any worker's spans are
  missing -- the CI completeness gate);
- ``lint``       run the REMO4xx static source analysis
  (:mod:`repro.staticcheck`) over the given paths (exit 1 on
  findings, 2 on usage/IO errors).

``plan``, ``simulate``, ``adapt``, and ``run`` all accept ``--json``
for machine-readable output, so CI and benches can consume results
without screen-scraping.  Those four plus ``deploy`` and ``serve``
accept ``--trace PATH`` (execution trace: ``.jsonl`` for the span log,
anything else for Chrome trace-event JSON loadable in Perfetto /
``about:tracing``) and ``--metrics PATH`` (Prometheus text-format
snapshot of every counter, gauge, and histogram the command touched).
On ``deploy``, ``--trace`` also switches every child process into
tracing mode: each writes ``trace-<role>.jsonl`` into the rundir, the
supervisor folds them into the exported trace, and ``repro trace
RUNDIR`` re-merges them after the fact.

Usage::

    python -m repro plan --nodes 80 --tasks 20 --scheme remo
    python -m repro simulate --nodes 60 --tasks 15 --periods 25 --json
    python -m repro adapt --nodes 60 --tasks 20 --batches 5 --strategy adaptive
    python -m repro check --preset quickstart
    python -m repro check --nodes 48 --tasks 12 --corrupt cycle
    python -m repro run --preset quickstart --periods 10 --json
    python -m repro run --nodes 32 --tasks 8 --fail-node 3:2:6
    python -m repro run --nodes 120 --trace run.trace.json --metrics run.prom
    python -m repro metrics run.prom
    python -m repro metrics run.prom --format prometheus
    python -m repro serve --preset quickstart --collectors 2 --port 8080
    python -m repro deploy --workers 2 --trace deploy.trace.json --rundir run/
    python -m repro trace run/ --out merged.trace.json --strict
    python -m repro lint src/ benchmarks/
    python -m repro lint --format github --rule REMO421 src/
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.checks import (
    FAULT_KINDS,
    check_plan_for_cluster,
    describe_codes,
    inject_fault,
)
from repro.core.adaptation import AdaptationStrategy, AdaptiveMonitoringService
from repro.core.cost import CostModel
from repro.core.plan import SHARD_MODES
from repro.core.planner import RemoPlanner
from repro.core.schemes import OneSetPlanner, SingletonSetPlanner
from repro.obs import log, names, trace
from repro.obs.export import (
    check_prometheus_text,
    parse_prometheus_text,
    read_jsonl_spans,
    write_chrome_trace,
    write_jsonl_spans,
    write_prometheus,
)
from repro.net.deploy import (
    DeployError,
    DeploySpec,
    make_spec,
    parse_chaos_kill,
    run_deploy,
)
from repro.obs.metrics import MetricsRegistry, default_registry, use_registry
from repro.runtime import AgentOutage, DropPolicy, MonitoringRuntime, RuntimeConfig
from repro.runtime.metrics import RuntimeMetrics
from repro.serve import ControlPlane, run_serve
from repro.simulation import MonitoringSimulation, SimulationConfig
from repro.workloads.presets import quickstart_workload, sampled_workload
from repro.workloads.updates import TaskUpdateStream

SCHEMES = {
    "remo": RemoPlanner,
    "singleton": SingletonSetPlanner,
    "one-set": OneSetPlanner,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=64, help="cluster size")
    parser.add_argument("--capacity", type=float, default=400.0, help="node budget b_i")
    parser.add_argument(
        "--central", type=float, default=None, help="collector budget (default 3x capacity)"
    )
    parser.add_argument("--pool", type=int, default=32, help="attribute pool size")
    parser.add_argument(
        "--attrs-per-node", type=int, default=16, help="attributes observable per node"
    )
    parser.add_argument("--tasks", type=int, default=15, help="number of monitoring tasks")
    parser.add_argument("--cost-c", type=float, default=20.0, help="per-message overhead C")
    parser.add_argument("--cost-a", type=float, default=1.0, help="per-value cost a")
    parser.add_argument("--seed", type=int, default=1, help="random seed")
    parser.add_argument(
        "--scheme",
        choices=sorted(SCHEMES),
        default="remo",
        help="partition scheme",
    )


def _add_json(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object instead of tables",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write an execution trace: .jsonl for the raw span log, "
        "any other extension for Chrome trace-event JSON (Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write a Prometheus text-format snapshot of every metric "
        "this command touched",
    )


def _emit_json(payload: Dict[str, Any]) -> None:
    print(json.dumps(payload, indent=2, sort_keys=False))


def _workload_params(args) -> Dict[str, Any]:
    """The :func:`sampled_workload` kwargs described by CLI args."""
    return {
        "nodes": args.nodes,
        "capacity": args.capacity,
        "central": args.central,
        "pool": args.pool,
        "attrs_per_node": args.attrs_per_node,
        "tasks": args.tasks,
        "cost_c": args.cost_c,
        "cost_a": args.cost_a,
        "seed": args.seed,
    }


def _setup(args):
    return sampled_workload(**_workload_params(args))


def _plan_summary(plan, elapsed: Optional[float] = None) -> Dict[str, Any]:
    summary: Dict[str, Any] = {
        "coverage": plan.coverage(),
        "collected_pairs": plan.collected_pair_count(),
        "requested_pairs": plan.requested_pair_count(),
        "trees": plan.tree_count(),
        "max_tree_depth": plan.max_tree_depth(),
        "traffic_per_period": plan.total_message_cost(),
        "collector_usage": plan.central_usage(),
    }
    if elapsed is not None:
        summary["planning_seconds"] = elapsed
    return summary


def _planning_stats_payload(stats) -> Dict[str, Any]:
    """JSON block for :class:`PlanningStats`.

    The same field names are emitted by ``benchmarks/
    bench_planner_scaling.py`` so dashboards can join the two sources.
    """
    return {
        "iterations": stats.iterations,
        "candidates_ranked": stats.candidates_ranked,
        "candidates_evaluated": stats.candidates_evaluated,
        "accepted_ops": list(stats.accepted_ops),
        "elapsed_seconds": stats.elapsed_seconds,
        "memo_hits": stats.memo_hits,
        "memo_misses": stats.memo_misses,
    }


def _plan(args) -> int:
    cluster, cost, tasks = _setup(args)
    pstats = None
    if args.scheme == "remo":
        planner = RemoPlanner(
            cost,
            parallelism=getattr(args, "parallelism", 1),
            beam_width=getattr(args, "beam_width", None),
            candidate_budget=None if getattr(args, "exhaustive", False) else 8,
        )
        plan, pstats = planner.plan_with_stats(tasks, cluster)
        elapsed = pstats.elapsed_seconds
    else:
        planner = SCHEMES[args.scheme](cost)
        with trace.timer(names.SPAN_PLANNER_PLAN, lane=names.LANE_PLANNER, scheme=args.scheme) as t:
            plan = planner.plan(tasks, cluster)
        elapsed = t.elapsed
    plan.validate({n.node_id: n.capacity for n in cluster}, cluster.central_capacity)
    summary = _plan_summary(plan, elapsed)
    tree_rows = [
        {
            "attributes": sorted(attr_set),
            "nodes": len(result.tree),
            "height": result.tree.height(),
            "pairs": result.tree.pair_count(),
        }
        for attr_set, result in sorted(plan.trees.items(), key=lambda kv: sorted(kv[0]))
    ]
    if args.json:
        payload: Dict[str, Any] = {
            "command": "plan",
            "scheme": args.scheme,
            "nodes": args.nodes,
            "tasks": args.tasks,
            "summary": summary,
            "trees": tree_rows,
        }
        if pstats is not None:
            payload["planning"] = _planning_stats_payload(pstats)
            payload["planning"]["beam_width"] = getattr(args, "beam_width", None)
            payload["planning"]["exhaustive"] = bool(getattr(args, "exhaustive", False))
        _emit_json(payload)
        return 0
    metric_rows = [
        ["coverage", round(summary["coverage"], 4)],
        ["collected pairs", summary["collected_pairs"]],
        ["requested pairs", summary["requested_pairs"]],
        ["trees", summary["trees"]],
        ["max tree depth", summary["max_tree_depth"]],
        ["traffic / period", round(summary["traffic_per_period"], 1)],
        ["collector usage", round(summary["collector_usage"], 1)],
        ["planning seconds", round(elapsed, 3)],
    ]
    if pstats is not None:
        metric_rows.extend(
            [
                ["search iterations", pstats.iterations],
                ["candidates ranked", pstats.candidates_ranked],
                ["candidates evaluated", pstats.candidates_evaluated],
                ["accepted ops", len(pstats.accepted_ops)],
            ]
        )
    print(
        format_table(
            f"{args.scheme} plan ({args.nodes} nodes, {args.tasks} tasks)",
            ["metric", "value"],
            metric_rows,
        )
    )
    rows = [
        [
            ",".join(row["attributes"][:4]) + ("..." if len(row["attributes"]) > 4 else ""),
            row["nodes"],
            row["height"],
            row["pairs"],
        ]
        for row in tree_rows
    ]
    print()
    print(format_table("trees", ["attributes", "nodes", "height", "pairs"], rows))
    return 0


def _simulate(args) -> int:
    cluster, cost, tasks = _setup(args)
    plan = SCHEMES[args.scheme](cost).plan(tasks, cluster)
    stats = MonitoringSimulation(
        plan, cluster, config=SimulationConfig(seed=args.seed)
    ).run(args.periods)
    if args.json:
        _emit_json(
            {
                "command": "simulate",
                "scheme": args.scheme,
                "nodes": args.nodes,
                "tasks": args.tasks,
                "periods": args.periods,
                "planned_coverage": plan.coverage(),
                "mean_percentage_error": stats.mean_percentage_error,
                "mean_fresh_coverage": stats.mean_fresh_coverage,
                "messages": {
                    "sent": stats.messages_sent,
                    "delivered": stats.messages_delivered,
                    "dropped_capacity": stats.messages_dropped_capacity,
                    "dropped_failure": stats.messages_dropped_failure,
                },
                "values_trimmed": stats.values_trimmed,
                "cost_units_spent": stats.cost_units_spent,
            }
        )
        return 0
    print(
        format_table(
            f"{args.scheme} simulated over {args.periods} periods",
            ["metric", "value"],
            [
                ["coverage (planned)", round(plan.coverage(), 4)],
                ["mean % error", round(stats.mean_percentage_error, 4)],
                ["mean freshness", round(stats.mean_fresh_coverage, 4)],
                ["messages sent", stats.messages_sent],
                ["messages delivered", stats.messages_delivered],
                ["dropped (capacity)", stats.messages_dropped_capacity],
                ["dropped (failure)", stats.messages_dropped_failure],
                ["values trimmed", stats.values_trimmed],
            ],
        )
    )
    return 0


def _adapt(args) -> int:
    cluster, cost, tasks = _setup(args)
    strategy = AdaptationStrategy(args.strategy)
    svc = AdaptiveMonitoringService(cluster, cost, strategy=strategy)
    svc.initialize(tasks, now=0.0)
    stream = TaskUpdateStream(cluster, tasks, seed=args.seed + 2)
    batches = []
    for step in range(args.batches):
        batch = stream.next_batch()
        report = svc.apply_changes(batch, now=float(step + 1))
        batches.append(
            {
                "batch": step + 1,
                "ops": len(batch),
                "cpu_seconds": report.planning_seconds,
                "adaptation_messages": report.adaptation_messages,
                "coverage": report.coverage,
                "applied_ops": len(report.applied_ops),
                "throttled_ops": report.throttled_ops,
            }
        )
    if args.json:
        _emit_json(
            {
                "command": "adapt",
                "strategy": strategy.value,
                "nodes": args.nodes,
                "tasks": args.tasks,
                "batches": batches,
            }
        )
        return 0
    rows = [
        [
            b["batch"],
            b["ops"],
            round(b["cpu_seconds"], 3),
            b["adaptation_messages"],
            round(b["coverage"], 4),
            b["applied_ops"],
            b["throttled_ops"],
        ]
        for b in batches
    ]
    print(
        format_table(
            f"{strategy.value} over {args.batches} update batches",
            ["batch", "ops", "cpu_s", "adapt_msgs", "coverage", "applied", "throttled"],
            rows,
        )
    )
    return 0


def _check(args) -> int:
    if args.codes:
        rows = [
            [info.code, info.severity.value, info.title]
            for info in describe_codes()
        ]
        print(format_table("diagnostic codes", ["code", "severity", "title"], rows))
        return 0
    if args.preset == "quickstart":
        cluster, cost, tasks = quickstart_workload()
        label = "quickstart"
    else:
        cluster, cost, tasks = _setup(args)
        label = f"{args.nodes} nodes, {args.tasks} tasks"
    plan = SCHEMES[args.scheme](cost).plan(tasks, cluster)
    if args.corrupt:
        print(f"injected fault: {inject_fault(plan, args.corrupt)}")
    report = check_plan_for_cluster(plan, cluster)
    header = f"{args.scheme} plan ({label}): "
    if not report:
        print(header + "all invariants hold, no diagnostics")
        return 0
    print(
        header
        + f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
    )
    print(report.format(with_hints=args.hints))
    return 1 if report.has_errors else 0


def _parse_outage(spec: str) -> AgentOutage:
    """Parse a ``NODE:START:END`` outage spec (periods, end-exclusive)."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected NODE:START:END (periods), got {spec!r}"
        )
    try:
        node, start, end = (int(p) for p in parts)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"non-integer field in {spec!r}") from exc
    try:
        return AgentOutage(node=node, start=start, end=end)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _run(args) -> int:
    if args.preset == "quickstart":
        cluster, cost, tasks = quickstart_workload()
        label = "quickstart"
    else:
        cluster, cost, tasks = _setup(args)
        label = f"{args.nodes} nodes, {args.tasks} tasks"
    plan = SCHEMES[args.scheme](cost).plan(tasks, cluster)

    check_summary: Optional[Dict[str, int]] = None
    if not args.no_verify:
        # Launch gate: never start agents for a plan the static
        # verifier rejects.
        check_report = check_plan_for_cluster(plan, cluster)
        check_summary = {
            "errors": len(check_report.errors),
            "warnings": len(check_report.warnings),
        }
        if check_report.has_errors:
            print("plan verification failed, refusing to launch:", file=sys.stderr)
            print(check_report.format(with_hints=True), file=sys.stderr)
            return 1

    config = RuntimeConfig(
        period_seconds=args.period_seconds,
        drop_policy=DropPolicy(args.drop_policy),
        heartbeat_every=args.heartbeat_every,
        failure_timeout=args.failure_timeout,
        seed=args.seed,
        outages=list(args.fail_node),
    )
    # Record into the ambient registry so a ``--metrics`` snapshot
    # covers planner and runtime counters together and always
    # reconciles with the report (they are the same bookkeeping).
    runtime = MonitoringRuntime(
        plan,
        cluster,
        config=config,
        metrics=RuntimeMetrics(registry=default_registry()),
    )
    report = runtime.run(args.periods)
    if args.json:
        payload: Dict[str, Any] = {
            "command": "run",
            "scheme": args.scheme,
            "workload": label,
            "plan": _plan_summary(plan),
            "drop_policy": config.drop_policy.value,
        }
        if check_summary is not None:
            payload["plan_check"] = check_summary
        payload.update(report.as_dict())
        _emit_json(payload)
        return 0
    print(report.render(f"{args.scheme} live run ({label}, {args.periods} periods)"))
    return 0


def _parse_chaos(spec: str):
    """argparse type for ``--chaos-kill RANK:SECONDS``."""
    try:
        return parse_chaos_kill(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _deploy(args) -> int:
    """Shard the plan across worker processes over real TCP."""
    if args.preset == "quickstart":
        workload: Dict[str, Any] = {"preset": "quickstart"}
        label = "quickstart"
    else:
        workload = _workload_params(args)
        label = f"{args.nodes} nodes, {args.tasks} tasks"
    config = {
        "period_seconds": args.period_seconds,
        "drop_policy": args.drop_policy,
        "heartbeat_every": args.heartbeat_every,
        "failure_timeout": args.failure_timeout,
        "seed": args.seed,
    }
    try:
        spec, plan, cluster, shard_report = make_spec(
            workload=workload,
            scheme=args.scheme,
            workers=args.workers,
            periods=args.periods,
            config=config,
            rundir=args.rundir,
            host=args.host,
            collectors=args.collectors,
            trace=getattr(args, "trace", None) is not None,
        )
    except DeployError as exc:
        print(f"repro deploy: {exc}", file=sys.stderr)
        return 1
    if shard_report.has_errors:
        print("shard assignment invalid, refusing to launch:", file=sys.stderr)
        print(shard_report.format(with_hints=True), file=sys.stderr)
        _record_check_failure(spec, "shard", len(shard_report.errors))
        return 1
    check_summary: Optional[Dict[str, int]] = None
    if not args.no_verify:
        # Same launch gate as ``repro run``: never spawn processes for
        # a plan the static verifier rejects.
        check_report = check_plan_for_cluster(plan, cluster)
        check_summary = {
            "errors": len(check_report.errors),
            "warnings": len(check_report.warnings),
        }
        if check_report.has_errors:
            print("plan verification failed, refusing to launch:", file=sys.stderr)
            print(check_report.format(with_hints=True), file=sys.stderr)
            _record_check_failure(spec, "plan", len(check_report.errors))
            return 1
    try:
        outcome = run_deploy(
            spec,
            plan=plan,
            chaos_kill=dict(args.chaos_kill),
            metrics=RuntimeMetrics(registry=default_registry()),
        )
    except DeployError as exc:
        print(f"repro deploy: {exc}", file=sys.stderr)
        return 1
    # Fold every child process's span artifact into the supervisor's
    # tracer: the ``--trace`` export then covers the whole deployment
    # (one monitoring period = one trace id across all processes).
    if trace.active_tracer() is not None:
        for span_file in outcome.trace_files:
            try:
                trace.ingest(read_jsonl_spans(span_file))
            except (OSError, ValueError) as exc:
                print(f"repro deploy: skipping {span_file}: {exc}", file=sys.stderr)
    report = outcome.report
    if args.json:
        payload: Dict[str, Any] = {
            "command": "deploy",
            "scheme": args.scheme,
            "workload": label,
            "workers": spec.workers,
            "collectors": spec.collectors,
            "restarts": outcome.restarts,
            "worker_reports": outcome.worker_reports,
            "rundir": spec.rundir,
            "trace_files": outcome.trace_files,
            "flight_records": outcome.flight_records,
            "plan": _plan_summary(plan),
            "drop_policy": args.drop_policy,
        }
        if check_summary is not None:
            payload["plan_check"] = check_summary
        payload.update(report.as_dict())
        _emit_json(payload)
        return 0
    print(
        format_table(
            f"deployment ({label}, {spec.workers} workers)",
            ["process", "endpoint", "nodes"],
            [
                *[
                    [f"worker {rank}", str(spec.worker_endpoints[rank]), len(shard)]
                    for rank, shard in enumerate(spec.shards)
                ],
                [
                    f"collector x{spec.collectors}",
                    str(spec.collector_endpoint),
                    "-",
                ],
            ],
        )
    )
    print()
    print(
        report.render(
            f"{args.scheme} deployed run ({label}, {args.periods} periods, "
            f"{spec.workers} workers, {outcome.restart_total()} restart(s))"
        )
    )
    for flight in outcome.flight_records:
        print(f"flight record: {flight}")
    return 0


def _record_check_failure(spec: "DeploySpec", kind: str, errors: int) -> None:
    """Flight-record a refused launch so the rundir explains itself."""
    log.emit(
        names.LOG_DEPLOY_CHECK_FAILED,
        lane=names.LANE_DEPLOY,
        severity="error",
        check=kind,
        errors=errors,
    )
    log.dump_flight(
        spec.flight_path("supervisor"),
        reason=f"{kind} check failed with {errors} error(s); launch refused",
    )


def _metrics(args) -> int:
    """Validate and render a ``--metrics`` Prometheus snapshot file.

    ``--format prometheus`` re-emits the snapshot as canonical sorted
    ``series value`` lines; two snapshots rendered this way (a
    ``--metrics`` file and a ``repro serve`` ``/metrics`` scrape) diff
    cleanly because HELP/TYPE chrome and series order are normalized
    away.  ``--format jsonl`` emits one ``{"series", "value"}`` object
    per line for log pipelines.
    """
    try:
        with open(args.path) as fh:
            text = fh.read()
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    problems = check_prometheus_text(text)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    samples = parse_prometheus_text(text)
    if args.json:
        _emit_json({"command": "metrics", "path": args.path, "samples": samples})
        return 0
    if args.format == "prometheus":
        for series, value in sorted(samples.items()):
            print(f"{series} {value:g}")
        return 0
    if args.format == "jsonl":
        for series, value in sorted(samples.items()):
            print(json.dumps({"series": series, "value": value}, sort_keys=True))
        return 0
    rows = [[series, round(value, 4)] for series, value in sorted(samples.items())]
    print(format_table(f"metrics snapshot ({args.path})", ["series", "value"], rows))
    return 0


def _critical_path(trace_spans) -> List[str]:
    """Span names from the trace root to the last-finishing span.

    Parent links cross process boundaries (the envelope carried the
    context over TCP), so the chain walks back from the slowest leaf --
    typically a worker-side wave -- through the collector's period root.
    """
    by_id = {s.span_id: s for s in trace_spans if s.span_id}
    # The last-finishing *leaf*: enclosing spans (the period root) end
    # after everything they contain, so restrict to spans no other span
    # claims as parent before taking the latest end time.
    parent_ids = {s.parent_id for s in trace_spans if s.parent_id}
    leaves = [s for s in trace_spans if s.span_id not in parent_ids]
    leaf = max(leaves or trace_spans, key=lambda s: s.start + s.duration)
    chain: List[str] = []
    seen = set()
    current = leaf
    while current is not None and current.span_id not in seen:
        seen.add(current.span_id)
        chain.append(current.name)
        current = by_id.get(current.parent_id) if current.parent_id else None
    chain.reverse()
    return chain


def _trace_cmd(args) -> int:
    """Merge a deploy rundir's per-process span artifacts into one trace."""
    files = sorted(glob.glob(os.path.join(args.rundir, "trace-*.jsonl")))
    if not files:
        print(
            f"repro trace: no trace-*.jsonl artifacts in {args.rundir} "
            "(was the deploy run with --trace?)",
            file=sys.stderr,
        )
        return 2
    by_file: Dict[str, list] = {}
    spans = []
    for path in files:
        try:
            by_file[os.path.basename(path)] = read_jsonl_spans(path)
        except (OSError, ValueError) as exc:
            print(f"repro trace: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        spans.extend(by_file[os.path.basename(path)])

    problems: List[str] = []
    if args.strict:
        spec_path = os.path.join(args.rundir, "spec.json")
        try:
            with open(spec_path, encoding="utf-8") as fh:
                spec = DeploySpec.from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(
                f"repro trace: --strict needs a readable {spec_path}: {exc}",
                file=sys.stderr,
            )
            return 2
        roles = ["collector"] + [f"worker-{rank}" for rank in range(spec.workers)]
        for role in roles:
            if not by_file.get(f"trace-{role}.jsonl"):
                problems.append(f"{role} contributed no spans to the merged trace")

    by_trace: Dict[str, list] = {}
    for span in spans:
        if span.trace_id is not None:
            by_trace.setdefault(span.trace_id, []).append(span)
    roots = sorted(
        (s for s in spans if s.name == names.SPAN_RUNTIME_PERIOD and s.trace_id),
        key=lambda s: (s.attrs.get("period", -1), s.start),
    )
    periods = []
    for root in roots:
        trace_spans = by_trace[root.trace_id]
        last_end = max(s.start + s.duration for s in trace_spans)
        periods.append(
            {
                "period": root.attrs.get("period"),
                "trace_id": root.trace_id,
                "spans": len(trace_spans),
                "processes": len({s.pid for s in trace_spans}),
                "duration_ms": root.duration * 1000.0,
                "cross_process_ms": (last_end - root.start) * 1000.0,
                "critical_path": _critical_path(trace_spans),
            }
        )

    if args.out is not None:
        if args.out.endswith(".jsonl"):
            write_jsonl_spans(spans, args.out)
        else:
            write_chrome_trace(spans, args.out, epoch=min(s.start for s in spans))

    if args.json:
        _emit_json(
            {
                "command": "trace",
                "rundir": args.rundir,
                "files": sorted(by_file),
                "spans": len(spans),
                "out": args.out,
                "periods": periods,
                "problems": problems,
            }
        )
        return 1 if problems else 0

    rows = [
        [
            p["period"],
            p["trace_id"][:8],
            p["spans"],
            p["processes"],
            round(p["duration_ms"], 2),
            round(p["cross_process_ms"], 2),
        ]
        for p in periods
    ]
    print(
        format_table(
            f"merged trace ({len(spans)} spans from {len(by_file)} processes)",
            ["period", "trace", "spans", "procs", "duration_ms", "xproc_ms"],
            rows,
        )
    )
    if periods:
        slowest = max(periods, key=lambda p: p["cross_process_ms"])
        print()
        print(
            f"critical path (period {slowest['period']}): "
            + " > ".join(slowest["critical_path"])
        )
    if args.out is not None:
        print(f"merged trace written to {args.out}")
    for problem in problems:
        print(f"repro trace: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _serve(args) -> int:
    """Run the control-plane HTTP service (blocks until stopped)."""
    if args.preset == "quickstart":
        cluster, cost, _tasks = quickstart_workload()
        label = "quickstart"
    else:
        cluster, cost, _tasks = _setup(args)
        label = f"{args.nodes} nodes"
    config = RuntimeConfig(
        period_seconds=args.period_seconds,
        drop_policy=DropPolicy(args.drop_policy),
        heartbeat_every=args.heartbeat_every,
        failure_timeout=args.failure_timeout,
        seed=args.seed,
    )
    # The workload's sampled tasks are ignored on purpose: the service
    # starts empty and tenants populate it over HTTP.
    try:
        controlplane = ControlPlane(
            cluster,
            cost,
            collectors=args.collectors,
            shard_mode=args.shard_mode,
            strategy=AdaptationStrategy(args.strategy),
            config=config,
            metrics=default_registry(),
        )
    except ValueError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    print(
        f"control plane over {label}: {args.collectors} collector shard(s), "
        f"{args.shard_mode} sharding",
        flush=True,
    )
    run_serve(
        controlplane,
        host=args.host,
        port=args.port,
        announce=args.announce,
        max_seconds=args.max_seconds,
    )
    return 0


def _lint(args) -> int:
    """Run the REMO4xx static analysis (see :mod:`repro.staticcheck`)."""
    from repro.staticcheck import Baseline, describe_rules, lint_paths, render
    from repro.staticcheck.baseline import BASELINE_FILENAME

    if args.codes:
        rows = [[info.code, info.family, info.title] for info in describe_rules()]
        print(format_table("staticcheck rules", ["code", "family", "title"], rows))
        return 0
    root = Path.cwd()
    targets = [Path(p) for p in args.paths] or [Path("src")]
    baseline_path = Path(args.baseline) if args.baseline else root / BASELINE_FILENAME
    try:
        baseline = Baseline.load(baseline_path)
    except (ValueError, OSError) as exc:
        print(f"repro lint: cannot load baseline: {exc}", file=sys.stderr)
        return 2
    try:
        result = lint_paths(
            targets,
            root=root,
            codes=args.rule,
            baseline=baseline,
            context_cache=Path(args.context_cache) if args.context_cache else None,
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.write_baseline:
        Baseline.from_diagnostics(result.pre_baseline).save(baseline_path)
        print(
            f"wrote {baseline_path} ({len(result.pre_baseline)} finding(s) "
            "grandfathered)"
        )
        return 0
    print(render(result, args.format))
    return 0 if result.ok else 1


def _export_observability(args, registry: MetricsRegistry, tracer) -> None:
    """Write the ``--trace`` / ``--metrics`` artifacts for one command."""
    trace_path = getattr(args, "trace", None)
    if trace_path is not None:
        spans = tracer.spans()
        if trace_path.endswith(".jsonl"):
            write_jsonl_spans(spans, trace_path)
        else:
            write_chrome_trace(spans, trace_path, epoch=tracer.epoch)
    metrics_path = getattr(args, "metrics", None)
    if metrics_path is not None:
        write_prometheus(registry, metrics_path)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="REMO resource-aware monitoring planner (paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan_p = sub.add_parser("plan", help="plan a monitoring forest")
    _add_common(plan_p)
    _add_json(plan_p)
    _add_obs(plan_p)
    plan_p.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="worker processes for candidate evaluation (remo scheme only; "
        "results are identical to a serial run)",
    )
    plan_p.add_argument(
        "--beam-width",
        type=int,
        default=None,
        help="cap ranked candidates evaluated per search iteration (remo "
        "scheme only; default evaluates the full candidate budget and "
        "keeps plans bit-identical across releases)",
    )
    plan_p.add_argument(
        "--exhaustive",
        action="store_true",
        help="evaluate the entire merge/split neighborhood each iteration "
        "instead of the ranked top-8 (remo scheme only; slow, ablation "
        "baseline)",
    )
    plan_p.set_defaults(func=_plan)

    sim_p = sub.add_parser("simulate", help="plan then simulate")
    _add_common(sim_p)
    _add_json(sim_p)
    _add_obs(sim_p)
    sim_p.add_argument("--periods", type=int, default=20, help="collection periods")
    sim_p.set_defaults(func=_simulate)

    adapt_p = sub.add_parser("adapt", help="run the adaptive service under churn")
    _add_common(adapt_p)
    _add_json(adapt_p)
    _add_obs(adapt_p)
    adapt_p.add_argument("--batches", type=int, default=5, help="update batches")
    adapt_p.add_argument(
        "--strategy",
        choices=[s.value for s in AdaptationStrategy],
        default="adaptive",
    )
    adapt_p.set_defaults(func=_adapt)

    check_p = sub.add_parser(
        "check", help="plan, then statically verify the plan's invariants"
    )
    _add_common(check_p)
    check_p.add_argument(
        "--preset",
        choices=["quickstart"],
        default=None,
        help="use a canonical workload instead of the sampled one",
    )
    check_p.add_argument(
        "--corrupt",
        choices=list(FAULT_KINDS),
        default=None,
        help="inject a known corruption before checking (verifier self-test)",
    )
    check_p.add_argument(
        "--hints", action="store_true", help="print fix hints with each finding"
    )
    check_p.add_argument(
        "--codes", action="store_true", help="list the diagnostic-code registry and exit"
    )
    check_p.set_defaults(func=_check)

    run_p = sub.add_parser(
        "run", help="execute the plan live on the asyncio runtime"
    )
    _add_common(run_p)
    _add_json(run_p)
    _add_obs(run_p)
    run_p.add_argument(
        "--preset",
        choices=["quickstart"],
        default=None,
        help="use a canonical workload instead of the sampled one",
    )
    run_p.add_argument("--periods", type=int, default=10, help="collection periods")
    run_p.add_argument(
        "--period-seconds",
        type=float,
        default=0.1,
        help="wall-clock seconds per collection period",
    )
    run_p.add_argument(
        "--drop-policy",
        choices=[p.value for p in DropPolicy],
        default=DropPolicy.TRIM.value,
        help="behaviour when a payload exceeds the per-period budget",
    )
    run_p.add_argument(
        "--heartbeat-every", type=int, default=1, help="heartbeat interval in periods"
    )
    run_p.add_argument(
        "--failure-timeout",
        type=int,
        default=3,
        help="periods without heartbeat before the collector flags a node",
    )
    run_p.add_argument(
        "--fail-node",
        type=_parse_outage,
        action="append",
        default=[],
        metavar="NODE:START:END",
        help="crash NODE during periods [START, END) (repeatable)",
    )
    run_p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the pre-launch plan invariant check",
    )
    run_p.set_defaults(func=_run)

    deploy_p = sub.add_parser(
        "deploy",
        help="run the plan across worker processes over real TCP",
    )
    _add_common(deploy_p)
    _add_json(deploy_p)
    _add_obs(deploy_p)
    deploy_p.add_argument(
        "--preset",
        choices=["quickstart"],
        default=None,
        help="use a canonical workload instead of the sampled one",
    )
    deploy_p.add_argument(
        "--workers", type=int, default=3, help="worker processes to shard nodes across"
    )
    deploy_p.add_argument(
        "--collectors",
        type=int,
        default=1,
        help="collector shards co-hosted in the collector process "
        "(hash-sharded collection trees)",
    )
    deploy_p.add_argument("--periods", type=int, default=10, help="collection periods")
    deploy_p.add_argument(
        "--period-seconds",
        type=float,
        default=0.1,
        help="wall-clock seconds per collection period",
    )
    deploy_p.add_argument(
        "--drop-policy",
        choices=[p.value for p in DropPolicy],
        default=DropPolicy.TRIM.value,
        help="behaviour when a payload exceeds the per-period budget",
    )
    deploy_p.add_argument(
        "--heartbeat-every", type=int, default=1, help="heartbeat interval in periods"
    )
    deploy_p.add_argument(
        "--failure-timeout",
        type=int,
        default=3,
        help="periods without heartbeat before the collector flags a node",
    )
    deploy_p.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface every process listens on (single-host deployment)",
    )
    deploy_p.add_argument(
        "--rundir",
        metavar="PATH",
        default=None,
        help="directory for the spec/readiness/report files "
        "(default: a fresh temp directory)",
    )
    deploy_p.add_argument(
        "--chaos-kill",
        type=_parse_chaos,
        action="append",
        default=[],
        metavar="RANK:SECONDS",
        help="SIGKILL worker RANK this many seconds into the run, once "
        "(exercises the supervisor's restart path; repeatable)",
    )
    deploy_p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the pre-launch plan invariant check",
    )
    deploy_p.set_defaults(func=_deploy)

    trace_p = sub.add_parser(
        "trace",
        help="merge a deploy rundir's span artifacts into one trace",
    )
    trace_p.add_argument(
        "rundir",
        help="deploy run directory holding trace-*.jsonl span artifacts",
    )
    trace_p.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the merged trace: .jsonl for the raw span log, any "
        "other extension for Chrome trace-event JSON (Perfetto)",
    )
    trace_p.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 unless the collector and every worker listed in the "
        "rundir's spec.json contributed spans (CI completeness gate)",
    )
    _add_json(trace_p)
    trace_p.set_defaults(func=_trace_cmd)

    metrics_p = sub.add_parser(
        "metrics", help="validate and render a --metrics snapshot file"
    )
    metrics_p.add_argument("path", help="Prometheus text-format snapshot to render")
    metrics_p.add_argument(
        "--format",
        choices=["table", "prometheus", "jsonl"],
        default="table",
        help="output format: a table, canonical sorted 'series value' "
        "lines (diffable against a /metrics scrape), or one JSON "
        "object per line",
    )
    _add_json(metrics_p)
    metrics_p.set_defaults(func=_metrics)

    serve_p = sub.add_parser(
        "serve",
        help="run the multi-tenant control-plane HTTP service",
    )
    _add_common(serve_p)
    _add_obs(serve_p)
    serve_p.add_argument(
        "--preset",
        choices=["quickstart"],
        default=None,
        help="use the canonical cluster instead of the sampled one "
        "(workload tasks are ignored either way: tenants submit "
        "tasks over HTTP)",
    )
    serve_p.add_argument(
        "--collectors",
        type=int,
        default=1,
        help="collector shards to split the collection trees across",
    )
    serve_p.add_argument(
        "--shard-mode",
        choices=list(SHARD_MODES),
        default="hash",
        help="how partition sets map to collector shards",
    )
    serve_p.add_argument(
        "--strategy",
        choices=[s.value for s in AdaptationStrategy],
        default="adaptive",
        help="adaptation strategy for POST /adapt",
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve_p.add_argument(
        "--port", type=int, default=0, help="TCP port (0 binds an ephemeral port)"
    )
    serve_p.add_argument(
        "--announce",
        metavar="PATH",
        default=None,
        help="write the bound {host, port} to this JSON file once listening",
    )
    serve_p.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="stop after this many seconds (CI smoke jobs); default: serve forever",
    )
    serve_p.add_argument(
        "--period-seconds",
        type=float,
        default=0.05,
        help="wall-clock seconds per collection period for POST /run",
    )
    serve_p.add_argument(
        "--drop-policy",
        choices=[p.value for p in DropPolicy],
        default=DropPolicy.TRIM.value,
        help="behaviour when a payload exceeds the per-period budget",
    )
    serve_p.add_argument(
        "--heartbeat-every", type=int, default=1, help="heartbeat interval in periods"
    )
    serve_p.add_argument(
        "--failure-timeout",
        type=int,
        default=3,
        help="periods without heartbeat before a collector flags a node",
    )
    serve_p.set_defaults(func=_serve)

    lint_p = sub.add_parser(
        "lint", help="run the REMO4xx static source analysis"
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=[],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint_p.add_argument(
        "--format",
        choices=["text", "json", "github"],
        default="text",
        help="output format (github emits workflow-command annotations)",
    )
    lint_p.add_argument(
        "--rule",
        action="append",
        default=[],
        metavar="CODE",
        help="run only this rule (repeatable; default: all)",
    )
    lint_p.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file of grandfathered findings "
        "(default: ./staticcheck-baseline.json when present)",
    )
    lint_p.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    lint_p.add_argument(
        "--context-cache",
        metavar="PATH",
        default=None,
        help="JSON cache for the analysis context (reused when file "
        "hashes match; for CI)",
    )
    lint_p.add_argument(
        "--codes",
        action="store_true",
        help="list the rule registry and exit",
    )
    lint_p.set_defaults(func=_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    wants_obs = (
        getattr(args, "trace", None) is not None
        or getattr(args, "metrics", None) is not None
    )
    if not wants_obs:
        return args.func(args)
    # Fresh ambient registry per invocation: two commands run in one
    # process (tests, notebooks) must not bleed counters into each
    # other's --metrics snapshot.  Tracing is enabled only when a
    # --trace path asks for it, keeping the no-flags path zero-cost.
    registry = MetricsRegistry()
    with use_registry(registry):
        if getattr(args, "trace", None) is not None:
            with trace.installed() as tracer:
                code = args.func(args)
        else:
            tracer = None
            code = args.func(args)
        _export_observability(args, registry, tracer)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
