"""Network-aware planning (Section 3.3's discussed extension).

REMO's core model assumes a datacenter-like fabric where any two nodes
communicate at similar endpoint cost.  For peer-to-peer overlays or
sensor networks, longer paths also incur *forwarding* cost, and the
paper notes the local search "can incorporate the forwarding cost in
the resource evaluation of a candidate plan".  This module provides
exactly that hook:

- a :class:`NetworkModel` mapping node pairs to hop distances (with
  ready-made grid and ring constructors);
- :func:`forwarding_cost` scoring a plan's per-period forwarding load;
- :func:`network_cost_fn` producing a ``plan_cost_fn`` for
  :class:`~repro.core.planner.RemoPlanner`, so candidate comparison
  penalizes topologies whose edges span long network paths.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.core.attributes import NodeId
from repro.core.plan import MonitoringPlan

#: Distance oracle signature: hops between two monitoring nodes (the
#: collector is node ``-1``).
DistanceFn = Callable[[NodeId, NodeId], float]


class NetworkModel:
    """Hop-distance model over monitoring nodes plus the collector."""

    def __init__(self, distance: DistanceFn) -> None:
        self._distance = distance

    def distance(self, a: NodeId, b: NodeId) -> float:
        d = self._distance(a, b)
        if d < 0:
            raise ValueError(f"distance({a}, {b}) must be >= 0, got {d}")
        return d

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, hops: float = 1.0) -> "NetworkModel":
        """The paper's datacenter assumption: every pair one hop apart."""
        return cls(lambda a, b: 0.0 if a == b else hops)

    @classmethod
    def ring(cls, n_nodes: int, collector_position: float = 0.0) -> "NetworkModel":
        """Nodes on a ring; distance is the shorter arc.

        The collector sits at ``collector_position`` (a fractional ring
        coordinate in [0, 1)).
        """
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be > 0, got {n_nodes}")

        def position(node: NodeId) -> float:
            if node == -1:
                return collector_position
            return (node % n_nodes) / n_nodes

        def distance(a: NodeId, b: NodeId) -> float:
            if a == b:
                return 0.0
            gap = abs(position(a) - position(b))
            return min(gap, 1.0 - gap) * n_nodes

        return cls(distance)

    @classmethod
    def grid(cls, width: int, collector: Tuple[int, int] = (0, 0)) -> "NetworkModel":
        """Nodes on a 2D grid (row-major ids); Manhattan distance."""
        if width <= 0:
            raise ValueError(f"width must be > 0, got {width}")

        def coords(node: NodeId) -> Tuple[int, int]:
            if node == -1:
                return collector
            return (node // width, node % width)

        def distance(a: NodeId, b: NodeId) -> float:
            (ra, ca), (rb, cb) = coords(a), coords(b)
            return float(abs(ra - rb) + abs(ca - cb))

        return cls(distance)


def forwarding_cost(plan: MonitoringPlan, network: NetworkModel) -> float:
    """Per-period forwarding load of a plan's monitoring edges.

    Each tree edge carries one message per period whose endpoints pay
    the usual ``C + a*x``; intermediate network hops forward it, so an
    edge spanning ``d`` hops costs ``(d - 1)`` extra message-forwards
    (zero in a datacenter where everything is one hop).
    """
    total = 0.0
    for attr_set, result in plan.trees.items():
        tree = result.tree
        for node in tree.nodes:
            parent = tree.parent(node)
            target = parent if parent is not None else -1
            hops = network.distance(node, target)
            extra = max(hops - 1.0, 0.0)
            total += extra * plan.cost.message_cost(int(round(tree.outgoing_values(node))))
    return total


def network_cost_fn(network: NetworkModel) -> Callable[[MonitoringPlan], float]:
    """A ``plan_cost_fn`` for :class:`RemoPlanner`: endpoint volume plus
    forwarding cost under ``network``."""

    def score(plan: MonitoringPlan) -> float:
        return plan.total_message_cost() + forwarding_cost(plan, network)

    return score
