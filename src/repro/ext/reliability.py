"""Reliability enhancements: SSDP and DSDP replication (Section 6.2).

Both modes work purely by *rewriting monitoring tasks*:

- **SSDP** (same source, different paths): every attribute ``a`` of a
  protected task gains aliases ``a#r1, a#r2, ...`` observed at the same
  nodes; an alias and its base are *forbidden* from sharing a partition
  set, so their values travel through different monitoring trees and a
  single link failure cannot silence both copies.
- **DSDP** (different sources, different paths): when groups of nodes
  observe the same value (e.g. hosts sharing a storage array), the task
  is rewritten into ``k`` tasks, each collecting the metric from a
  distinct representative per group, again alias-separated into
  distinct trees.

The planner enforces the separation through its ``forbidden_pairs``
constraint; nothing else in REMO changes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

from repro.cluster.metrics import MetricRegistry
from repro.cluster.node import Cluster, SimNode
from repro.core.attributes import AttributeId, NodeAttributePair, NodeId
from repro.core.plan import MonitoringPlan
from repro.core.tasks import MonitoringTask

_ALIAS_SEPARATOR = "#r"


def alias_name(attribute: AttributeId, replica: int) -> AttributeId:
    """Alias for replica ``replica`` (replica 0 is the base name)."""
    if replica == 0:
        return attribute
    return f"{attribute}{_ALIAS_SEPARATOR}{replica}"


def base_of(attribute: AttributeId) -> AttributeId:
    """Strip any replica suffix."""
    head, sep, tail = attribute.rpartition(_ALIAS_SEPARATOR)
    if sep and tail.isdigit():
        return head
    return attribute


@dataclass
class ReplicationRewrite:
    """Output of a reliability rewrite.

    ``tasks`` replace the originals; ``forbidden_pairs`` feeds the
    planner's merge constraint; ``alias_groups`` maps each base
    attribute to all names (base + aliases) carrying its value.
    """

    tasks: List[MonitoringTask]
    forbidden_pairs: Set[FrozenSet[AttributeId]]
    alias_groups: Dict[AttributeId, List[AttributeId]] = field(default_factory=dict)

    @property
    def alias_to_base(self) -> Dict[AttributeId, AttributeId]:
        mapping: Dict[AttributeId, AttributeId] = {}
        for base, names in self.alias_groups.items():
            for name in names:
                mapping[name] = base
        return mapping


def _forbid_all_pairs(names: Sequence[AttributeId]) -> Set[FrozenSet[AttributeId]]:
    return {frozenset(pair) for pair in itertools.combinations(names, 2)}


def rewrite_ssdp(
    tasks: Iterable[MonitoringTask],
    factor: int = 2,
) -> ReplicationRewrite:
    """Same-source/different-paths rewrite with replication ``factor``.

    Each input task ``t = (a, N_t)`` spawns ``factor - 1`` extra tasks
    over aliased attributes on the same nodes; the degree of
    reliability follows the number of duplications (Section 6.2).
    """
    if factor < 1:
        raise ValueError(f"replication factor must be >= 1, got {factor}")
    out_tasks: List[MonitoringTask] = []
    forbidden: Set[FrozenSet[AttributeId]] = set()
    alias_groups: Dict[AttributeId, List[AttributeId]] = {}
    for task in tasks:
        out_tasks.append(task)
        for attr in task.attributes:
            alias_groups.setdefault(attr, [attr])
        for replica in range(1, factor):
            aliased = [alias_name(a, replica) for a in sorted(task.attributes)]
            out_tasks.append(
                MonitoringTask(
                    f"{task.task_id}{_ALIAS_SEPARATOR}{replica}",
                    aliased,
                    task.nodes,
                    frequency=task.frequency,
                )
            )
            for attr, alias in zip(sorted(task.attributes), aliased):
                group = alias_groups.setdefault(attr, [attr])
                if alias not in group:
                    group.append(alias)
    for names in alias_groups.values():
        if len(names) > 1:
            forbidden |= _forbid_all_pairs(names)
    return ReplicationRewrite(out_tasks, forbidden, alias_groups)


def rewrite_dsdp(
    task_id: str,
    attribute: AttributeId,
    node_groups: Sequence[Sequence[NodeId]],
    frequency: float = 1.0,
) -> ReplicationRewrite:
    """Different-sources/different-paths rewrite (Section 6.2).

    ``node_groups`` lists groups of nodes that observe the *same*
    value.  With ``k = min(|group|)`` replicas, replica ``i`` collects
    the attribute from the ``i``-th member of every group, and each
    replica's alias is confined to its own tree.
    """
    groups = [list(g) for g in node_groups]
    if not groups or any(not g for g in groups):
        raise ValueError("node_groups must be non-empty groups of nodes")
    k = min(len(g) for g in groups)
    tasks: List[MonitoringTask] = []
    names: List[AttributeId] = []
    for replica in range(k):
        name = alias_name(attribute, replica)
        names.append(name)
        nodes = [group[replica] for group in groups]
        tasks.append(
            MonitoringTask(
                f"{task_id}{_ALIAS_SEPARATOR}{replica}" if replica else task_id,
                [name],
                nodes,
                frequency=frequency,
            )
        )
    forbidden = _forbid_all_pairs(names) if len(names) > 1 else set()
    return ReplicationRewrite(tasks, forbidden, {attribute: names})


def alias_cluster(cluster: Cluster, rewrite: ReplicationRewrite) -> Cluster:
    """A cluster whose nodes additionally observe every alias of their
    base attributes (aliases carry the same locally observed value, so
    observability is inherited)."""
    nodes = []
    for node in cluster:
        extra = set()
        for attr in node.attributes:
            for name in rewrite.alias_groups.get(attr, ()):
                extra.add(name)
        nodes.append(
            SimNode(
                node_id=node.node_id,
                capacity=node.capacity,
                attributes=frozenset(node.attributes) | extra,
            )
        )
    return Cluster(nodes, central_capacity=cluster.central_capacity)


def replica_plan_coverage(plan: MonitoringPlan, rewrite: ReplicationRewrite) -> float:
    """Fraction of *base* node-attribute pairs covered by >= 1 replica.

    The plan's raw coverage counts every alias separately; for the user
    a pair is served as soon as any replica path delivers it.
    """
    alias_to_base = rewrite.alias_to_base
    requested: Set[NodeAttributePair] = set()
    covered: Set[NodeAttributePair] = set()
    for pair in plan.pairs:
        base = alias_to_base.get(pair.attribute, base_of(pair.attribute))
        requested.add(NodeAttributePair(pair.node, base))
    for pair in plan.collected_pairs():
        base = alias_to_base.get(pair.attribute, base_of(pair.attribute))
        covered.add(NodeAttributePair(pair.node, base))
    if not requested:
        return 1.0
    return len(covered & requested) / len(requested)


class ReplicatedRegistry(MetricRegistry):
    """A metric registry where every alias shares its base's generator.

    Built on top of a base registry so that ``value()`` of an aliased
    pair returns exactly the base pair's ground truth -- SSDP aliases
    are the *same source*.
    """

    def __init__(self, base: MetricRegistry, alias_to_base: Dict[AttributeId, AttributeId]) -> None:
        # Intentionally does NOT call super().__init__: all state lives
        # in the wrapped base registry.
        self._base = base
        self._alias_to_base = dict(alias_to_base)

    def _resolve(self, pair: NodeAttributePair) -> NodeAttributePair:
        base_attr = self._alias_to_base.get(pair.attribute, base_of(pair.attribute))
        return NodeAttributePair(pair.node, base_attr)

    def __len__(self) -> int:
        return len(self._base)

    def __contains__(self, pair: NodeAttributePair) -> bool:
        return self._resolve(pair) in self._base

    def pairs(self):
        return self._base.pairs()

    def value(self, pair: NodeAttributePair) -> float:
        return self._base.value(self._resolve(pair))

    def advance_all(self) -> None:
        self._base.advance_all()

    def ensure(self, pair: NodeAttributePair, factory=None) -> None:
        self._base.ensure(self._resolve(pair), factory)
