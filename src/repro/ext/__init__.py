"""REMO extensions (Section 6).

Three optional capabilities, each designed as a plug-in that rewrites
planner *inputs* rather than modifying the planning framework:

- :mod:`repro.ext.aggregation` -- in-network aggregation awareness:
  funnel functions let the planner estimate per-node cost correctly
  when partial aggregates replace holistic relay;
- :mod:`repro.ext.reliability` -- SSDP/DSDP replication by task
  rewriting: aliased attributes forced into different trees yield
  redundant delivery paths;
- :mod:`repro.ext.frequencies` -- heterogeneous update frequencies via
  piggybacking: per-pair weights and per-node message weights encode
  expected traffic per unit time.
"""

from repro.ext.aggregation import uniform_aggregation
from repro.ext.distinct import DistinctEstimator, KMVSketch
from repro.ext.frequencies import FrequencyPlanningInputs, frequency_weights
from repro.ext.network import NetworkModel, forwarding_cost, network_cost_fn
from repro.ext.reliability import (
    ReplicatedRegistry,
    ReplicationRewrite,
    alias_cluster,
    replica_plan_coverage,
    rewrite_dsdp,
    rewrite_ssdp,
)

__all__ = [
    "DistinctEstimator",
    "FrequencyPlanningInputs",
    "KMVSketch",
    "NetworkModel",
    "ReplicatedRegistry",
    "ReplicationRewrite",
    "alias_cluster",
    "forwarding_cost",
    "frequency_weights",
    "network_cost_fn",
    "replica_plan_coverage",
    "rewrite_dsdp",
    "rewrite_ssdp",
    "uniform_aggregation",
]
