"""Sampling-based DISTINCT funnel estimation (the paper's future work).

Section 6.1 notes that data-dependent aggregations such as DISTINCT are
planned with the holistic upper bound, and that "accurate estimation
may require sampling-based techniques which we leave as our future
work".  This module implements that technique: a tiny k-minimum-values
(KMV) sketch estimates each attribute's distinct-value count from
sampled observations, which the planner turns into a tighter funnel.

The KMV estimator keeps the ``k`` smallest hash values seen; if the
k-th smallest is ``h`` (hashes normalized to (0, 1)), the distinct
count is approximately ``(k - 1) / h`` -- a standard result with
relative error ~ 1/sqrt(k).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.attributes import AttributeId
from repro.core.cost import AggregationKind, AggregationMap, AggregationSpec


def _normalized_hash(value: float) -> float:
    """Deterministic hash of a value into (0, 1]."""
    digest = hashlib.blake2b(
        struct.pack("!d", float(value)), digest_size=8
    ).digest()
    as_int = int.from_bytes(digest, "big")
    return (as_int + 1) / float(2**64)


class KMVSketch:
    """k-minimum-values distinct-count sketch."""

    def __init__(self, k: int = 64) -> None:
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        self.k = k
        self._mins: List[float] = []
        self._seen = 0

    def add(self, value: float) -> None:
        """Observe one value."""
        self._seen += 1
        h = _normalized_hash(value)
        if h in self._mins:
            return
        if len(self._mins) < self.k:
            self._mins.append(h)
            self._mins.sort()
        elif h < self._mins[-1]:
            self._mins[-1] = h
            self._mins.sort()

    @property
    def observations(self) -> int:
        return self._seen

    def estimate(self) -> float:
        """Estimated number of distinct values observed."""
        if not self._mins:
            return 0.0
        if len(self._mins) < self.k:
            # Fewer than k distinct hashes: the sketch is exact.
            return float(len(self._mins))
        return (self.k - 1) / self._mins[-1]


@dataclass
class DistinctEstimator:
    """Per-attribute DISTINCT cardinality estimation from samples.

    Feed it observed attribute values (e.g. from the metric registry or
    collected monitoring data); ask it for an aggregation map in which
    DISTINCT attributes carry a TOP-k-style funnel bounded by the
    estimated cardinality instead of the holistic worst case.
    """

    k: int = 64
    _sketches: Dict[AttributeId, KMVSketch] = field(default_factory=dict)

    def observe(self, attribute: AttributeId, value: float) -> None:
        sketch = self._sketches.get(attribute)
        if sketch is None:
            sketch = self._sketches[attribute] = KMVSketch(self.k)
        sketch.add(value)

    def observe_many(self, attribute: AttributeId, values: Iterable[float]) -> None:
        for value in values:
            self.observe(attribute, value)

    def cardinality(self, attribute: AttributeId) -> Optional[float]:
        """Estimated distinct count, or ``None`` if never observed."""
        sketch = self._sketches.get(attribute)
        if sketch is None or sketch.observations == 0:
            return None
        return sketch.estimate()

    def refine(
        self,
        aggregation: AggregationMap,
        safety_factor: float = 1.5,
    ) -> AggregationMap:
        """Tighten DISTINCT entries of ``aggregation`` using the sketches.

        A DISTINCT attribute whose estimated cardinality is ``d`` gets a
        funnel that forwards at most ``ceil(safety_factor * d)`` values
        (expressed through the TOP_K mechanism); attributes without
        observations keep the holistic upper bound.
        """
        if safety_factor < 1.0:
            raise ValueError(f"safety_factor must be >= 1, got {safety_factor}")
        refined: AggregationMap = {}
        for attr, spec in aggregation.items():
            if spec.kind is not AggregationKind.DISTINCT:
                refined[attr] = spec
                continue
            estimate = self.cardinality(attr)
            if estimate is None:
                refined[attr] = spec
                continue
            bound = max(1, int(safety_factor * estimate + 0.999))
            refined[attr] = AggregationSpec(AggregationKind.TOP_K, k=bound)
        return refined
