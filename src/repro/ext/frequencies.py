"""Heterogeneous update frequencies via piggybacking (Section 6.3).

When tasks request different collection frequencies, REMO groups a
node's metrics around its highest-frequency metric and lets the slower
ones *piggyback*: the node keeps sending one message stream at its top
rate, and a metric collected at frequency ``f_j`` contributes only
``f_j`` values per unit time.  The paper's per-node cost estimate is

    ``u_i = C + a * sum_j freq_j / freq_max``

per message, i.e. ``C * freq_max + a * sum_j freq_j`` per unit time --
exactly what the tree model computes from a per-node *message weight*
of ``freq_max`` and per-pair *value weights* of ``freq_j``.

A frequency-**aware** planner passes these weights and correctly sees
that slow metrics are cheap; the oblivious baseline weighs everything
at 1.0 and over-provisions (the Fig. 12a comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Union

from repro.core.attributes import NodeAttributePair, NodeId
from repro.core.tasks import MonitoringTask, TaskManager


@dataclass
class FrequencyPlanningInputs:
    """Planner inputs derived from task frequencies.

    Pass ``pair_weights``/``msg_weights`` straight into
    :meth:`RemoPlanner.plan` (or any forest builder).
    """

    pair_weights: Dict[NodeAttributePair, float] = field(default_factory=dict)
    msg_weights: Dict[NodeId, float] = field(default_factory=dict)


def frequency_weights(
    tasks: Union[Iterable[MonitoringTask], TaskManager],
) -> FrequencyPlanningInputs:
    """Derive piggyback weights from the task set.

    A pair requested by several tasks is collected at the *highest*
    requested frequency (collecting slower would starve the faster
    task; faster subsumes slower).  Each node's message weight is the
    maximum frequency across its pairs -- the rate of the message
    stream everything else piggybacks on.
    """
    task_list = list(tasks) if not isinstance(tasks, TaskManager) else tasks.tasks
    pair_freq: Dict[NodeAttributePair, float] = {}
    for task in task_list:
        for pair in task.pairs():
            current = pair_freq.get(pair, 0.0)
            pair_freq[pair] = max(current, task.frequency)
    msg_weights: Dict[NodeId, float] = {}
    for pair, freq in pair_freq.items():
        msg_weights[pair.node] = max(msg_weights.get(pair.node, 0.0), freq)
    return FrequencyPlanningInputs(pair_weights=pair_freq, msg_weights=msg_weights)
