"""In-network aggregation awareness (Section 6.1).

The heavy lifting lives in the tree model, which applies each
attribute's *funnel function* when computing per-node outgoing value
counts: a node relaying a SUM forwards one partial result no matter
how many values arrive, a TOP-k relay forwards at most ``k``, and
holistic attributes forward everything.

An aggregation-**aware** planner receives the :data:`AggregationMap`
(via ``RemoPlanner(aggregation=...)``) and therefore knows merged
trees stay cheap; the **oblivious** baseline plans as if every value
were relayed holistically, overestimates communication cost, and
retreats to singleton-like partitions with their per-message overhead
(the Fig. 12a comparison).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.attributes import AttributeId
from repro.core.cost import AggregationKind, AggregationMap, AggregationSpec


def uniform_aggregation(
    attributes: Iterable[AttributeId],
    kind: AggregationKind,
    k: int = 10,
) -> AggregationMap:
    """Assign the same aggregation ``kind`` to every listed attribute.

    Convenience for experiments like Fig. 12a's "MAX on all tasks".
    """
    spec = AggregationSpec(kind=kind, k=k)
    return {attr: spec for attr in attributes}
