"""Shared scaffolding for tree construction schemes.

All builders implement the same greedy insertion template: nodes are
considered in order of decreasing allocated capacity (as the paper's
STAR/CHAIN descriptions specify) and attached to the most-preferred
feasible parent, where "preferred" is the single knob distinguishing
STAR (shallowest), CHAIN (deepest) and MAX_AVB (most spare capacity).
The adaptive builder overrides the saturation handler to interleave
the adjusting procedure.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.attributes import NodeId
from repro.core.cost import AggregationMap, CostModel
from repro.obs import names
from repro.obs.metrics import default_registry
from repro.trees.model import MonitoringTree, NodeDemand


@dataclass
class TreeBuildRequest:
    """Everything needed to construct one collection tree.

    Parameters
    ----------
    attributes:
        The partition set the tree will deliver.
    demands:
        ``{node: {attribute: weight}}`` -- each candidate member's local
        contribution.  Nodes with empty demand are not candidates.
    capacities:
        Capacity slice allocated to this tree per node.  The tree
        snapshots each member's slice when it attaches (see
        :class:`~repro.trees.model.MonitoringTree`), so the mapping
        must be settled before :meth:`GreedyTreeBuilder.build` runs --
        the sequential allocator passes a frozen ledger view.
    central_capacity:
        Collector-side capacity available to this tree's root message.
    aggregation:
        Optional in-network aggregation specs.
    msg_weights:
        Optional per-node message weights (frequency extension);
        defaults to 1.0 everywhere.
    """

    attributes: frozenset
    demands: Dict[NodeId, NodeDemand]
    capacities: Mapping[NodeId, float]
    central_capacity: float = math.inf
    aggregation: Optional[AggregationMap] = None
    msg_weights: Optional[Mapping[NodeId, float]] = None

    def msg_weight(self, node: NodeId) -> float:
        if self.msg_weights is None:
            return 1.0
        return self.msg_weights.get(node, 1.0)


@dataclass
class TreeBuildResult:
    """A constructed tree plus the candidates that did not fit."""

    tree: MonitoringTree
    excluded: List[NodeId] = field(default_factory=list)

    @property
    def included_count(self) -> int:
        return len(self.tree)

    @property
    def excluded_count(self) -> int:
        return len(self.excluded)


class GreedyTreeBuilder:
    """Template-method greedy builder.

    Subclasses override :meth:`parent_preference` to order candidate
    parents, and may override :meth:`on_saturated` to attempt recovery
    (the adaptive builder's adjusting procedure) before a node is
    declared excluded.
    """

    #: How many candidate parents to try per insertion; ``None`` scans
    #: every feasible-looking node in preference order.
    max_parent_candidates: Optional[int] = None

    def __init__(self, cost_model: CostModel) -> None:
        self.cost = cost_model

    # -- extension points ------------------------------------------------
    def parent_preference(self, tree: MonitoringTree, parent: NodeId) -> tuple:
        """Sort key for candidate parents; lower sorts first."""
        raise NotImplementedError

    def on_saturated(
        self,
        tree: MonitoringTree,
        request: TreeBuildRequest,
        node: NodeId,
        failed_parents: List[NodeId],
    ) -> bool:
        """Called when ``node`` fits under no parent.  Return ``True`` if
        the tree was restructured and the insertion should be retried."""
        return False

    # -- template --------------------------------------------------------
    def insertion_order(self, request: TreeBuildRequest) -> List[NodeId]:
        """Candidates ordered by decreasing allocated capacity.

        Ties break on node id for determinism.
        """
        candidates = [n for n, d in request.demands.items() if d]
        return sorted(
            candidates,
            key=lambda n: (-request.capacities.get(n, 0.0), n),
        )

    def build(self, request: TreeBuildRequest) -> TreeBuildResult:
        """Construct a tree for ``request`` and report exclusions."""
        started = time.perf_counter()
        tree = MonitoringTree(
            attributes=request.attributes,
            cost_model=self.cost,
            capacities=request.capacities,
            central_capacity=request.central_capacity,
            aggregation=request.aggregation,
        )
        excluded: List[NodeId] = []
        for node in self.insertion_order(request):
            if not self._insert(tree, request, node):
                excluded.append(node)
        default_registry().observe(
            names.PLANNER_PHASE_SECONDS,
            time.perf_counter() - started,
            phase="tree_construction",
        )
        return TreeBuildResult(tree=tree, excluded=excluded)

    # -- helpers -----------------------------------------------------------
    def _insert(self, tree: MonitoringTree, request: TreeBuildRequest, node: NodeId) -> bool:
        demand = request.demands[node]
        msgw = request.msg_weight(node)
        if len(tree) == 0:
            return tree.add_node(node, None, demand, msgw)
        entry_cost = tree.entry_cost(demand, msgw)
        # Payload of the insertion, available to parent_preference
        # implementations that trade relay depth against headroom.
        payload = sum(w for w in demand.values() if w > 0)
        self._inserting_payload = payload
        # A parent pays the child's message on its receive side; with
        # no aggregation funnels its own send also grows by the full
        # relayed payload, so the headroom bar sharpens to exactly the
        # capacity check the feasibility walk performs at the parent.
        min_headroom = entry_cost
        if not tree.has_aggregation():
            min_headroom += self.cost.value_cost(payload)
        attempts = 0
        while True:
            viable = self._ordered_parents(tree, min_headroom)
            failed: List[NodeId] = []
            # Minimal-delta failures transfer between candidate parents
            # (see MonitoringTree.last_attach_failure): once an ancestor
            # has rejected the insertion, every candidate routing
            # through it can be skipped without probing.  ``blocked``
            # holds the *subtree closure* of rejecting nodes (a
            # candidate routes through a rejecting node iff it sits in
            # that node's subtree), so the skip test is one set lookup
            # instead of an ancestor-path walk per candidate.
            transferable = not tree.has_aggregation()
            blocked: set = set()
            for idx, parent in enumerate(viable):
                if parent in blocked:
                    failed.append(parent)
                    continue
                if tree.add_node(node, parent, demand, msgw):
                    return True
                failed.append(parent)
                if transferable:
                    fail_node, minimal = tree.last_attach_failure()
                    if fail_node == node:
                        # The node's own capacity cannot absorb its own
                        # message; no parent can help.
                        failed.extend(viable[idx + 1 :])
                        break
                    if minimal and fail_node is not None and fail_node != parent:
                        # A relay-hop failure transfers: any candidate
                        # routing through fail_node delivers at least
                        # the same delta there.  A failure at the
                        # probed parent itself does NOT -- the direct
                        # attach charges the new child's per-message
                        # overhead, which routed attaches avoid.
                        if fail_node == tree.root:
                            # Everything routes through the root: all
                            # remaining candidates fail without probing.
                            failed.extend(viable[idx + 1 :])
                            break
                        if fail_node not in blocked:
                            blocked.update(tree.subtree_nodes(fail_node))
            attempts += 1
            if attempts > self._max_retry_rounds():
                return False
            # Every node that could not host the insertion -- whether it
            # failed the cheap headroom pre-filter or the full path walk
            # -- is congested in the paper's sense.
            viable_set = set(viable)
            pruned = [p for p in tree.nodes if p not in viable_set]
            if not self.on_saturated(tree, request, node, failed + pruned):
                return False

    def _ordered_parents(self, tree: MonitoringTree, entry_cost: float = 0.0) -> List[NodeId]:
        # A parent must at least absorb the new child's message on its
        # receive side; anything with less headroom cannot host it, so
        # skip the (much costlier) full path walk for those.  The bulk
        # kernel scans the flat capacity/send/recv columns (vectorized
        # when numpy is available); preference keys are total orders,
        # so the kernel's storage order never shows in the result.
        viable = tree.viable_parents(entry_cost)
        viable.sort(key=lambda p: self.parent_preference(tree, p))
        if self.max_parent_candidates is not None:
            return viable[: self.max_parent_candidates]
        return viable

    def _max_retry_rounds(self) -> int:
        return 0
