"""Capacity-constrained monitoring collection trees.

A monitoring tree delivers one partition-set of attributes: each member
node periodically sends its parent a message carrying its locally
observed values plus every value relayed from its children, and the
tree root forwards the merged message to the central collector.  Node
``i`` may spend at most its allocated capacity on this traffic, where a
message with ``x`` values costs ``C + a*x`` on both the sender and the
receiver (Problem Statement 2).

Four builders are provided, mirroring Section 3.2.1 and Fig. 7:

- :class:`~repro.trees.star.StarTreeBuilder` -- breadth-first, minimum
  relay cost, but the root drowns in per-message overhead;
- :class:`~repro.trees.chain.ChainTreeBuilder` -- depth-first, best
  load balance, worst relay cost;
- :class:`~repro.trees.max_avb.MaxAvailableTreeBuilder` -- the TMON
  heuristic: attach to the node with most available capacity;
- :class:`~repro.trees.adaptive.AdaptiveTreeBuilder` -- REMO's
  construction/adjusting iteration that trades relay cost against
  per-message overhead to maximize tree size.
"""

import enum

from repro.trees.model import MonitoringTree, NodeDemand, TreeInvariantError
from repro.trees.star import StarTreeBuilder
from repro.trees.chain import ChainTreeBuilder
from repro.trees.max_avb import MaxAvailableTreeBuilder
from repro.trees.adaptive import AdaptiveTreeBuilder


class TreeBuilderKind(enum.Enum):
    """Selector for the tree construction scheme (Fig. 7 comparands)."""

    STAR = "star"
    CHAIN = "chain"
    MAX_AVB = "max_avb"
    ADAPTIVE = "adaptive"

    def create(self, **kwargs):
        """Instantiate the corresponding builder."""
        builders = {
            TreeBuilderKind.STAR: StarTreeBuilder,
            TreeBuilderKind.CHAIN: ChainTreeBuilder,
            TreeBuilderKind.MAX_AVB: MaxAvailableTreeBuilder,
            TreeBuilderKind.ADAPTIVE: AdaptiveTreeBuilder,
        }
        return builders[self](**kwargs)


__all__ = [
    "AdaptiveTreeBuilder",
    "ChainTreeBuilder",
    "MaxAvailableTreeBuilder",
    "MonitoringTree",
    "NodeDemand",
    "StarTreeBuilder",
    "TreeBuilderKind",
    "TreeInvariantError",
]
