"""CHAIN tree construction (Section 3.2.1).

Gives priority to increasing the *height* of the tree: each new node
attaches to the deepest node with sufficient available capacity.  The
resulting chain-like trees spread per-message overhead evenly -- every
node has at most one child -- but every value is relayed many hops, so
total relay cost is the worst of all schemes (Fig. 4(e), upper-right).
"""

from __future__ import annotations

from repro.core.attributes import NodeId
from repro.trees.base import GreedyTreeBuilder
from repro.trees.model import MonitoringTree


class ChainTreeBuilder(GreedyTreeBuilder):
    """Attach to the highest-depth feasible node (ties: most spare capacity)."""

    def parent_preference(self, tree: MonitoringTree, parent: NodeId) -> tuple:
        return (-tree.depth(parent), -tree.available(parent), parent)
