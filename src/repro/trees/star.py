"""STAR tree construction (Section 3.2.1).

Gives priority to increasing the *breadth* of the tree: each new node
attaches to the shallowest node with sufficient available capacity.
The resulting bushy trees pay minimal relay cost -- values travel few
hops -- but concentrate per-message overhead at the root, which limits
how large the tree can grow (Fig. 4(e), upper-left).
"""

from __future__ import annotations

from repro.core.attributes import NodeId
from repro.trees.base import GreedyTreeBuilder
from repro.trees.model import MonitoringTree


class StarTreeBuilder(GreedyTreeBuilder):
    """Attach to the lowest-depth feasible node (ties: most spare capacity)."""

    def parent_preference(self, tree: MonitoringTree, parent: NodeId) -> tuple:
        return (tree.depth(parent), -tree.available(parent), parent)
