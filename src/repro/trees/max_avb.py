"""MAX_AVB tree construction -- the TMON heuristic baseline.

Re-implementation of the heuristic from Kashyap et al., "Efficient
Trees for Continuous Monitoring" (TMON), as the paper uses it in
Fig. 7: always attach the new node to the existing node with the most
available capacity.  This avoids over-stretching the tree in breadth
or height and works well under light load, but degrades under heavy
load because it ignores relay cost entirely.
"""

from __future__ import annotations

from repro.core.attributes import NodeId
from repro.trees.base import GreedyTreeBuilder
from repro.trees.model import MonitoringTree


class MaxAvailableTreeBuilder(GreedyTreeBuilder):
    """Attach to *the* node with the most available capacity.

    Faithful to TMON's one-line rule: exactly one candidate parent is
    considered per insertion.  When the max-available node cannot host
    the newcomer (typically because the path to the root cannot absorb
    the extra relay load), the node is excluded -- the blindness to
    relay cost that degrades this heuristic under heavy workloads in
    Fig. 7.
    """

    #: TMON considers a single attachment point per insertion.
    max_parent_candidates = 1

    def parent_preference(self, tree: MonitoringTree, parent: NodeId) -> tuple:
        return (-tree.available(parent), tree.depth(parent), parent)
