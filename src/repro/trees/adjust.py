"""The adjusting procedure and its optimizations (Sections 3.2.1 and 5.1).

When the construction procedure saturates -- the next node fits under
no existing parent -- the adjusting procedure relieves *congested*
nodes by pruning their cheapest branch and re-attaching it deeper in
the tree.  Moving a branch from congested node ``dc`` into ``dc``'s own
subtree frees exactly one message's per-message overhead ``C`` at
``dc`` while leaving its relayed payload unchanged, trading relay cost
for overhead to grow the tree.

Two independent optimizations from Section 5.1 are implemented as
flags on :class:`TreeAdjuster`:

- ``branch_based`` -- re-attach the pruned branch as a whole instead
  of breaking it into nodes and re-homing them one by one, dropping
  the procedure from O(n^2) to O(n);
- ``subtree_only`` -- restrict candidate re-attachment points to the
  congested node's subtree, justified by Theorem 1: if the node that
  failed to insert demands no more than the pruned branch, any host
  outside ``dc``'s subtree would already have accepted the failed node
  during construction, so testing it again is wasted work.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.core.attributes import NodeId
from repro.obs import names
from repro.obs.metrics import default_registry
from repro.trees.model import MonitoringTree


class TreeAdjuster:
    """Relieves congested nodes by pruning and re-attaching branches.

    Parameters
    ----------
    branch_based:
        Re-attach pruned branches whole (Section 5.1.1) instead of
        node-by-node (the basic procedure).
    subtree_only:
        Restrict the re-attachment search to the congested node's
        subtree when Theorem 1 applies (Section 5.1.2).
    """

    def __init__(self, branch_based: bool = True, subtree_only: bool = True) -> None:
        self.branch_based = branch_based
        self.subtree_only = subtree_only
        #: Counts candidate-parent feasibility probes; exposed so the
        #: Fig. 10 bench can report search effort alongside wall time.
        self.probe_count = 0

    def relieve(
        self,
        tree: MonitoringTree,
        congested: Sequence[NodeId],
        failed_cost: float,
    ) -> bool:
        """Try to free per-message overhead at one congested node.

        ``congested`` lists nodes that refused the failed insertion;
        ``failed_cost`` is the send cost the failed node would have
        incurred (``u_df``), used to decide Theorem 1 applicability.
        Returns ``True`` if the tree was restructured.

        Failed full-tree sweeps are memoized against the tree's
        mutation epoch: a failed probe never mutates, and the Theorem-1
        gate only *shrinks* candidate pools as ``failed_cost``
        decreases, so once a sweep over every member has failed at cost
        ``F``, any sweep at the same epoch with the same flags and cost
        ``<= F`` must fail too and is skipped outright.  Any committed
        mutation bumps the epoch and invalidates the memo.
        """
        parent_tab = tree._parent
        cong = {n for n in congested if n in parent_tab}
        memo = tree._relieve_memo
        same_config = (
            memo is not None
            and memo[0] == tree.mutation_epoch
            and memo[1] == self.branch_based
            and memo[2] == self.subtree_only
        )
        if same_config and memo is not None and failed_cost <= memo[3]:
            return False
        started = time.perf_counter()
        relieved = False
        for dc in sorted(cong, key=tree._depth.__getitem__):
            if self._relieve_node(tree, dc, failed_cost):
                relieved = True
                break
        if not relieved and len(cong) == len(parent_tab):
            prev = memo[3] if same_config and memo is not None else -float("inf")
            tree._relieve_memo = (
                tree.mutation_epoch,
                self.branch_based,
                self.subtree_only,
                max(failed_cost, prev),
            )
        default_registry().observe(
            names.PLANNER_PHASE_SECONDS,
            time.perf_counter() - started,
            phase="adjustment",
        )
        return relieved

    # ------------------------------------------------------------------
    def _relieve_node(self, tree: MonitoringTree, dc: NodeId, failed_cost: float) -> bool:
        child_set = tree.children(dc)
        if len(child_set) < 2 and tree.parent(dc) is not None:
            # Pruning the only branch of a non-root just shifts the
            # problem to the parent without freeing overhead at dc's
            # ancestors; skip (before paying for the child sort).
            return False
        children = sorted(child_set, key=tree.send_cost)
        for branch in children:
            branch_cost = tree.send_cost(branch)
            targets = self._candidate_targets(tree, dc, branch, branch_cost, failed_cost)
            if self.branch_based:
                if self._reattach_branch(tree, dc, branch, targets):
                    return True
            else:
                if self._reattach_nodes(tree, dc, branch, targets):
                    return True
        return False

    def _candidate_targets(
        self,
        tree: MonitoringTree,
        dc: NodeId,
        branch: NodeId,
        branch_cost: float,
        failed_cost: float,
    ) -> List[NodeId]:
        """Candidate re-attachment pool (unsorted; re-attachers filter
        by their headroom bar first, then rank only the survivors)."""
        children = tree._children
        if self.subtree_only and failed_cost <= branch_cost:
            # Theorem 1: hosts outside dc's subtree cannot accept the
            # branch, since they already refused the cheaper failed node.
            # One walk of dc's subtree that never descends into the
            # pruned branch replaces two full walks plus membership
            # filtering; order is irrelevant (consumers rank by total
            # orders).
            pool: List[NodeId] = []
            stack = [c for c in children[dc] if c != branch]
            while stack:
                current = stack.pop()
                pool.append(current)
                stack.extend(children[current])
            return pool
        branch_nodes = set(tree.subtree_nodes(branch))
        return [n for n in tree.nodes if n != dc and n not in branch_nodes]

    def _reattach_branch(
        self, tree: MonitoringTree, dc: NodeId, branch: NodeId, targets: List[NodeId]
    ) -> bool:
        """Branch-based re-attaching: one move_branch per candidate.

        A target must at least absorb the branch's message on its
        receive side -- and, in funnel-free trees, relay the branch's
        values on its own send side -- so candidates with less headroom
        are skipped without attempting the (read-only-probed) move.
        Detaching the branch only relieves ``dc`` and its ancestors, so
        the sharpened bar must not be applied to those.  Likewise, a
        probe that fails at a relay hop with a minimal delta rules out
        every other target routing through that hop (see
        ``MonitoringTree.last_attach_failure``).
        """
        branch_cost = tree.send_cost(branch)
        min_headroom = branch_cost
        if not tree.has_aggregation():
            min_headroom += tree.cost.value_cost(tree.outgoing_values(branch))
        relieved: set = set()
        current = dc
        while current is not None:
            relieved.add(current)
            current = tree.parent(current)
        transferable = not tree.has_aggregation()
        blocked: set = set()
        # Filter by the headroom bar before ranking: failed probes
        # never mutate, so sorting only the survivors (deepest first,
        # to grow height) probes the same targets in the same order as
        # ranking the whole pool and skipping inside the loop.  The
        # headroom expression reads the slot columns directly and is
        # float-identical to MonitoringTree.available.
        slot_tab = tree._slot
        cap_a = tree._cap_a
        send_a = tree._send_a
        recv_a = tree._recv_a
        depth_tab = tree._depth
        keyed = []
        for target in targets:
            bar = branch_cost if target in relieved else min_headroom
            slot = slot_tab[target]
            avail = cap_a[slot] - (send_a[slot] + recv_a[slot])
            if avail < bar - 1e-9:
                continue
            keyed.append((-depth_tab[target], -avail, target))
        keyed.sort()
        for _neg_depth, _neg_avail, target in keyed:
            # ``blocked`` is the subtree closure of rejecting relay
            # hops: a target routes through one iff it lies in that
            # hop's subtree, so the skip test is a set lookup.
            if target in blocked:
                continue
            self.probe_count += 1
            if tree.move_branch(branch, target):
                return True
            if transferable:
                fail_node, minimal = tree.last_attach_failure()
                if minimal and fail_node is not None and fail_node != target:
                    if fail_node == tree.root:
                        # Everything routes through the root: no
                        # remaining target can absorb the branch.
                        return False
                    if fail_node not in blocked:
                        blocked.update(tree.subtree_nodes(fail_node))
        return False

    def _reattach_nodes(
        self,
        tree: MonitoringTree,
        dc: NodeId,
        branch: NodeId,
        targets: List[NodeId],
    ) -> bool:
        """Basic per-node re-attaching with full rollback on failure.

        The branch is dismantled and each node re-homed independently
        (anywhere but ``dc``).  If any node cannot be placed, all
        placements are undone and the original branch is restored.
        """
        records = tree.remove_branch(branch)
        placed: List[NodeId] = []
        target_pool = [t for t in targets if t in tree]
        success = True
        for node, _old_parent, demand, msgw in records:
            placed_here = False
            # Previously placed branch nodes are valid hosts too.
            candidates = sorted(
                set(target_pool) | set(placed),
                key=lambda n: (-tree.depth(n), -tree.available(n), n),
            )
            for target in candidates:
                self.probe_count += 1
                if tree.add_node(node, target, demand, msgw):
                    placed.append(node)
                    placed_here = True
                    break
            if not placed_here:
                success = False
                break
        if success:
            return True
        # Roll back: remove re-homed nodes in reverse placement order,
        # then restore the original branch under dc verbatim.
        for node in reversed(placed):
            tree.remove_branch(node)
        first = True
        for node, old_parent, demand, msgw in records:
            parent = dc if first else old_parent
            added = tree.add_node(node, parent, demand, msgw, check=False)
            assert added, "restoring a previously feasible branch must succeed"
            first = False
        return False
