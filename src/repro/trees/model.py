"""The monitoring tree data structure.

This module implements the bookkeeping that every tree-construction
scheme relies on: for each member node the number of values it
forwards (``y_i`` in Problem Statement 2, generalized to fractional
*weights* for the heterogeneous-frequency extension and to per-metric
*funnel functions* for in-network aggregation), its message send cost
``u_i = C*w_i + a*y_i``, its receive cost (the sum of its children's
send costs), and the resulting capacity usage, all maintained
incrementally so that feasibility of attaching a node or moving a
branch can be checked in ``O(depth * |attributes|)``.

Capacity semantics (Problem Statement 2, constraint 1): for every
member node ``i``, ``send(i) + recv(i) <= capacity(i)``, where
``capacity(i)`` is the slice of node ``i``'s budget allocated to this
tree.  The tree root additionally charges the central collector
``send(root)`` against the tree's ``central_capacity`` slice.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.attributes import AttributeId, NodeId
from repro.core.cost import AggregationKind, AggregationMap, AggregationSpec, CostModel

#: A node's local contribution to a tree: ``{attribute: weight}`` where
#: weight is the expected number of values per collection period (1.0
#: unless the frequency extension scales it down).
NodeDemand = Dict[AttributeId, float]

#: Tolerance for floating-point capacity comparisons.
EPSILON = 1e-9


class TreeInvariantError(AssertionError):
    """Raised by :meth:`MonitoringTree.validate` when bookkeeping drifts."""


class _Content:
    """Outgoing message content: per-attribute value weights + message weight.

    ``msg_weight`` is the expected number of messages per collection
    period (1.0 for ordinary nodes; the frequency extension can lower
    a leaf's weight, and a relay inherits the max over itself and its
    children because it must forward whenever anything arrives).
    """

    __slots__ = ("values", "msg_weight")

    def __init__(self, values: Optional[Dict[AttributeId, float]] = None, msg_weight: float = 0.0):
        self.values = values if values is not None else {}
        self.msg_weight = msg_weight

    def total(self) -> float:
        return sum(self.values.values())


class MonitoringTree:
    """One collection tree for a set of attributes.

    Parameters
    ----------
    attributes:
        The partition set this tree delivers.
    cost_model:
        The shared ``C + a*x`` model.
    capacities:
        Allocated capacity slice per node for *this* tree.  Nodes not in
        the mapping cannot join.  The mapping is read live, so an
        on-demand allocator can update it between attachments.
    central_capacity:
        Capacity slice at the central collector available to this
        tree's root message.
    aggregation:
        Optional per-attribute aggregation specs (Section 6.1).
        Attributes absent from the map are holistic.
    """

    def __init__(
        self,
        attributes: Iterable[AttributeId],
        cost_model: CostModel,
        capacities: Mapping[NodeId, float],
        central_capacity: float = math.inf,
        aggregation: Optional[AggregationMap] = None,
    ) -> None:
        self.attributes = frozenset(attributes)
        if not self.attributes:
            raise ValueError("a monitoring tree must deliver at least one attribute")
        self.cost = cost_model
        self.capacities = capacities
        self.central_capacity = central_capacity
        self._agg: Dict[AttributeId, AggregationSpec] = {}
        for attr, spec in (aggregation or {}).items():
            if attr in self.attributes and spec.kind not in (
                AggregationKind.HOLISTIC,
                AggregationKind.DISTINCT,
            ):
                self._agg[attr] = spec

        self._parent: Dict[NodeId, Optional[NodeId]] = {}
        self._children: Dict[NodeId, Set[NodeId]] = {}
        self._depth: Dict[NodeId, int] = {}
        self._local: Dict[NodeId, NodeDemand] = {}
        self._local_msgw: Dict[NodeId, float] = {}
        # Incoming per-attribute weights (local + children outputs).
        self._in: Dict[NodeId, Dict[AttributeId, float]] = {}
        # Cached outgoing content (funnel applied) and costs.
        self._out: Dict[NodeId, _Content] = {}
        self._send: Dict[NodeId, float] = {}
        self._recv: Dict[NodeId, float] = {}
        self._root: Optional[NodeId] = None
        self._pair_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._parent

    @property
    def root(self) -> Optional[NodeId]:
        """The tree root (sends directly to the central collector)."""
        return self._root

    @property
    def nodes(self) -> List[NodeId]:
        """Member nodes in no particular order."""
        return list(self._parent)

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent of ``node`` (``None`` for the root)."""
        return self._parent[node]

    def children(self, node: NodeId) -> Set[NodeId]:
        """Children of ``node`` (a copy)."""
        return set(self._children[node])

    def degree(self, node: NodeId) -> int:
        """Number of children of ``node``."""
        return len(self._children[node])

    def depth(self, node: NodeId) -> int:
        """Hops from the root (root = 0)."""
        return self._depth[node]

    def height(self) -> int:
        """Maximum node depth (empty tree: -1)."""
        return max(self._depth.values()) if self._depth else -1

    def local_demand(self, node: NodeId) -> NodeDemand:
        """The node's own contribution (a copy)."""
        return dict(self._local[node])

    def local_message_weight(self, node: NodeId) -> float:
        """The node's own message weight (before inheriting children's)."""
        return self._local_msgw[node]

    def funnel_value(self, attr: AttributeId, incoming: float) -> float:
        """Outgoing value weight for ``incoming`` weight of ``attr``
        after this tree's aggregation funnel (public, for verifiers
        that recompute costs from first principles)."""
        return self._funnel(attr, incoming)

    def send_cost(self, node: NodeId) -> float:
        """``u_i``: cost of the node's periodic update message(s)."""
        return self._send[node]

    def recv_cost(self, node: NodeId) -> float:
        """Cost of receiving all children's update messages."""
        return self._recv[node]

    def used(self, node: NodeId) -> float:
        """Total capacity consumed at ``node`` by this tree."""
        return self._send[node] + self._recv[node]

    def available(self, node: NodeId) -> float:
        """Remaining allocated capacity at ``node`` for this tree."""
        return self.capacities.get(node, 0.0) - self.used(node)

    def central_used(self) -> float:
        """Cost charged to the central collector by this tree's root."""
        if self._root is None:
            return 0.0
        return self._send[self._root]

    def outgoing_values(self, node: NodeId) -> float:
        """``y_i``: total value weight in the node's update message."""
        return self._out[node].total()

    def message_weight(self, node: NodeId) -> float:
        """Expected messages per period sent by ``node``."""
        return self._out[node].msg_weight

    def pair_count(self) -> int:
        """Number of node-attribute pairs this tree collects."""
        return self._pair_count

    def subtree_nodes(self, node: NodeId) -> List[NodeId]:
        """All nodes in the subtree rooted at ``node`` (preorder)."""
        result: List[NodeId] = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self._children[current])
        return result

    def subtree_size(self, node: NodeId) -> int:
        """Number of nodes in the subtree rooted at ``node``."""
        return len(self.subtree_nodes(node))

    def edges(self) -> Set[Tuple[NodeId, NodeId]]:
        """All ``(child, parent)`` edges; the root edge uses parent ``-1``."""
        result: Set[Tuple[NodeId, NodeId]] = set()
        for node, parent in self._parent.items():
            result.add((node, parent if parent is not None else -1))
        return result

    def total_message_cost(self) -> float:
        """Send-side cost per period summed over all members.

        This is the tree's contribution to the paper's ``C_cur`` --
        the volume of monitoring traffic per unit time -- used by the
        adaptation throttling formula.
        """
        return sum(self._send.values())

    # ------------------------------------------------------------------
    # Funnel helpers
    # ------------------------------------------------------------------
    def _funnel(self, attr: AttributeId, incoming: float) -> float:
        spec = self._agg.get(attr)
        if spec is None or incoming <= 0.0:
            return max(incoming, 0.0)
        if spec.kind is AggregationKind.TOP_K:
            return min(float(spec.k), incoming)
        # SUM/MAX/MIN/AVG/COUNT collapse to one partial result; when the
        # incoming weight is already below one message-worth of values
        # (fractional frequencies) nothing can be saved.
        return min(1.0, incoming)

    def _compute_out(self, node: NodeId) -> _Content:
        incoming = self._in[node]
        values = {}
        for attr, weight in incoming.items():
            out = self._funnel(attr, weight)
            if out > 0.0:
                values[attr] = out
        msgw = self._local_msgw[node]
        for child in self._children[node]:
            msgw = max(msgw, self._out[child].msg_weight)
        return _Content(values, msgw)

    def _send_cost_of(self, content: _Content) -> float:
        if content.msg_weight <= 0.0:
            return 0.0
        return self.cost.weighted_message_cost(content.msg_weight, content.total())

    # ------------------------------------------------------------------
    # Structural mutation
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: NodeId,
        parent: Optional[NodeId],
        demand: NodeDemand,
        msg_weight: float = 1.0,
        check: bool = True,
    ) -> bool:
        """Attach ``node`` under ``parent`` (``None`` => become the root).

        Returns ``True`` on success.  With ``check=True`` the attachment
        is refused (returning ``False``) if it would violate any
        capacity constraint along the path to the collector; with
        ``check=False`` it is applied unconditionally (used by tests and
        by callers that have already validated).
        """
        if node in self._parent:
            raise ValueError(f"node {node} is already in the tree")
        unknown = set(demand) - self.attributes
        if unknown:
            raise ValueError(
                f"demand for node {node} names attributes outside the tree: {sorted(unknown)}"
            )
        if any(w < 0 for w in demand.values()):
            raise ValueError(f"demand weights must be >= 0 for node {node}")
        if msg_weight <= 0:
            raise ValueError(f"msg_weight must be > 0, got {msg_weight}")
        if parent is None:
            if self._root is not None:
                raise ValueError("tree already has a root; attach under an existing node")
        elif parent not in self._parent:
            raise ValueError(f"parent {parent} is not in the tree")

        demand = {a: w for a, w in demand.items() if w > 0}
        content = _Content(
            {a: self._funnel(a, w) for a, w in demand.items()},
            msg_weight,
        )
        content.values = {a: w for a, w in content.values.items() if w > 0}
        if check and not self._attach_feasible(content, parent, extra_node=(node, demand)):
            return False

        self._parent[node] = parent
        self._children[node] = set()
        self._depth[node] = 0 if parent is None else self._depth[parent] + 1
        self._local[node] = dict(demand)
        self._local_msgw[node] = msg_weight
        self._in[node] = dict(demand)
        self._out[node] = content
        self._send[node] = self._send_cost_of(content)
        self._recv[node] = 0.0
        self._pair_count += len(demand)
        if parent is None:
            self._root = node
        else:
            self._children[parent].add(node)
            self._propagate_child_change(parent, None, self._out[node], child=node)
        return True

    def entry_cost(self, demand: NodeDemand, msg_weight: float = 1.0) -> float:
        """Send cost of the message a new leaf with ``demand`` would emit.

        This is also the *minimum* capacity any prospective parent must
        have available (its receive-side share), which makes it a sound
        pre-filter before the full path feasibility walk.
        """
        content = _Content(
            {a: self._funnel(a, w) for a, w in demand.items() if w > 0}, msg_weight
        )
        return self._send_cost_of(content)

    def can_add_node(self, node: NodeId, parent: Optional[NodeId], demand: NodeDemand, msg_weight: float = 1.0) -> bool:
        """Feasibility of :meth:`add_node` without mutating."""
        if node in self._parent:
            return False
        demand = {a: w for a, w in demand.items() if w > 0}
        content = _Content({a: self._funnel(a, w) for a, w in demand.items()}, msg_weight)
        return self._attach_feasible(content, parent, extra_node=(node, demand))

    def update_local(
        self,
        node: NodeId,
        demand: NodeDemand,
        msg_weight: Optional[float] = None,
        check: bool = True,
    ) -> bool:
        """Replace ``node``'s local contribution in place.

        Used by DIRECT-APPLY adaptation to add or drop attribute values
        at a member node without touching the tree structure.  With
        ``check=True`` the mutation is reverted and ``False`` returned
        if it would overflow any node on the path to the collector.
        An empty ``demand`` leaves the node as a pure relay.
        """
        if node not in self._parent:
            raise ValueError(f"node {node} is not in the tree")
        unknown = set(demand) - self.attributes
        if unknown:
            raise ValueError(
                f"demand for node {node} names attributes outside the tree: {sorted(unknown)}"
            )
        if any(w < 0 for w in demand.values()):
            raise ValueError(f"demand weights must be >= 0 for node {node}")
        new_demand = {a: w for a, w in demand.items() if w > 0}
        new_msgw = self._local_msgw[node] if msg_weight is None else msg_weight
        if new_msgw <= 0:
            raise ValueError(f"msg_weight must be > 0, got {new_msgw}")
        old_demand = dict(self._local[node])
        old_msgw = self._local_msgw[node]
        if new_demand == old_demand and new_msgw == old_msgw:
            return True
        self._apply_local(node, new_demand, new_msgw)
        if check and not self._path_within_capacity(node):
            self._apply_local(node, old_demand, old_msgw)
            return False
        self._pair_count += len(new_demand) - len(old_demand)
        return True

    def _apply_local(self, node: NodeId, demand: NodeDemand, msgw: float) -> None:
        old_out = self._out[node]
        self._local[node] = dict(demand)
        self._local_msgw[node] = msgw
        incoming: Dict[AttributeId, float] = dict(demand)
        for child in self._children[node]:
            for attr, weight in self._out[child].values.items():
                incoming[attr] = incoming.get(attr, 0.0) + weight
        self._in[node] = incoming
        new_out = self._compute_out(node)
        self._out[node] = new_out
        self._send[node] = self._send_cost_of(new_out)
        parent = self._parent[node]
        if parent is not None:
            self._propagate_child_change(parent, old_out, new_out, child=node)

    def _path_within_capacity(self, node: NodeId) -> bool:
        current: Optional[NodeId] = node
        while current is not None:
            if self.used(current) > self.capacities.get(current, 0.0) + EPSILON:
                return False
            current = self._parent[current]
        return self.central_used() <= self.central_capacity + EPSILON

    def remove_branch(self, branch_root: NodeId) -> List[Tuple[NodeId, Optional[NodeId], NodeDemand, float]]:
        """Detach the subtree rooted at ``branch_root``.

        Returns the removed nodes as ``(node, parent, demand,
        msg_weight)`` records in preorder (so replaying ``add_node`` in
        order reconstructs the branch).  Parent of the branch root is
        reported as ``None`` in the records.
        """
        if branch_root not in self._parent:
            raise ValueError(f"node {branch_root} is not in the tree")
        parent = self._parent[branch_root]
        branch_out = self._out[branch_root]
        order = self.subtree_nodes(branch_root)
        records = []
        for node in order:
            node_parent = self._parent[node]
            records.append(
                (
                    node,
                    None if node == branch_root else node_parent,
                    dict(self._local[node]),
                    self._local_msgw[node],
                )
            )
        if parent is not None:
            self._children[parent].discard(branch_root)
            self._propagate_child_change(parent, branch_out, None, child=branch_root)
        else:
            self._root = None
        for node in order:
            self._pair_count -= len(self._local[node])
            for table in (
                self._parent,
                self._children,
                self._depth,
                self._local,
                self._local_msgw,
                self._in,
                self._out,
                self._send,
                self._recv,
            ):
                del table[node]
        return records

    def move_branch(self, branch_root: NodeId, new_parent: NodeId, check: bool = True) -> bool:
        """Re-attach the subtree at ``branch_root`` under ``new_parent``.

        Returns ``True`` on success.  With ``check=True``, if the move
        would violate a capacity constraint the tree is restored to its
        prior state and ``False`` is returned.  Moving a branch under
        one of its own descendants, under itself, or detaching the root
        is rejected with ``ValueError``.
        """
        if branch_root not in self._parent:
            raise ValueError(f"node {branch_root} is not in the tree")
        if new_parent not in self._parent:
            raise ValueError(f"new parent {new_parent} is not in the tree")
        old_parent = self._parent[branch_root]
        if old_parent is None:
            raise ValueError("cannot move the tree root")
        if new_parent == old_parent:
            return True
        branch_nodes = set(self.subtree_nodes(branch_root))
        if new_parent in branch_nodes:
            raise ValueError(
                f"cannot attach branch {branch_root} under its own descendant {new_parent}"
            )

        branch_out = self._out[branch_root]
        # Phase 1: detach from the old parent (always feasible).
        self._children[old_parent].discard(branch_root)
        self._propagate_child_change(old_parent, branch_out, None, child=branch_root)
        self._parent[branch_root] = None

        # Phase 2: check and attach under the new parent.
        if check and not self._attach_feasible(branch_out, new_parent):
            # Roll back.
            self._parent[branch_root] = old_parent
            self._children[old_parent].add(branch_root)
            self._propagate_child_change(old_parent, None, branch_out, child=branch_root)
            return False
        self._parent[branch_root] = new_parent
        self._children[new_parent].add(branch_root)
        self._propagate_child_change(new_parent, None, branch_out, child=branch_root)
        self._refresh_depths(branch_root)
        return True

    def can_move_branch(self, branch_root: NodeId, new_parent: NodeId) -> bool:
        """Feasibility of :meth:`move_branch` without permanent mutation."""
        if branch_root not in self._parent or new_parent not in self._parent:
            return False
        old_parent = self._parent[branch_root]
        if old_parent is None:
            return False
        if new_parent == old_parent:
            return True
        if new_parent in set(self.subtree_nodes(branch_root)):
            return False
        moved = self.move_branch(branch_root, new_parent, check=True)
        if moved:
            # Undo: move back is always feasible (it was the prior state).
            restored = self.move_branch(branch_root, old_parent, check=False)
            assert restored
        return moved

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_depths(self, branch_root: NodeId) -> None:
        parent = self._parent[branch_root]
        base = 0 if parent is None else self._depth[parent] + 1
        stack = [(branch_root, base)]
        while stack:
            node, depth = stack.pop()
            self._depth[node] = depth
            for child in self._children[node]:
                stack.append((child, depth + 1))

    def _propagate_child_change(
        self,
        start: NodeId,
        old_child_out: Optional[_Content],
        new_child_out: Optional[_Content],
        child: NodeId,
    ) -> None:
        """Update ``_in``/``_out``/``_send``/``_recv`` from ``start`` up to the root
        after ``child``'s outgoing content changed from ``old`` to ``new``."""
        node: Optional[NodeId] = start
        old_out = old_child_out
        new_out = new_child_out
        while node is not None:
            incoming = self._in[node]
            if old_out is not None:
                for attr, weight in old_out.values.items():
                    remaining = incoming.get(attr, 0.0) - weight
                    if remaining <= EPSILON and attr not in self._local[node] and all(
                        attr not in self._out[c].values for c in self._children[node]
                    ):
                        incoming.pop(attr, None)
                    else:
                        incoming[attr] = max(remaining, 0.0)
            if new_out is not None:
                for attr, weight in new_out.values.items():
                    incoming[attr] = incoming.get(attr, 0.0) + weight
            prior_out = self._out[node]
            prior_send = self._send[node]
            # recv delta at this node: the changed child's message cost.
            recv_delta = 0.0
            if old_out is not None:
                recv_delta -= self._send_cost_of(old_out)
            if new_out is not None:
                recv_delta += self._send_cost_of(new_out)
            self._recv[node] += recv_delta
            if self._recv[node] < 0.0:
                self._recv[node] = 0.0

            updated = self._compute_out(node)
            self._out[node] = updated
            self._send[node] = self._send_cost_of(updated)

            old_out = prior_out
            new_out = updated
            child = node
            node = self._parent[node]

    def _attach_feasible(
        self,
        content: _Content,
        parent: Optional[NodeId],
        extra_node: Optional[Tuple[NodeId, NodeDemand]] = None,
    ) -> bool:
        """Would attaching a message source with ``content`` under
        ``parent`` keep every constraint satisfied?

        ``extra_node`` is set when the source is a brand-new node (not a
        branch already accounted for); its own send cost is then checked
        against its capacity too.
        """
        new_msg_cost = self._send_cost_of(content)
        if extra_node is not None:
            node, _demand = extra_node
            if new_msg_cost > self.capacities.get(node, 0.0) + EPSILON:
                return False
        if parent is None:
            # Becoming the root: the collector receives the message.
            return new_msg_cost <= self.central_capacity + EPSILON

        # Walk up the path simulating per-attribute funnel deltas.
        delta_values = dict(content.values)
        delta_msgw = content.msg_weight
        node: Optional[NodeId] = parent
        child_msg_delta = new_msg_cost  # recv delta at `parent` = whole new message
        while node is not None:
            incoming = self._in[node]
            out = self._out[node].values
            new_delta_values: Dict[AttributeId, float] = {}
            send_values_delta = 0.0
            for attr, dw in delta_values.items():
                if dw <= 0.0:
                    continue
                before = out.get(attr, 0.0)
                after = self._funnel(attr, incoming.get(attr, 0.0) + dw)
                change = after - before
                if change > EPSILON:
                    new_delta_values[attr] = change
                    send_values_delta += change
            out_msgw = self._out[node].msg_weight
            new_msgw = max(out_msgw, self._local_msgw[node], delta_msgw)
            msgw_delta = new_msgw - out_msgw
            send_delta = self.cost.weighted_message_cost(msgw_delta, send_values_delta)
            projected = self._send[node] + send_delta + self._recv[node] + child_msg_delta
            if projected > self.capacities.get(node, 0.0) + EPSILON:
                return False
            # Prepare deltas seen by this node's parent.
            child_msg_delta = send_delta
            delta_values = new_delta_values
            delta_msgw = new_msgw  # parent's max over children uses absolute weight
            parent_of = self._parent[node]
            if parent_of is None:
                # The root's message grows; the collector must absorb it.
                if self.central_used() + send_delta > self.central_capacity + EPSILON:
                    return False
            node = parent_of
        return True

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Recompute all bookkeeping from scratch and compare.

        Raises :class:`TreeInvariantError` on any drift or constraint
        violation.  Intended for tests and debugging; it is O(n * m).
        """
        if not self._parent:
            return
        roots = [n for n, p in self._parent.items() if p is None]
        if len(roots) != 1 or roots[0] != self._root:
            raise TreeInvariantError(f"expected exactly one root, found {roots}")
        # Acyclicity + depth correctness via BFS from the root.
        seen = {self._root}
        frontier = [self._root]
        if self._depth[self._root] != 0:
            raise TreeInvariantError("root depth must be 0")
        while frontier:
            node = frontier.pop()
            for child in self._children[node]:
                if child in seen:
                    raise TreeInvariantError(f"cycle detected at node {child}")
                if self._parent[child] != node:
                    raise TreeInvariantError(f"parent pointer mismatch at {child}")
                if self._depth[child] != self._depth[node] + 1:
                    raise TreeInvariantError(f"depth mismatch at {child}")
                seen.add(child)
                frontier.append(child)
        if seen != set(self._parent):
            raise TreeInvariantError("orphan nodes disconnected from the root")

        # Recompute contents bottom-up.
        order = self.subtree_nodes(self._root)
        for node in reversed(order):
            incoming: Dict[AttributeId, float] = dict(self._local[node])
            msgw = self._local_msgw[node]
            recv = 0.0
            for child in self._children[node]:
                for attr, weight in self._out[child].values.items():
                    incoming[attr] = incoming.get(attr, 0.0) + weight
                recv += self._send[child]
                msgw = max(msgw, self._out[child].msg_weight)
            for attr, weight in incoming.items():
                cached = self._in[node].get(attr, 0.0)
                if abs(cached - weight) > 1e-6:
                    raise TreeInvariantError(
                        f"incoming weight drift at {node}/{attr}: cached {cached}, actual {weight}"
                    )
            expected_out = {
                attr: self._funnel(attr, weight) for attr, weight in incoming.items()
            }
            expected_out = {a: w for a, w in expected_out.items() if w > 0}
            cached_out = self._out[node].values
            if set(expected_out) != {a for a, w in cached_out.items() if w > 1e-9}:
                raise TreeInvariantError(f"outgoing attr set drift at {node}")
            for attr, weight in expected_out.items():
                if abs(cached_out.get(attr, 0.0) - weight) > 1e-6:
                    raise TreeInvariantError(f"outgoing weight drift at {node}/{attr}")
            if abs(self._out[node].msg_weight - msgw) > 1e-6:
                raise TreeInvariantError(f"message weight drift at {node}")
            if abs(self._recv[node] - recv) > 1e-6:
                raise TreeInvariantError(
                    f"recv drift at {node}: cached {self._recv[node]}, actual {recv}"
                )
            expected_send = self._send_cost_of(self._out[node])
            if abs(self._send[node] - expected_send) > 1e-6:
                raise TreeInvariantError(
                    f"send drift at {node}: cached {self._send[node]}, actual {expected_send}"
                )
            if self.used(node) > self.capacities.get(node, 0.0) + 1e-6:
                raise TreeInvariantError(
                    f"capacity violated at {node}: used {self.used(node)}, "
                    f"capacity {self.capacities.get(node, 0.0)}"
                )
        if self.central_used() > self.central_capacity + 1e-6:
            raise TreeInvariantError(
                f"central capacity violated: {self.central_used()} > {self.central_capacity}"
            )
        expected_pairs = sum(len(d) for d in self._local.values())
        if expected_pairs != self._pair_count:
            raise TreeInvariantError(
                f"pair count drift: cached {self._pair_count}, actual {expected_pairs}"
            )
