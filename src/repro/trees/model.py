"""The monitoring tree data structure.

This module implements the bookkeeping that every tree-construction
scheme relies on: for each member node the number of values it
forwards (``y_i`` in Problem Statement 2, generalized to fractional
*weights* for the heterogeneous-frequency extension and to per-metric
*funnel functions* for in-network aggregation), its message send cost
``u_i = C*w_i + a*y_i``, its receive cost (the sum of its children's
send costs), and the resulting capacity usage, all maintained
incrementally so that feasibility of attaching a node or moving a
branch can be checked in ``O(depth * |attributes|)``.

Cost maintenance is *delta based*: when a child's outgoing content
changes, only the per-attribute deltas are pushed up the ancestor
path (never a from-scratch recomputation per level), and the walk
terminates early at the first ancestor whose outgoing message is
unchanged -- funnel saturation (``min(1.0, incoming)``) makes deltas
vanish after one hop in aggregation-heavy trees, so most propagations
are O(1) instead of O(depth * attrs).  Two auxiliary caches make the
per-level step O(changed attrs): per-attribute *contributor refcounts*
(how many of {local demand, children} supply each incoming attribute)
decide key removal without scanning children, and a cached
*max-child-message-weight* with a contributor count avoids re-deriving
``max()`` over children at every level.  The from-scratch recomputer
in :mod:`repro.checks.recompute` is the oracle every incremental
state must match; :meth:`MonitoringTree.validate` cross-checks all
caches against it.

Capacity semantics (Problem Statement 2, constraint 1): for every
member node ``i``, ``send(i) + recv(i) <= capacity(i)``, where
``capacity(i)`` is the slice of node ``i``'s budget allocated to this
tree.  The tree root additionally charges the central collector
``send(root)`` against the tree's ``central_capacity`` slice.

Memory layout: scalar per-node state (capacity slice, send cost, recv
cost) lives in flat ``array('d')`` columns indexed by a dense *slot*
id assigned at attach time (struct of arrays), so headroom scans and
ancestor delta walks read contiguous floats instead of chasing
dict-of-dict pointers.  Per-attribute content stays in sparse dicts
(most nodes carry a handful of the tree's attributes), but funnel
dispatch is precompiled into dense per-attribute-id kind/k arrays.
When numpy is importable (the ``perf`` extra) the bulk headroom
kernel :meth:`MonitoringTree.viable_parents` evaluates
``capacity - (send + recv)`` vectorized over a zero-copy view of the
columns; the pure-Python fallback computes the identical floats
(same IEEE operations element by element), and setting
``REPRO_NO_NUMPY=1`` forces the fallback for testing.
"""

from __future__ import annotations

import math
import os
from array import array
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.attributes import AttributeId, NodeId
from repro.core.cost import AggregationKind, AggregationMap, AggregationSpec, CostModel

try:  # pragma: no cover - exercised via the fallback parity tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]
if os.environ.get("REPRO_NO_NUMPY"):
    _np = None  # type: ignore[assignment]

#: Below this member count the vectorized headroom kernel costs more
#: than the plain loop (array-view setup dominates), so small trees
#: always take the Python path.
_NUMPY_MIN_NODES = 16

#: A node's local contribution to a tree: ``{attribute: weight}`` where
#: weight is the expected number of values per collection period (1.0
#: unless the frequency extension scales it down).
NodeDemand = Dict[AttributeId, float]

#: Tolerance for floating-point capacity comparisons.
EPSILON = 1e-9

#: How the changed child relates to the node a delta walk starts at.
_CHILD_MODIFIED = 0
_CHILD_ATTACHED = 1
_CHILD_DETACHED = -1

#: Per-attribute delta of a child's outgoing content: ``(old, new)``
#: value weights (0.0 encodes absence).
_ValueDeltas = Dict[AttributeId, Tuple[float, float]]

#: Shared read-only empty delta map; the fast probe path in
#: ``_propagate_delta`` swaps it in so the general per-attribute loop
#: below it iterates nothing.  Never mutate.
_EMPTY_DELTAS: _ValueDeltas = {}


class TreeInvariantError(AssertionError):
    """Raised by :meth:`MonitoringTree.validate` when bookkeeping drifts."""


class _Content:
    """Outgoing message content: per-attribute value weights + message weight.

    ``msg_weight`` is the expected number of messages per collection
    period (1.0 for ordinary nodes; the frequency extension can lower
    a leaf's weight, and a relay inherits the max over itself and its
    children because it must forward whenever anything arrives).
    """

    __slots__ = ("values", "msg_weight")

    def __init__(self, values: Optional[Dict[AttributeId, float]] = None, msg_weight: float = 0.0):
        self.values = values if values is not None else {}
        self.msg_weight = msg_weight

    def total(self) -> float:
        return sum(self.values.values())


class _SimNodeState:
    """Overlay state for one node during a read-only walk simulation.

    ``in_values``/``out_values`` hold only the attributes the
    simulation changed; unchanged attributes fall through to the real
    tables.  ``total`` caches the node's simulated outgoing value sum
    so consecutive walk phases (detach, then attach) compose without
    rescanning the values dict.
    """

    __slots__ = ("in_values", "out_values", "msg_weight", "msgw_count", "total", "send", "recv")

    def __init__(
        self,
        msg_weight: float,
        msgw_count: int,
        total: float,
        send: float,
        recv: float,
    ) -> None:
        self.in_values: Dict[AttributeId, float] = {}
        self.out_values: Dict[AttributeId, float] = {}
        self.msg_weight = msg_weight
        self.msgw_count = msgw_count
        self.total = total
        self.send = send
        self.recv = recv


class MonitoringTree:
    """One collection tree for a set of attributes.

    Parameters
    ----------
    attributes:
        The partition set this tree delivers.
    cost_model:
        The shared ``C + a*x`` model.
    capacities:
        Allocated capacity slice per node for *this* tree.  Nodes not in
        the mapping cannot join.  Each member's slice is snapshotted
        into a flat column when it attaches; reassigning
        :attr:`capacities` refreshes the snapshot for every member
        (the pattern the adaptation path and tests use).
    central_capacity:
        Capacity slice at the central collector available to this
        tree's root message.
    aggregation:
        Optional per-attribute aggregation specs (Section 6.1).
        Attributes absent from the map are holistic.
    """

    def __init__(
        self,
        attributes: Iterable[AttributeId],
        cost_model: CostModel,
        capacities: Mapping[NodeId, float],
        central_capacity: float = math.inf,
        aggregation: Optional[AggregationMap] = None,
    ) -> None:
        self.attributes = frozenset(attributes)
        if not self.attributes:
            raise ValueError("a monitoring tree must deliver at least one attribute")
        self.cost = cost_model
        self._capacities = capacities
        self.central_capacity = central_capacity
        self._agg: Dict[AttributeId, AggregationSpec] = {}
        for attr, spec in (aggregation or {}).items():
            if attr in self.attributes and spec.kind not in (
                AggregationKind.HOLISTIC,
                AggregationKind.DISTINCT,
            ):
                self._agg[attr] = spec
        #: Fast-path flag: with no funnels, outgoing = incoming and the
        #: delta walk can skip the per-attribute funnel dispatch.
        self._has_agg = bool(self._agg)

        # Dense attribute ids: funnel dispatch compiled into flat
        # kind/k arrays so the hot walk never touches spec objects.
        # Kind codes: 0 = identity (holistic), 1 = saturating
        # single-partial funnel, 2 = top-k.
        self._attr_of: List[AttributeId] = sorted(self.attributes)
        self._attr_index: Dict[AttributeId, int] = {
            a: i for i, a in enumerate(self._attr_of)
        }
        self._funnel_kind = array("b", bytes(len(self._attr_of)))
        self._funnel_k = array("d", [0.0] * len(self._attr_of))
        for attr, spec in self._agg.items():
            ai = self._attr_index[attr]
            if spec.kind is AggregationKind.TOP_K:
                self._funnel_kind[ai] = 2
                self._funnel_k[ai] = float(spec.k)
            else:
                self._funnel_kind[ai] = 1

        # Struct-of-arrays node state: ``_slot`` assigns each member a
        # dense slot id (its insertion order matches ``_parent`` so
        # float accumulation orders are unchanged); freed slots are
        # recycled LIFO with capacity poisoned to -inf so they can
        # never pass a headroom bar in bulk scans.
        self._slot: Dict[NodeId, int] = {}
        self._node_of: List[NodeId] = []
        self._free_slots: List[int] = []
        self._cap_a = array("d")
        self._send_a = array("d")
        self._recv_a = array("d")
        # Maintained outgoing-value total (sum of ``_out[n].values``)
        # and node depth, mirrored per slot so hot walks and the bulk
        # headroom kernels never rescan dicts.  ``_tot_a`` is written
        # wherever outgoing content is committed; ``_depth_a`` wherever
        # ``_depth`` is.  ``validate`` cross-checks both against a full
        # recompute.
        self._tot_a = array("d")
        self._depth_a = array("d")
        # Monotone counter bumped on every committed mutation; negative
        # caches (e.g. the adjuster's relieve memo) key off it.
        self._epoch = 0
        self._relieve_memo: Optional[Tuple[int, bool, bool, float]] = None
        # (branch_root, epoch, attach_deltas, detach_deltas) reused
        # across consecutive move probes of the same branch.
        self._move_deltas_cache: Optional[Tuple[NodeId, int, Dict, Dict]] = None

        self._parent: Dict[NodeId, Optional[NodeId]] = {}
        self._children: Dict[NodeId, Set[NodeId]] = {}
        self._depth: Dict[NodeId, int] = {}
        self._local: Dict[NodeId, NodeDemand] = {}
        self._local_msgw: Dict[NodeId, float] = {}
        # Incoming per-attribute weights (local + children outputs).
        self._in: Dict[NodeId, Dict[AttributeId, float]] = {}
        # Contributor refcounts per incoming attribute: 1 for the local
        # demand plus 1 per child whose outgoing content carries the
        # attribute.  A key is dropped from ``_in`` exactly when its
        # refcount reaches zero -- no child scan needed.
        self._in_count: Dict[NodeId, Dict[AttributeId, int]] = {}
        # Cached outgoing content (funnel applied) and costs.
        self._out: Dict[NodeId, _Content] = {}
        # How many contributors (local msg weight + children's outgoing
        # weights) achieve ``_out[node].msg_weight``.  A departing
        # contributor only forces a rescan when this count hits zero.
        self._msgw_count: Dict[NodeId, int] = {}
        self._root: Optional[NodeId] = None
        self._pair_count = 0
        # Node at which the most recent check-mode walk failed (None if
        # it passed), and whether the failing walk carried a *minimal*
        # delta (no funnel attenuation possible, no message-weight
        # growth anywhere).  A minimal failure at node X means any
        # attach whose path to the root passes through X fails too, so
        # builders can prune sibling candidate parents without probing.
        self._last_check_fail: Optional[NodeId] = None
        self._last_check_fail_minimal = True

    # ------------------------------------------------------------------
    # Struct-of-arrays slot management
    # ------------------------------------------------------------------
    @property
    def capacities(self) -> Mapping[NodeId, float]:
        """The per-node capacity-slice mapping this tree was built with."""
        return self._capacities

    @capacities.setter
    def capacities(self, mapping: Mapping[NodeId, float]) -> None:
        self._capacities = mapping
        for node, slot in self._slot.items():
            self._cap_a[slot] = mapping.get(node, 0.0)

    @property
    def mutation_epoch(self) -> int:
        """Monotone counter of committed mutations (for negative caches)."""
        return self._epoch

    def _acquire_slot(self, node: NodeId) -> int:
        cap = self._capacities.get(node, 0.0)
        if self._free_slots:
            slot = self._free_slots.pop()
            self._node_of[slot] = node
            self._cap_a[slot] = cap
            self._send_a[slot] = 0.0
            self._recv_a[slot] = 0.0
            self._tot_a[slot] = 0.0
            self._depth_a[slot] = 0.0
        else:
            slot = len(self._node_of)
            self._node_of.append(node)
            self._cap_a.append(cap)
            self._send_a.append(0.0)
            self._recv_a.append(0.0)
            self._tot_a.append(0.0)
            self._depth_a.append(0.0)
        self._slot[node] = slot
        return slot

    def _release_slot(self, node: NodeId) -> None:
        slot = self._slot.pop(node)
        self._node_of[slot] = -1
        self._cap_a[slot] = -math.inf
        self._send_a[slot] = 0.0
        self._recv_a[slot] = 0.0
        self._tot_a[slot] = 0.0
        self._depth_a[slot] = 0.0
        self._free_slots.append(slot)

    # ------------------------------------------------------------------
    # Bulk headroom kernels
    # ------------------------------------------------------------------
    def viable_parents(self, min_headroom: float) -> List[NodeId]:
        """Members with ``available(n) >= min_headroom - 1e-9``.

        The numpy path evaluates ``capacity - (send + recv)`` over
        zero-copy views of the flat columns; the fallback performs the
        same IEEE operations per element, so both return identical
        node sets.  Order is slot order, which callers must not rely
        on (every downstream ranking uses a total-order sort key).
        """
        bar = min_headroom - 1e-9
        if _np is not None and len(self._slot) >= _NUMPY_MIN_NODES:
            # Views must be retaken per call: array('d') may realloc.
            cap = _np.frombuffer(self._cap_a)
            send = _np.frombuffer(self._send_a)
            recv = _np.frombuffer(self._recv_a)
            ok = (cap - (send + recv) >= bar).nonzero()[0]
            node_of = self._node_of
            return [node_of[i] for i in ok.tolist()]
        cap_a, send_a, recv_a = self._cap_a, self._send_a, self._recv_a
        return [
            node
            for node, slot in self._slot.items()
            if cap_a[slot] - (send_a[slot] + recv_a[slot]) >= bar
        ]

    def viable_parent_stats(
        self, min_headroom: float
    ) -> List[Tuple[NodeId, int, float]]:
        """Like :meth:`viable_parents` but yields ``(node, depth,
        available)`` triples so rankers avoid per-node re-reads."""
        bar = min_headroom - 1e-9
        depth = self._depth
        if _np is not None and len(self._slot) >= _NUMPY_MIN_NODES:
            cap = _np.frombuffer(self._cap_a)
            send = _np.frombuffer(self._send_a)
            recv = _np.frombuffer(self._recv_a)
            avail = cap - (send + recv)
            ok = (avail >= bar).nonzero()[0]
            node_of = self._node_of
            return [
                (node_of[i], depth[node_of[i]], float(avail[i])) for i in ok.tolist()
            ]
        cap_a, send_a, recv_a = self._cap_a, self._send_a, self._recv_a
        result = []
        for node, slot in self._slot.items():
            avail = cap_a[slot] - (send_a[slot] + recv_a[slot])
            if avail >= bar:
                result.append((node, depth[node], avail))
        return result

    def viable_parent_arrays(
        self, min_headroom: float
    ) -> Optional[Tuple[List[NodeId], "object", "object"]]:
        """Vectorized form of :meth:`viable_parent_stats`.

        Returns ``(nodes, depths, avail)`` where ``depths`` and
        ``avail`` are float64 ndarrays aligned with ``nodes``, or
        ``None`` when the numpy kernel is inactive (no numpy, or a
        small tree) -- callers then fall back to the per-node path.
        Keeping the columns as arrays lets rankers compute their whole
        sort key elementwise instead of per candidate.
        """
        if _np is None or len(self._slot) < _NUMPY_MIN_NODES:
            return None
        bar = min_headroom - 1e-9
        cap = _np.frombuffer(self._cap_a)
        send = _np.frombuffer(self._send_a)
        recv = _np.frombuffer(self._recv_a)
        avail = cap - (send + recv)
        ok = (avail >= bar).nonzero()[0]
        node_of = self._node_of
        nodes = [node_of[i] for i in ok.tolist()]
        depths = _np.frombuffer(self._depth_a)[ok]
        return nodes, depths, avail[ok]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._parent

    @property
    def root(self) -> Optional[NodeId]:
        """The tree root (sends directly to the central collector)."""
        return self._root

    @property
    def nodes(self) -> List[NodeId]:
        """Member nodes in no particular order."""
        return list(self._parent)

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent of ``node`` (``None`` for the root)."""
        return self._parent[node]

    def children(self, node: NodeId) -> Set[NodeId]:
        """Children of ``node`` (a copy)."""
        return set(self._children[node])

    def degree(self, node: NodeId) -> int:
        """Number of children of ``node``."""
        return len(self._children[node])

    def depth(self, node: NodeId) -> int:
        """Hops from the root (root = 0)."""
        return self._depth[node]

    def height(self) -> int:
        """Maximum node depth (empty tree: -1)."""
        return max(self._depth.values()) if self._depth else -1

    def local_demand(self, node: NodeId) -> NodeDemand:
        """The node's own contribution (a copy)."""
        return dict(self._local[node])

    def local_message_weight(self, node: NodeId) -> float:
        """The node's own message weight (before inheriting children's)."""
        return self._local_msgw[node]

    def funnel_value(self, attr: AttributeId, incoming: float) -> float:
        """Outgoing value weight for ``incoming`` weight of ``attr``
        after this tree's aggregation funnel (public, for verifiers
        that recompute costs from first principles)."""
        return self._funnel(attr, incoming)

    def send_cost(self, node: NodeId) -> float:
        """``u_i``: cost of the node's periodic update message(s)."""
        return self._send_a[self._slot[node]]

    def recv_cost(self, node: NodeId) -> float:
        """Cost of receiving all children's update messages."""
        return self._recv_a[self._slot[node]]

    def used(self, node: NodeId) -> float:
        """Total capacity consumed at ``node`` by this tree."""
        slot = self._slot[node]
        return self._send_a[slot] + self._recv_a[slot]

    def available(self, node: NodeId) -> float:
        """Remaining allocated capacity at ``node`` for this tree."""
        slot = self._slot[node]
        return self._cap_a[slot] - (self._send_a[slot] + self._recv_a[slot])

    def central_used(self) -> float:
        """Cost charged to the central collector by this tree's root."""
        if self._root is None:
            return 0.0
        return self._send_a[self._slot[self._root]]

    def outgoing_values(self, node: NodeId) -> float:
        """``y_i``: total value weight in the node's update message."""
        return self._out[node].total()

    def message_weight(self, node: NodeId) -> float:
        """Expected messages per period sent by ``node``."""
        return self._out[node].msg_weight

    def pair_count(self) -> int:
        """Number of node-attribute pairs this tree collects."""
        return self._pair_count

    def has_aggregation(self) -> bool:
        """Whether any attribute in this tree has a non-holistic funnel."""
        return self._has_agg

    def last_attach_failure(self) -> Tuple[Optional[NodeId], bool]:
        """Where the most recent feasibility check failed, and whether
        the failing walk carried a minimal delta.

        Returns ``(node, minimal)``.  ``node`` is ``None`` when the
        last check passed (or failed only at the central collector
        during a root attach).  When ``minimal`` is true, the tree has
        no aggregation funnels, and the failure occurred at a *strict
        ancestor* of the attach point (a relay hop), it transfers:
        any attach of the same content whose path to the root passes
        through ``node`` delivers at least the same delta there and
        must fail too.  A failure at the attach parent itself does
        not transfer -- the direct attach charges the new child's
        per-message overhead, which routed attaches avoid.  Builders
        use this to prune sibling candidate parents without probing.
        """
        return self._last_check_fail, self._last_check_fail_minimal

    def subtree_nodes(self, node: NodeId) -> List[NodeId]:
        """All nodes in the subtree rooted at ``node`` (preorder)."""
        result: List[NodeId] = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self._children[current])
        return result

    def subtree_size(self, node: NodeId) -> int:
        """Number of nodes in the subtree rooted at ``node``."""
        return len(self.subtree_nodes(node))

    def edges(self) -> Set[Tuple[NodeId, NodeId]]:
        """All ``(child, parent)`` edges; the root edge uses parent ``-1``."""
        result: Set[Tuple[NodeId, NodeId]] = set()
        for node, parent in self._parent.items():
            result.add((node, parent if parent is not None else -1))
        return result

    def total_message_cost(self) -> float:
        """Send-side cost per period summed over all members.

        This is the tree's contribution to the paper's ``C_cur`` --
        the volume of monitoring traffic per unit time -- used by the
        adaptation throttling formula.
        """
        send_a = self._send_a
        # Membership order (not slot order) keeps the accumulation
        # sequence identical to the pre-SoA dict-valued sum.
        return sum(send_a[slot] for slot in self._slot.values())

    # ------------------------------------------------------------------
    # Funnel helpers
    # ------------------------------------------------------------------
    def _funnel(self, attr: AttributeId, incoming: float) -> float:
        if incoming <= 0.0:
            return max(incoming, 0.0)
        # Attributes outside the tree (tolerated by entry-cost probes)
        # and holistic members pass through unchanged.
        ai = self._attr_index.get(attr)
        if ai is None:
            return incoming
        kind = self._funnel_kind[ai]
        if kind == 0:
            return incoming
        if kind == 2:
            return min(self._funnel_k[ai], incoming)
        # SUM/MAX/MIN/AVG/COUNT collapse to one partial result; when the
        # incoming weight is already below one message-worth of values
        # (fractional frequencies) nothing can be saved.
        return min(1.0, incoming)

    def _compute_out(self, node: NodeId) -> _Content:
        incoming = self._in[node]
        values = {}
        for attr, weight in incoming.items():
            out = self._funnel(attr, weight)
            if out > 0.0:
                values[attr] = out
        msgw = self._local_msgw[node]
        for child in self._children[node]:
            msgw = max(msgw, self._out[child].msg_weight)
        return _Content(values, msgw)

    def _send_cost_of(self, content: _Content) -> float:
        if content.msg_weight <= 0.0:
            return 0.0
        return self.cost.weighted_message_cost(content.msg_weight, content.total())

    # ------------------------------------------------------------------
    # Structural mutation
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: NodeId,
        parent: Optional[NodeId],
        demand: NodeDemand,
        msg_weight: float = 1.0,
        check: bool = True,
    ) -> bool:
        """Attach ``node`` under ``parent`` (``None`` => become the root).

        Returns ``True`` on success.  With ``check=True`` the attachment
        is refused (returning ``False``) if it would violate any
        capacity constraint along the path to the collector; with
        ``check=False`` it is applied unconditionally (used by tests and
        by callers that have already validated).
        """
        if node in self._parent:
            raise ValueError(f"node {node} is already in the tree")
        unknown = set(demand) - self.attributes
        if unknown:
            raise ValueError(
                f"demand for node {node} names attributes outside the tree: {sorted(unknown)}"
            )
        if any(w < 0 for w in demand.values()):
            raise ValueError(f"demand weights must be >= 0 for node {node}")
        if msg_weight <= 0:
            raise ValueError(f"msg_weight must be > 0, got {msg_weight}")
        if parent is None:
            if self._root is not None:
                raise ValueError("tree already has a root; attach under an existing node")
        elif parent not in self._parent:
            raise ValueError(f"parent {parent} is not in the tree")

        demand = {a: w for a, w in demand.items() if w > 0}
        content = _Content(
            {a: self._funnel(a, w) for a, w in demand.items()},
            msg_weight,
        )
        content.values = {a: w for a, w in content.values.items() if w > 0}
        if check and not self._attach_feasible(content, parent, extra_node=(node, demand)):
            return False

        total = content.total()
        send = (
            self.cost.weighted_message_cost(content.msg_weight, total)
            if content.msg_weight > 0.0
            else 0.0
        )
        self._parent[node] = parent
        self._children[node] = set()
        depth = 0 if parent is None else self._depth[parent] + 1
        self._depth[node] = depth
        self._local[node] = dict(demand)
        self._local_msgw[node] = msg_weight
        self._in[node] = dict(demand)
        self._in_count[node] = {a: 1 for a in demand}
        self._out[node] = content
        self._msgw_count[node] = 1
        slot = self._acquire_slot(node)
        self._send_a[slot] = send
        self._tot_a[slot] = total
        self._depth_a[slot] = float(depth)
        self._pair_count += len(demand)
        self._epoch += 1
        if parent is None:
            self._root = node
        else:
            self._children[parent].add(node)
            self._propagate_delta(
                parent,
                node,
                {a: (0.0, w) for a, w in content.values.items()},
                0.0,
                content.msg_weight,
                0.0,
                send,
                _CHILD_ATTACHED,
                commit=True,
            )
        return True

    def entry_cost(self, demand: NodeDemand, msg_weight: float = 1.0) -> float:
        """Send cost of the message a new leaf with ``demand`` would emit.

        This is also the *minimum* capacity any prospective parent must
        have available (its receive-side share), which makes it a sound
        pre-filter before the full path feasibility walk.
        """
        content = _Content(
            {a: self._funnel(a, w) for a, w in demand.items() if w > 0}, msg_weight
        )
        return self._send_cost_of(content)

    def can_add_node(self, node: NodeId, parent: Optional[NodeId], demand: NodeDemand, msg_weight: float = 1.0) -> bool:
        """Feasibility of :meth:`add_node` without mutating."""
        if node in self._parent:
            return False
        demand = {a: w for a, w in demand.items() if w > 0}
        content = _Content({a: self._funnel(a, w) for a, w in demand.items()}, msg_weight)
        return self._attach_feasible(content, parent, extra_node=(node, demand))

    def update_local(
        self,
        node: NodeId,
        demand: NodeDemand,
        msg_weight: Optional[float] = None,
        check: bool = True,
    ) -> bool:
        """Replace ``node``'s local contribution in place.

        Used by DIRECT-APPLY adaptation to add or drop attribute values
        at a member node without touching the tree structure.  With
        ``check=True`` the mutation is reverted and ``False`` returned
        if it would overflow any node on the path to the collector.
        An empty ``demand`` leaves the node as a pure relay.
        """
        if node not in self._parent:
            raise ValueError(f"node {node} is not in the tree")
        unknown = set(demand) - self.attributes
        if unknown:
            raise ValueError(
                f"demand for node {node} names attributes outside the tree: {sorted(unknown)}"
            )
        if any(w < 0 for w in demand.values()):
            raise ValueError(f"demand weights must be >= 0 for node {node}")
        new_demand = {a: w for a, w in demand.items() if w > 0}
        new_msgw = self._local_msgw[node] if msg_weight is None else msg_weight
        if new_msgw <= 0:
            raise ValueError(f"msg_weight must be > 0, got {new_msgw}")
        old_demand = dict(self._local[node])
        old_msgw = self._local_msgw[node]
        if new_demand == old_demand and new_msgw == old_msgw:
            return True
        self._apply_local(node, new_demand, new_msgw)
        if check and not self._path_within_capacity(node):
            self._apply_local(node, old_demand, old_msgw)
            return False
        self._pair_count += len(new_demand) - len(old_demand)
        return True

    def _apply_local(self, node: NodeId, demand: NodeDemand, msgw: float) -> None:
        slot = self._slot[node]
        old_out = self._out[node]
        old_send = self._send_a[slot]
        self._epoch += 1
        self._local[node] = dict(demand)
        self._local_msgw[node] = msgw
        incoming: Dict[AttributeId, float] = dict(demand)
        counts: Dict[AttributeId, int] = {a: 1 for a in demand}
        for child in self._children[node]:
            for attr, weight in self._out[child].values.items():
                incoming[attr] = incoming.get(attr, 0.0) + weight
                counts[attr] = counts.get(attr, 0) + 1
        self._in[node] = incoming
        self._in_count[node] = counts
        new_out = self._compute_out(node)
        self._out[node] = new_out
        self._msgw_count[node] = self._count_msgw_contributors(node, new_out.msg_weight)
        new_total = new_out.total()
        new_send = (
            self.cost.weighted_message_cost(new_out.msg_weight, new_total)
            if new_out.msg_weight > 0.0
            else 0.0
        )
        self._send_a[slot] = new_send
        self._tot_a[slot] = new_total
        parent = self._parent[node]
        if parent is not None:
            changed = _diff_values(old_out.values, new_out.values)
            self._propagate_delta(
                parent,
                node,
                changed,
                old_out.msg_weight,
                new_out.msg_weight,
                old_send,
                new_send,
                _CHILD_MODIFIED,
                commit=True,
            )

    def _count_msgw_contributors(self, node: NodeId, msgw: float) -> int:
        count = 1 if self._local_msgw[node] == msgw else 0
        for child in self._children[node]:
            if self._out[child].msg_weight == msgw:
                count += 1
        return count

    def _path_within_capacity(self, node: NodeId) -> bool:
        slot_tab, cap_a = self._slot, self._cap_a
        send_a, recv_a = self._send_a, self._recv_a
        current: Optional[NodeId] = node
        while current is not None:
            slot = slot_tab[current]
            if send_a[slot] + recv_a[slot] > cap_a[slot] + EPSILON:
                return False
            current = self._parent[current]
        return self.central_used() <= self.central_capacity + EPSILON

    def remove_branch(self, branch_root: NodeId) -> List[Tuple[NodeId, Optional[NodeId], NodeDemand, float]]:
        """Detach the subtree rooted at ``branch_root``.

        Returns the removed nodes as ``(node, parent, demand,
        msg_weight)`` records in preorder (so replaying ``add_node`` in
        order reconstructs the branch).  Parent of the branch root is
        reported as ``None`` in the records.
        """
        if branch_root not in self._parent:
            raise ValueError(f"node {branch_root} is not in the tree")
        parent = self._parent[branch_root]
        branch_out = self._out[branch_root]
        order = self.subtree_nodes(branch_root)
        records = []
        for node in order:
            node_parent = self._parent[node]
            records.append(
                (
                    node,
                    None if node == branch_root else node_parent,
                    dict(self._local[node]),
                    self._local_msgw[node],
                )
            )
        if parent is not None:
            self._children[parent].discard(branch_root)
            self._propagate_delta(
                parent,
                branch_root,
                {a: (w, 0.0) for a, w in branch_out.values.items()},
                branch_out.msg_weight,
                0.0,
                self._send_a[self._slot[branch_root]],
                0.0,
                _CHILD_DETACHED,
                commit=True,
            )
        else:
            self._root = None
        for node in order:
            self._pair_count -= len(self._local[node])
            self._release_slot(node)
            for table in (
                self._parent,
                self._children,
                self._depth,
                self._local,
                self._local_msgw,
                self._in,
                self._in_count,
                self._out,
                self._msgw_count,
            ):
                del table[node]
        self._epoch += 1
        return records

    def move_branch(self, branch_root: NodeId, new_parent: NodeId, check: bool = True) -> bool:
        """Re-attach the subtree at ``branch_root`` under ``new_parent``.

        Returns ``True`` on success.  With ``check=True`` feasibility is
        established by a read-only simulation *before* anything mutates
        (no rollback is ever needed), and ``False`` is returned if the
        move would violate a capacity constraint.  Moving a branch
        under one of its own descendants, under itself, or detaching
        the root is rejected with ``ValueError``.
        """
        if branch_root not in self._parent:
            raise ValueError(f"node {branch_root} is not in the tree")
        if new_parent not in self._parent:
            raise ValueError(f"new parent {new_parent} is not in the tree")
        old_parent = self._parent[branch_root]
        if old_parent is None:
            raise ValueError("cannot move the tree root")
        if new_parent == old_parent:
            return True
        if self._is_ancestor_or_self(branch_root, new_parent):
            raise ValueError(
                f"cannot attach branch {branch_root} under its own descendant {new_parent}"
            )

        if check and not self._move_feasible(branch_root, new_parent):
            return False

        branch_out = self._out[branch_root]
        branch_send = self._send_a[self._slot[branch_root]]
        self._children[old_parent].discard(branch_root)
        self._propagate_delta(
            old_parent,
            branch_root,
            {a: (w, 0.0) for a, w in branch_out.values.items()},
            branch_out.msg_weight,
            0.0,
            branch_send,
            0.0,
            _CHILD_DETACHED,
            commit=True,
        )
        self._parent[branch_root] = new_parent
        self._children[new_parent].add(branch_root)
        self._propagate_delta(
            new_parent,
            branch_root,
            {a: (0.0, w) for a, w in branch_out.values.items()},
            0.0,
            branch_out.msg_weight,
            0.0,
            branch_send,
            _CHILD_ATTACHED,
            commit=True,
        )
        self._refresh_depths(branch_root)
        self._epoch += 1
        return True

    def can_move_branch(self, branch_root: NodeId, new_parent: NodeId) -> bool:
        """Feasibility of :meth:`move_branch` as a read-only simulation.

        Nothing is mutated: the detach and re-attach are replayed
        against a scratch overlay of the ancestor paths, so a failed
        probe costs one early-terminating walk instead of a full
        ``move_branch`` + rollback.
        """
        if branch_root not in self._parent or new_parent not in self._parent:
            return False
        old_parent = self._parent[branch_root]
        if old_parent is None:
            return False
        if new_parent == old_parent:
            return True
        if self._is_ancestor_or_self(branch_root, new_parent):
            return False
        return self._move_feasible(branch_root, new_parent)

    def _is_ancestor_or_self(self, ancestor: NodeId, node: NodeId) -> bool:
        current: Optional[NodeId] = node
        while current is not None:
            if current == ancestor:
                return True
            current = self._parent[current]
        return False

    def _move_feasible(self, branch_root: NodeId, new_parent: NodeId) -> bool:
        """Simulate detach-then-attach of ``branch_root`` on an overlay.

        Fast paths first: the attach is checked *pessimistically*
        against the current state (as if the branch were not detached).
        Tree state after detaching is pointwise no larger than before
        (funnels are monotone), and an attach that fits a larger state
        fits a smaller one, so a pessimistic pass is a real pass.  A
        pessimistic failure at a node strictly below where the old and
        new paths merge is exact too: detaching cannot change state
        there.  Only the ambiguous remainder -- failure at a shared
        ancestor -- pays for the full two-phase overlay simulation.

        In the full simulation, the detach phase is pure decrease, so
        it never needs capacity checks; the attach phase reads the
        composed overlay state and enforces every constraint the real
        mutation would.
        """
        old_parent = self._parent[branch_root]
        assert old_parent is not None
        branch_out = self._out[branch_root]
        branch_send = self._send_a[self._slot[branch_root]]

        # Consecutive probes of the same branch (one per candidate
        # target) see identical content: reuse the delta maps until a
        # committed mutation bumps the epoch.  Propagation only reads
        # them, so sharing is safe.
        cache = self._move_deltas_cache
        if cache is not None and cache[0] == branch_root and cache[1] == self._epoch:
            attach_deltas, detach_deltas = cache[2], cache[3]
        else:
            vals = branch_out.values
            attach_deltas = {a: (0.0, w) for a, w in vals.items()}
            detach_deltas = {a: (w, 0.0) for a, w in vals.items()}
            self._move_deltas_cache = (branch_root, self._epoch, attach_deltas, detach_deltas)
        if self._propagate_delta(
            new_parent,
            None,
            attach_deltas,
            0.0,
            branch_out.msg_weight,
            0.0,
            branch_send,
            _CHILD_ATTACHED,
            check=True,
        ):
            return True
        fail_node = self._last_check_fail
        if fail_node is not None:
            # Exact rejection if the failing node is untouched by the
            # detach (i.e. not an ancestor of the old parent).
            if not self._is_ancestor_or_self(fail_node, old_parent):
                return False

        overlay: Dict[NodeId, _SimNodeState] = {}
        self._propagate_delta(
            old_parent,
            branch_root,
            detach_deltas,
            branch_out.msg_weight,
            0.0,
            branch_send,
            0.0,
            _CHILD_DETACHED,
            overlay=overlay,
        )
        return self._propagate_delta(
            new_parent,
            branch_root,
            attach_deltas,
            0.0,
            branch_out.msg_weight,
            0.0,
            branch_send,
            _CHILD_ATTACHED,
            check=True,
            overlay=overlay,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_depths(self, branch_root: NodeId) -> None:
        parent = self._parent[branch_root]
        base = 0 if parent is None else self._depth[parent] + 1
        depth_tab = self._depth
        depth_a = self._depth_a
        slot_tab = self._slot
        stack = [(branch_root, base)]
        while stack:
            node, depth = stack.pop()
            depth_tab[node] = depth
            depth_a[slot_tab[node]] = float(depth)
            for child in self._children[node]:
                stack.append((child, depth + 1))

    def _propagate_delta(
        self,
        start: NodeId,
        child: Optional[NodeId],
        changed: _ValueDeltas,
        old_msgw: float,
        new_msgw: float,
        old_send: float,
        new_send: float,
        sign: int,
        commit: bool = False,
        check: bool = False,
        overlay: Optional[Dict[NodeId, _SimNodeState]] = None,
    ) -> bool:
        """Push a child's content delta up the ancestor path.

        ``changed`` maps each attribute whose outgoing weight changed at
        the child to its ``(old, new)`` pair; ``old_/new_msgw`` and
        ``old_/new_send`` describe the child's message weight and send
        cost before/after; ``sign`` says whether the child was modified
        in place, newly attached, or detached.

        Three modes share this one walk so the incremental math cannot
        drift between them:

        - ``commit=True`` writes the real tables (the mutation path);
        - ``check=True`` verifies capacity along the way and returns
          ``False`` at the first violated node (feasibility path);
        - ``overlay`` (a scratch dict) makes the walk read *through*
          and write *to* simulated per-node state, so multi-phase
          simulations (detach, then attach) compose read-only.

        The walk stops at the first ancestor whose outgoing message is
        unchanged: its parent then sees zero delta, so nothing above
        can change.  Under funnel saturation this usually happens after
        one hop.
        """
        parent_tab = self._parent
        in_tab = self._in
        out_tab = self._out
        funnel = self._funnel
        has_agg = self._has_agg
        slot_tab = self._slot
        cap_a = self._cap_a
        send_a = self._send_a
        recv_a = self._recv_a
        tot_a = self._tot_a
        msgw_count_tab = self._msgw_count
        weighted_cost = self.cost.weighted_message_cost
        if check:
            self._last_check_fail = None
            self._last_check_fail_minimal = True
        msgw_grew = False
        node: Optional[NodeId] = start
        while node is not None:
            slot = slot_tab[node]
            entry = overlay.get(node) if overlay is not None else None
            real_out = out_tab[node]
            if entry is not None:
                cur_msgw = entry.msg_weight
                cur_count = entry.msgw_count
                cur_total = entry.total
                cur_send = entry.send
                cur_recv = entry.recv
            else:
                cur_msgw = real_out.msg_weight
                cur_count = msgw_count_tab[node]
                cur_total = tot_a[slot]
                cur_send = send_a[slot]
                cur_recv = recv_a[slot]

            # -- per-attribute incoming/outgoing deltas ----------------
            real_in = in_tab[node]
            out_pairs: _ValueDeltas = {}
            out_delta = 0.0
            in_changes: Optional[Dict[AttributeId, float]] = {} if overlay is not None else None
            if not commit and in_changes is None:
                # Feasibility probes (the vast majority of walks) take
                # this branch: it is the general loop below with the
                # commit/overlay plumbing constant-folded away.  The
                # arithmetic and its evaluation order are identical, so
                # probe outcomes match the general path bit for bit.
                out_vals = real_out.values
                if has_agg:
                    for attr, (ow, nw) in changed.items():
                        new_in = real_in.get(attr, 0.0) + (nw - ow)
                        old_out_w = out_vals.get(attr, 0.0)
                        new_out_w = funnel(attr, new_in)
                        if new_out_w != old_out_w:
                            out_pairs[attr] = (old_out_w, new_out_w)
                            out_delta += new_out_w - old_out_w
                else:
                    for attr, (ow, nw) in changed.items():
                        new_in = real_in.get(attr, 0.0) + (nw - ow)
                        old_out_w = out_vals.get(attr, 0.0)
                        new_out_w = new_in if new_in > 0.0 else 0.0
                        if new_out_w != old_out_w:
                            out_pairs[attr] = (old_out_w, new_out_w)
                            out_delta += new_out_w - old_out_w
                changed = _EMPTY_DELTAS
            elif not commit:
                # Overlay simulations: the same constant-folding, with
                # reads falling through entry -> real tables and the
                # simulated incoming weights recorded for the entry.
                out_vals = real_out.values
                ev_in = entry.in_values if entry is not None else None
                ev_out = entry.out_values if entry is not None else None
                assert in_changes is not None
                for attr, (ow, nw) in changed.items():
                    if ev_in is not None and attr in ev_in:
                        cur_in = ev_in[attr]
                    else:
                        cur_in = real_in.get(attr, 0.0)
                    new_in = cur_in + (nw - ow)
                    in_changes[attr] = new_in
                    if ev_out is not None and attr in ev_out:
                        old_out_w = ev_out[attr]
                    else:
                        old_out_w = out_vals.get(attr, 0.0)
                    if has_agg:
                        new_out_w = funnel(attr, new_in)
                    else:
                        new_out_w = new_in if new_in > 0.0 else 0.0
                    if new_out_w != old_out_w:
                        out_pairs[attr] = (old_out_w, new_out_w)
                        out_delta += new_out_w - old_out_w
                changed = _EMPTY_DELTAS
            counts = self._in_count[node] if commit else None
            for attr, (ow, nw) in changed.items():
                if commit:
                    counts_t = counts
                    assert counts_t is not None
                    if sign == _CHILD_ATTACHED:
                        gained, lost = nw > 0.0, False
                    elif sign == _CHILD_DETACHED:
                        gained, lost = False, ow > 0.0
                    else:
                        gained = ow <= 0.0 < nw
                        lost = nw <= 0.0 < ow
                    if gained:
                        counts_t[attr] = counts_t.get(attr, 0) + 1
                    ref = counts_t.get(attr, 0)
                    if lost:
                        ref -= 1
                        if ref <= 0:
                            counts_t.pop(attr, None)
                            ref = 0
                        else:
                            counts_t[attr] = ref
                else:
                    ref = -1  # unknown; simulations tolerate ~0 residue
                if entry is not None and attr in entry.in_values:
                    cur_in = entry.in_values[attr]
                else:
                    cur_in = real_in.get(attr, 0.0)
                new_in = cur_in + (nw - ow)
                if ref == 0:
                    # Last contributor gone: snap the residue to exactly
                    # zero so incremental state matches a recompute.
                    new_in = 0.0
                if commit:
                    if ref == 0:
                        real_in.pop(attr, None)
                    else:
                        real_in[attr] = new_in if new_in > 0.0 else 0.0
                elif in_changes is not None:
                    in_changes[attr] = new_in
                if entry is not None and attr in entry.out_values:
                    old_out_w = entry.out_values[attr]
                else:
                    old_out_w = real_out.values.get(attr, 0.0)
                if has_agg:
                    new_out_w = funnel(attr, new_in)
                else:
                    new_out_w = new_in if new_in > 0.0 else 0.0
                if new_out_w != old_out_w:
                    out_pairs[attr] = (old_out_w, new_out_w)
                    out_delta += new_out_w - old_out_w

            # -- cached max over {local msgw, children msgw} -----------
            node_msgw = cur_msgw
            node_count = cur_count
            if sign == _CHILD_ATTACHED:
                if new_msgw > cur_msgw:
                    node_msgw, node_count = new_msgw, 1
                elif new_msgw == cur_msgw:
                    node_count = cur_count + 1
            elif sign == _CHILD_DETACHED:
                if old_msgw == cur_msgw:
                    node_count = cur_count - 1
                    if node_count <= 0:
                        node_msgw, node_count = self._rescan_msgw(node, child, None, overlay)
            else:  # modified in place
                if new_msgw > cur_msgw:
                    node_msgw, node_count = new_msgw, 1
                elif new_msgw == cur_msgw:
                    if old_msgw != cur_msgw:
                        node_count = cur_count + 1
                elif old_msgw == cur_msgw:
                    node_count = cur_count - 1
                    if node_count <= 0:
                        node_msgw, node_count = self._rescan_msgw(node, child, new_msgw, overlay)

            if node_msgw != cur_msgw:
                msgw_grew = True
            new_recv = cur_recv + new_send - old_send
            if new_recv < 0.0:
                new_recv = 0.0

            # -- early termination -------------------------------------
            if not out_pairs and node_msgw == cur_msgw:
                # Outgoing message unchanged: the parent sees no delta.
                # Settle recv (and the msgw contributor count) here and
                # stop walking.
                if commit:
                    recv_a[slot] = new_recv
                    msgw_count_tab[node] = node_count
                elif overlay is not None:
                    if entry is None:
                        entry = self._overlay_entry(node, cur_msgw, cur_count, real_out)
                        overlay[node] = entry
                    if in_changes:
                        entry.in_values.update(in_changes)
                    entry.msgw_count = node_count
                    entry.recv = new_recv
                if check and cur_send + new_recv > cap_a[slot] + EPSILON:
                    self._last_check_fail = node
                    self._last_check_fail_minimal = not msgw_grew
                    return False
                return True

            new_total = cur_total + out_delta
            node_send = (
                weighted_cost(node_msgw, new_total) if node_msgw > 0.0 else 0.0
            )
            if check and node_send + new_recv > cap_a[slot] + EPSILON:
                self._last_check_fail = node
                self._last_check_fail_minimal = not msgw_grew
                return False

            parent = parent_tab[node]
            if check and parent is None and node_send > self.central_capacity + EPSILON:
                # The root's message grows; the collector must absorb it.
                self._last_check_fail = node
                self._last_check_fail_minimal = not msgw_grew
                return False

            if commit:
                values = real_out.values
                for attr, (_ow2, nw2) in out_pairs.items():
                    if nw2 > 0.0:
                        values[attr] = nw2
                    else:
                        values.pop(attr, None)
                real_out.msg_weight = node_msgw
                msgw_count_tab[node] = node_count
                send_a[slot] = node_send
                recv_a[slot] = new_recv
                tot_a[slot] = new_total
            elif overlay is not None:
                if entry is None:
                    entry = self._overlay_entry(node, cur_msgw, cur_count, real_out)
                    overlay[node] = entry
                if in_changes:
                    entry.in_values.update(in_changes)
                for attr, (_ow2, nw2) in out_pairs.items():
                    entry.out_values[attr] = nw2
                entry.msg_weight = node_msgw
                entry.msgw_count = node_count
                entry.total = new_total
                entry.send = node_send
                entry.recv = new_recv

            # The node itself is the changed child at the next level.
            changed = out_pairs
            old_msgw, new_msgw = cur_msgw, node_msgw
            old_send, new_send = cur_send, node_send
            sign = _CHILD_MODIFIED
            child = node
            node = parent
        return True

    def _overlay_entry(
        self, node: NodeId, msgw: float, msgw_count: int, real_out: _Content
    ) -> _SimNodeState:
        slot = self._slot[node]
        return _SimNodeState(
            msgw,
            msgw_count,
            self._tot_a[slot],
            self._send_a[slot],
            self._recv_a[slot],
        )

    def _rescan_msgw(
        self,
        node: NodeId,
        child: Optional[NodeId],
        replacement: Optional[float],
        overlay: Optional[Dict[NodeId, _SimNodeState]],
    ) -> Tuple[float, int]:
        """Recompute the max message weight over {local, children} and
        its contributor count, with the changed ``child`` excluded (or
        its weight replaced by ``replacement`` for in-place changes)."""
        best = self._local_msgw[node]
        count = 1
        for c in self._children[node]:
            if c == child:
                continue
            if overlay is not None and c in overlay:
                w = overlay[c].msg_weight
            else:
                w = self._out[c].msg_weight
            if w > best:
                best, count = w, 1
            elif w == best:
                count += 1
        if replacement is not None:
            if replacement > best:
                best, count = replacement, 1
            elif replacement == best:
                count += 1
        return best, count

    def _attach_feasible(
        self,
        content: _Content,
        parent: Optional[NodeId],
        extra_node: Optional[Tuple[NodeId, NodeDemand]] = None,
    ) -> bool:
        """Would attaching a message source with ``content`` under
        ``parent`` keep every constraint satisfied?

        ``extra_node`` is set when the source is a brand-new node (not a
        branch already accounted for); its own send cost is then checked
        against its capacity too.
        """
        new_msg_cost = self._send_cost_of(content)
        self._last_check_fail = None
        self._last_check_fail_minimal = True
        if extra_node is not None:
            node, _demand = extra_node
            # The joining node has no slot yet; read the mapping.
            if new_msg_cost > self._capacities.get(node, 0.0) + EPSILON:
                # The new node's own send exceeds its own capacity: no
                # choice of parent can fix that.
                self._last_check_fail = node
                return False
        if parent is None:
            # Becoming the root: the collector receives the message.
            return new_msg_cost <= self.central_capacity + EPSILON
        return self._propagate_delta(
            parent,
            None,
            {a: (0.0, w) for a, w in content.values.items()},
            0.0,
            content.msg_weight,
            0.0,
            new_msg_cost,
            _CHILD_ATTACHED,
            check=True,
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Recompute all bookkeeping from scratch and compare.

        Raises :class:`TreeInvariantError` on any drift or constraint
        violation.  Intended for tests and debugging; it is O(n * m).
        """
        if not self._parent:
            return
        # Slot-table consistency: one live slot per member, back-pointer
        # agreement, poisoned free slots, snapshot matching the mapping.
        if set(self._slot) != set(self._parent):
            raise TreeInvariantError("slot table out of sync with membership")
        for node, slot in self._slot.items():
            if self._node_of[slot] != node:
                raise TreeInvariantError(f"slot back-pointer mismatch at {node}")
            expected_cap = self._capacities.get(node, 0.0)
            if self._cap_a[slot] != expected_cap:
                raise TreeInvariantError(
                    f"capacity snapshot drift at {node}: column {self._cap_a[slot]}, "
                    f"mapping {expected_cap} (reassign tree.capacities to refresh)"
                )
        for slot in self._free_slots:
            if self._node_of[slot] != -1 or self._cap_a[slot] != -math.inf:
                raise TreeInvariantError(f"freed slot {slot} not poisoned")
        if len(self._slot) + len(self._free_slots) != len(self._node_of):
            raise TreeInvariantError("slot accounting leak")
        roots = [n for n, p in self._parent.items() if p is None]
        if len(roots) != 1 or roots[0] != self._root:
            raise TreeInvariantError(f"expected exactly one root, found {roots}")
        # Acyclicity + depth correctness via BFS from the root.
        seen = {self._root}
        frontier = [self._root]
        if self._depth[self._root] != 0:
            raise TreeInvariantError("root depth must be 0")
        while frontier:
            node = frontier.pop()
            for child in self._children[node]:
                if child in seen:
                    raise TreeInvariantError(f"cycle detected at node {child}")
                if self._parent[child] != node:
                    raise TreeInvariantError(f"parent pointer mismatch at {child}")
                if self._depth[child] != self._depth[node] + 1:
                    raise TreeInvariantError(f"depth mismatch at {child}")
                seen.add(child)
                frontier.append(child)
        if seen != set(self._parent):
            raise TreeInvariantError("orphan nodes disconnected from the root")

        # Recompute contents bottom-up.
        order = self.subtree_nodes(self._root)
        for node in reversed(order):
            incoming: Dict[AttributeId, float] = dict(self._local[node])
            counts: Dict[AttributeId, int] = {a: 1 for a in self._local[node]}
            msgw = self._local_msgw[node]
            msgw_count = 1
            recv = 0.0
            for child in self._children[node]:
                for attr, weight in self._out[child].values.items():
                    incoming[attr] = incoming.get(attr, 0.0) + weight
                    counts[attr] = counts.get(attr, 0) + 1
                recv += self._send_a[self._slot[child]]
                child_msgw = self._out[child].msg_weight
                if child_msgw > msgw:
                    msgw, msgw_count = child_msgw, 1
                elif child_msgw == msgw:
                    msgw_count += 1
            for attr, weight in incoming.items():
                cached = self._in[node].get(attr, 0.0)
                if abs(cached - weight) > 1e-6:
                    raise TreeInvariantError(
                        f"incoming weight drift at {node}/{attr}: cached {cached}, actual {weight}"
                    )
            stale = set(self._in[node]) - set(incoming)
            if stale:
                raise TreeInvariantError(
                    f"stale incoming attributes cached at {node}: {sorted(stale)}"
                )
            if self._in_count[node] != counts:
                raise TreeInvariantError(
                    f"incoming refcount drift at {node}: cached {self._in_count[node]}, "
                    f"actual {counts}"
                )
            expected_out = {
                attr: self._funnel(attr, weight) for attr, weight in incoming.items()
            }
            expected_out = {a: w for a, w in expected_out.items() if w > 0}
            cached_out = self._out[node].values
            if set(expected_out) != {a for a, w in cached_out.items() if w > 1e-9}:
                raise TreeInvariantError(f"outgoing attr set drift at {node}")
            for attr, weight in expected_out.items():
                if abs(cached_out.get(attr, 0.0) - weight) > 1e-6:
                    raise TreeInvariantError(f"outgoing weight drift at {node}/{attr}")
            if abs(self._out[node].msg_weight - msgw) > 1e-6:
                raise TreeInvariantError(f"message weight drift at {node}")
            if self._msgw_count[node] != msgw_count:
                raise TreeInvariantError(
                    f"message weight contributor count drift at {node}: "
                    f"cached {self._msgw_count[node]}, actual {msgw_count}"
                )
            slot = self._slot[node]
            if abs(self._recv_a[slot] - recv) > 1e-6:
                raise TreeInvariantError(
                    f"recv drift at {node}: cached {self._recv_a[slot]}, actual {recv}"
                )
            expected_send = self._send_cost_of(self._out[node])
            if abs(self._send_a[slot] - expected_send) > 1e-6:
                raise TreeInvariantError(
                    f"send drift at {node}: cached {self._send_a[slot]}, "
                    f"actual {expected_send}"
                )
            expected_total = self._out[node].total()
            if abs(self._tot_a[slot] - expected_total) > 1e-6:
                raise TreeInvariantError(
                    f"outgoing total drift at {node}: cached {self._tot_a[slot]}, "
                    f"actual {expected_total}"
                )
            if self._depth_a[slot] != float(self._depth[node]):
                raise TreeInvariantError(
                    f"depth column drift at {node}: cached {self._depth_a[slot]}, "
                    f"actual {self._depth[node]}"
                )
            if self.used(node) > self._cap_a[slot] + 1e-6:
                raise TreeInvariantError(
                    f"capacity violated at {node}: used {self.used(node)}, "
                    f"capacity {self._cap_a[slot]}"
                )
        if self.central_used() > self.central_capacity + 1e-6:
            raise TreeInvariantError(
                f"central capacity violated: {self.central_used()} > {self.central_capacity}"
            )
        expected_pairs = sum(len(d) for d in self._local.values())
        if expected_pairs != self._pair_count:
            raise TreeInvariantError(
                f"pair count drift: cached {self._pair_count}, actual {expected_pairs}"
            )


def _diff_values(
    old: Dict[AttributeId, float], new: Dict[AttributeId, float]
) -> _ValueDeltas:
    """Per-attribute ``(old, new)`` pairs over the union of two value maps."""
    changed: _ValueDeltas = {}
    for attr, ow in old.items():
        nw = new.get(attr, 0.0)
        if nw != ow:
            changed[attr] = (ow, nw)
    for attr, nw in new.items():
        if attr not in old and nw > 0.0:
            changed[attr] = (0.0, nw)
    return changed
