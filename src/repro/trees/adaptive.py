"""REMO's adaptive tree construction (Section 3.2.1).

The adaptive algorithm iterates two procedures:

- the *construction* procedure runs the STAR scheme, attaching new
  nodes to the shallowest host with room -- resource-efficient but
  root-heavy;
- when the tree saturates, the *adjusting* procedure (see
  :mod:`repro.trees.adjust`) prunes the cheapest branch of a congested
  node and re-attaches it deeper, freeing per-message overhead
  (CHAIN-like height growth).

The interleaving seeks the middle ground Fig. 4(e) illustrates: trade
relay cost for overhead, and vice versa, whenever doing so lets more
nodes join the tree.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.attributes import NodeId
from repro.core.cost import CostModel
from repro.trees import model as _tree_model
from repro.trees.adjust import TreeAdjuster
from repro.trees.base import GreedyTreeBuilder, TreeBuildRequest
from repro.trees.model import MonitoringTree


class AdaptiveTreeBuilder(GreedyTreeBuilder):
    """Construction/adjusting iteration (the paper's ADAPTIVE scheme).

    Parameters
    ----------
    cost_model:
        The shared message cost model.
    adjuster:
        The adjusting procedure; defaults to the fully optimized one
        (branch-based + subtree-only).  Pass
        ``TreeAdjuster(branch_based=False, subtree_only=False)`` for the
        basic procedure (Fig. 10 baseline).
    max_adjust_rounds_per_node:
        How many construct/adjust iterations to attempt for a single
        node before declaring it excluded.  Each successful adjustment
        strictly reduces some congested node's branch count, so small
        values suffice; the cap guards against pathological cycling.
    """

    def __init__(
        self,
        cost_model: CostModel,
        adjuster: Optional[TreeAdjuster] = None,
        max_adjust_rounds_per_node: int = 4,
        construction: str = "blend",
    ) -> None:
        super().__init__(cost_model)
        self.adjuster = adjuster if adjuster is not None else TreeAdjuster()
        if max_adjust_rounds_per_node < 0:
            raise ValueError(
                f"max_adjust_rounds_per_node must be >= 0, got {max_adjust_rounds_per_node}"
            )
        self.max_adjust_rounds_per_node = max_adjust_rounds_per_node
        if construction not in ("blend", "star"):
            raise ValueError(
                f"construction must be 'blend' or 'star', got {construction!r}"
            )
        #: ``star`` is the paper's literal construction procedure
        #: (shallowest feasible host first); ``blend`` additionally
        #: weighs relay depth against parent headroom, which performs
        #: better at the forest level (see parent_preference).
        self.construction = construction
        # Cached per-payload sort constant for parent_preference.
        self._pp_payload = -1.0
        self._pp_per_child = 1.0

    def parent_preference(self, tree: MonitoringTree, parent: NodeId) -> tuple:
        # Trade relay cost against load spreading: attaching under a
        # parent at depth d adds ~2*a*payload*d relay cost along the
        # path (send + receive at every ancestor level), so prefer the
        # parent with the most capacity left *after* paying for that
        # depth.  With cheap relays (overhead-dominated regimes) this
        # behaves like MAX_AVB's load spreading; with expensive relays
        # it collapses to STAR's shallow-first rule -- the middle
        # ground the paper's construction/adjusting iteration seeks.
        if self.construction == "star":
            return (tree.depth(parent), -tree.available(parent), parent)
        # Trade relay cost against load spreading.  Attaching under a
        # parent at depth d adds ~2*a*payload*d relay cost along the
        # path, so discount the parent's headroom by that toll, then
        # quantize headroom into "how many more children like this one
        # could it host" (capped).  Parents with ample slack tie on the
        # slot count and the STAR rule (shallowest first) decides --
        # minimum relay cost; under scarcity the slot count dominates
        # and load spreads like MAX_AVB.  This is the construction-side
        # half of the middle ground Fig. 4(e) motivates.
        payload = getattr(self, "_inserting_payload", 1.0)
        # per_child depends only on the payload, which is fixed for the
        # duration of one insertion's candidate sort; cache it instead
        # of recomputing it for every candidate parent.
        if payload != self._pp_payload:
            self._pp_payload = payload
            self._pp_per_child = self.cost.weighted_message_cost(1.0, 2.0 * payload)
        relay_toll = self.cost.value_cost(2.0 * payload * tree.depth(parent))
        slots = min(64.0, max(0.0, (tree.available(parent) - relay_toll) / self._pp_per_child))
        return (-int(slots), tree.depth(parent), -tree.available(parent), parent)

    def _ordered_parents(self, tree: MonitoringTree, entry_cost: float = 0.0) -> List[NodeId]:
        # Blend ranking over the bulk headroom kernel: one gather of
        # (node, depth, available) triples replaces per-candidate
        # available()/depth() calls inside the sort key.  The key tuple
        # is exactly parent_preference's, so the order is unchanged.
        if self.construction == "star":
            return super()._ordered_parents(tree, entry_cost)
        payload = getattr(self, "_inserting_payload", 1.0)
        if payload != self._pp_payload:
            self._pp_payload = payload
            self._pp_per_child = self.cost.weighted_message_cost(1.0, 2.0 * payload)
        per_child = self._pp_per_child
        value_cost = self.cost.value_cost
        arrays = tree.viable_parent_arrays(entry_cost)
        if arrays is not None:
            # Whole-key vectorization: CostModel methods broadcast over
            # ndarrays with the same elementwise IEEE operations as the
            # scalar path, int() truncation equals int64 astype for the
            # non-negative slot counts, and depths round-trip float64
            # exactly -- so the sorted order matches the scalar path
            # bit for bit.
            np = _tree_model._np
            nodes, depths, avail = arrays
            relay_toll = value_cost(2.0 * payload * depths)
            slots = np.minimum(64.0, np.maximum(0.0, (avail - relay_toll) / per_child))
            keyed = list(
                zip(
                    (-slots.astype(np.int64)).tolist(),
                    depths.astype(np.int64).tolist(),
                    (-avail).tolist(),
                    nodes,
                )
            )
        else:
            keyed = []
            for parent, depth, avail in tree.viable_parent_stats(entry_cost):
                relay_toll = value_cost(2.0 * payload * depth)
                slots = min(64.0, max(0.0, (avail - relay_toll) / per_child))
                keyed.append((-int(slots), depth, -avail, parent))
        keyed.sort()
        if self.max_parent_candidates is not None:
            keyed = keyed[: self.max_parent_candidates]
        return [entry[3] for entry in keyed]

    def _max_retry_rounds(self) -> int:
        return self.max_adjust_rounds_per_node

    def on_saturated(
        self,
        tree: MonitoringTree,
        request: TreeBuildRequest,
        node: NodeId,
        failed_parents: List[NodeId],
    ) -> bool:
        demand = request.demands[node]
        failed_cost = self.cost.weighted_message_cost(
            request.msg_weight(node), sum(w for w in demand.values() if w > 0)
        )
        return self.adjuster.relieve(tree, failed_parents, failed_cost)
