"""The outcome of one live run.

:class:`RuntimeReport` is the runtime's analogue of the simulator's
:class:`~repro.simulation.collection.CollectionStats`: per-period
quality samples plus the metrics-hub snapshot and the failure
detector's event log.  ``as_dict`` is the stable machine-readable
shape behind ``repro run --json``; ``render`` produces the aligned
tables (via :mod:`repro.analysis`) for humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro.analysis.report import format_table
from repro.obs import names
from repro.runtime.metrics import RuntimeMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (collector imports us)
    from repro.runtime.collector import FailureEvent


@dataclass
class RuntimePeriodSample:
    """Quality metrics scored at one period close.

    Field meanings match the simulator's ``PeriodSample`` exactly:
    ``received_fraction`` is cumulative collected-pair coverage,
    ``fresh_fraction`` counts pairs sampled within the scored period.
    """

    period: int
    mean_error: float
    fresh_fraction: float
    received_fraction: float


@dataclass
class RuntimeReport:
    """Everything one :class:`~repro.runtime.engine.MonitoringRuntime`
    run produced."""

    requested_pairs: int
    n_periods: int
    samples: List[RuntimePeriodSample] = field(default_factory=lambda: [])
    failure_events: List["FailureEvent"] = field(default_factory=lambda: [])
    metrics: RuntimeMetrics = field(default_factory=RuntimeMetrics)
    wall_seconds: float = 0.0

    # -- aggregates ----------------------------------------------------
    @property
    def mean_coverage(self) -> float:
        """Run-wide mean collected-pair coverage (the parity metric)."""
        if not self.samples:
            return 0.0
        return sum(s.received_fraction for s in self.samples) / len(self.samples)

    @property
    def final_coverage(self) -> float:
        """Collected-pair coverage at the last period close."""
        return self.samples[-1].received_fraction if self.samples else 0.0

    @property
    def mean_fresh_coverage(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.fresh_fraction for s in self.samples) / len(self.samples)

    @property
    def mean_percentage_error(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.mean_error for s in self.samples) / len(self.samples)

    @property
    def messages_sent(self) -> int:
        return int(self.metrics.counter(names.MESSAGES_SENT))

    @property
    def messages_dropped(self) -> int:
        return int(
            self.metrics.counter(names.MESSAGES_DROPPED_CAPACITY)
            + self.metrics.counter(names.MESSAGES_DROPPED_FAILURE)
        )

    # -- serialization -------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Machine-readable snapshot (``repro run --json``)."""
        return {
            "requested_pairs": self.requested_pairs,
            "periods": self.n_periods,
            "wall_seconds": round(self.wall_seconds, 6),
            "coverage": {
                "mean": self.mean_coverage,
                "final": self.final_coverage,
                "fresh_mean": self.mean_fresh_coverage,
            },
            "mean_percentage_error": self.mean_percentage_error,
            "messages": {
                "sent": self.messages_sent,
                "delivered": int(self.metrics.counter(names.MESSAGES_DELIVERED)),
                "dropped_capacity": int(self.metrics.counter(names.MESSAGES_DROPPED_CAPACITY)),
                "dropped_failure": int(self.metrics.counter(names.MESSAGES_DROPPED_FAILURE)),
                "heartbeats": int(self.metrics.counter(names.HEARTBEATS_SENT)),
            },
            "values": {
                "trimmed": int(self.metrics.counter(names.VALUES_TRIMMED)),
                "deferred": int(self.metrics.counter(names.VALUES_DEFERRED)),
            },
            "cost_units_spent": self.metrics.counter(names.COST_UNITS_SPENT),
            "failure_events": [
                {"node": e.node, "period": e.period, "kind": e.kind}
                for e in self.failure_events
            ],
            "per_period": [
                {
                    "period": s.period,
                    "coverage": s.received_fraction,
                    "fresh": s.fresh_fraction,
                    "mean_error": s.mean_error,
                }
                for s in self.samples
            ],
            "metrics": self.metrics.as_dict(),
        }

    def render(self, title: str = "live run") -> str:
        """Aligned human-readable summary."""
        rows = [
            ["periods", self.n_periods],
            ["requested pairs", self.requested_pairs],
            ["mean coverage", round(self.mean_coverage, 4)],
            ["final coverage", round(self.final_coverage, 4)],
            ["mean freshness", round(self.mean_fresh_coverage, 4)],
            ["mean % error", round(self.mean_percentage_error, 4)],
            ["messages sent", self.messages_sent],
            ["messages delivered", int(self.metrics.counter(names.MESSAGES_DELIVERED))],
            ["dropped (capacity)", int(self.metrics.counter(names.MESSAGES_DROPPED_CAPACITY))],
            ["dropped (failure)", int(self.metrics.counter(names.MESSAGES_DROPPED_FAILURE))],
            ["values trimmed", int(self.metrics.counter(names.VALUES_TRIMMED))],
            ["values deferred", int(self.metrics.counter(names.VALUES_DEFERRED))],
            ["heartbeats", int(self.metrics.counter(names.HEARTBEATS_SENT))],
            ["failure events", len(self.failure_events)],
            ["wall seconds", round(self.wall_seconds, 3)],
        ]
        blocks = [format_table(title, ["metric", "value"], rows)]
        if self.failure_events:
            blocks.append(
                format_table(
                    "failure detector events",
                    ["node", "period", "kind"],
                    [[e.node, e.period, e.kind] for e in self.failure_events],
                )
            )
        blocks.append(self.metrics.render())
        return "\n\n".join(blocks)
