"""Live asyncio execution of a monitoring plan.

Where :mod:`repro.simulation` *scores* a
:class:`~repro.core.plan.MonitoringPlan` in a lock-step discrete-event
simulator, this package *runs* one: every cluster node becomes a
concurrent :class:`~repro.runtime.agent.NodeAgent` task, the central
collector becomes a :class:`~repro.runtime.collector.CollectorAgent`,
and update messages travel over a pluggable
:class:`~repro.runtime.transport.Transport` (an in-process asyncio
queue transport today; a socket transport is a planned follow-up).

The behaviours the analytical evaluation cannot show live here:
per-period capacity budgets with explicit drop / trim / defer
(backpressure) policies, heartbeat-based failure detection at the
collector, per-pair staleness, and real message-passing concurrency.
A :class:`~repro.runtime.metrics.RuntimeMetrics` hub records counters
and histograms and renders through :mod:`repro.analysis`.
"""

from repro.runtime.agent import NodeAgent, TreeRole
from repro.runtime.collector import CollectorAgent, FailureEvent
from repro.runtime.config import AgentOutage, DropPolicy, RuntimeConfig
from repro.runtime.engine import MonitoringRuntime, build_roles, merge_period_samples
from repro.runtime.messages import (
    COLLECTOR_ADDRESS,
    MAX_COLLECTOR_SHARDS,
    Envelope,
    HeartbeatEnvelope,
    StopEnvelope,
    TickEnvelope,
    UpdateEnvelope,
    collector_shard_address,
)
from repro.runtime.metrics import Histogram, RuntimeMetrics
from repro.runtime.report import RuntimePeriodSample, RuntimeReport
from repro.runtime.transport import (
    InProcessTransport,
    MailboxTransport,
    Transport,
    UnknownAddressError,
)

__all__ = [
    "AgentOutage",
    "COLLECTOR_ADDRESS",
    "MAX_COLLECTOR_SHARDS",
    "CollectorAgent",
    "build_roles",
    "collector_shard_address",
    "merge_period_samples",
    "DropPolicy",
    "Envelope",
    "FailureEvent",
    "HeartbeatEnvelope",
    "Histogram",
    "InProcessTransport",
    "MailboxTransport",
    "MonitoringRuntime",
    "NodeAgent",
    "RuntimeConfig",
    "RuntimeMetrics",
    "RuntimePeriodSample",
    "RuntimeReport",
    "StopEnvelope",
    "TickEnvelope",
    "Transport",
    "TreeRole",
    "UnknownAddressError",
    "UpdateEnvelope",
]
