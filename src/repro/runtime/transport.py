"""The transport abstraction and its in-process implementation.

Agents never talk to each other directly; they address peers by
:class:`~repro.core.attributes.NodeId` (the collector is ``-1``)
through a :class:`Transport`.  This is the seam the socket transport
(:class:`repro.net.TcpTransport`) plugs into: :class:`MailboxTransport`
owns the per-address inbox queues both implementations share, and
:class:`InProcessTransport` completes it with loopback delivery -- the
agents are identical either way.

Error contract (uniform across implementations):

- :meth:`Transport.send` to an address the transport cannot resolve
  returns ``False`` (the runtime's analogue of connection refused);
- :meth:`Transport.recv` on an address that was never
  :meth:`Transport.register`-ed raises :class:`UnknownAddressError` --
  a typed error, because receiving on a foreign inbox is always a
  wiring bug, never a runtime condition.
"""

from __future__ import annotations

import abc
import asyncio
from typing import Dict, List, Optional

from repro.core.attributes import NodeId
from repro.obs import names
from repro.runtime.messages import Envelope
from repro.runtime.metrics import RuntimeMetrics


class UnknownAddressError(KeyError):
    """``recv`` (or ``pending``) was asked about an unregistered inbox."""

    def __init__(self, address: NodeId) -> None:
        super().__init__(address)
        self.address = address

    def __str__(self) -> str:
        return f"no inbox registered for address {self.address}"


class Transport(abc.ABC):
    """Point-to-point, ordered, at-most-once envelope delivery."""

    @abc.abstractmethod
    def register(self, address: NodeId) -> None:
        """Create an inbox for ``address`` (idempotent)."""

    @abc.abstractmethod
    def addresses(self) -> List[NodeId]:
        """All registered addresses."""

    @abc.abstractmethod
    async def send(self, to: NodeId, envelope: Envelope) -> bool:
        """Deliver ``envelope`` to ``to``'s inbox.

        Returns ``False`` if the address is unknown (the runtime's
        analogue of a connection refused -- the caller decides whether
        that is an error).
        """

    @abc.abstractmethod
    async def recv(self, address: NodeId, timeout: Optional[float] = None) -> Optional[Envelope]:
        """Next envelope for ``address``, or ``None`` on timeout.

        Raises :class:`UnknownAddressError` when ``address`` was never
        registered on this transport.
        """

    @abc.abstractmethod
    def pending(self, address: NodeId) -> int:
        """Number of queued envelopes at ``address``."""

    def idle(self) -> bool:
        """Whether no envelope is queued or in flight anywhere.

        The engine's settle loop polls this; implementations with
        off-inbox buffering (socket send queues, in-kernel frames)
        override it to account for envelopes the inboxes cannot see.
        """
        return all(self.pending(address) == 0 for address in self.addresses())

    def bind_metrics(self, metrics: RuntimeMetrics) -> None:
        """Attach the run's metrics hub (no-op once bound).

        Transports report ``transport_envelopes_sent`` /
        ``transport_envelopes_delivered`` (and, for socket transports,
        the wire-level ``net_*`` series) through this hub so the
        in-process and TCP paths feed one registry.
        """

    def close(self) -> None:
        """Release transport resources (no-op by default)."""

    async def aclose(self) -> None:
        """Async teardown; defaults to the sync :meth:`close`.

        Socket transports override this to flush send queues and await
        stream shutdown, which cannot be done from sync code.
        """
        self.close()


class MailboxTransport(Transport):
    """Shared inbox machinery: one :class:`asyncio.Queue` per address.

    Subclasses decide how an envelope reaches a queue --
    :class:`InProcessTransport` enqueues directly on send,
    :class:`repro.net.TcpTransport` enqueues from its frame-reader
    loop -- while registration, receive, and the envelope counters are
    identical on every path.
    """

    #: Metric label distinguishing implementations in the shared series.
    transport_kind = "mailbox"

    def __init__(self, metrics: Optional[RuntimeMetrics] = None) -> None:
        self._queues: Dict[NodeId, "asyncio.Queue[Envelope]"] = {}
        self._metrics: Optional[RuntimeMetrics] = metrics

    # -- metrics -------------------------------------------------------
    def bind_metrics(self, metrics: RuntimeMetrics) -> None:
        if self._metrics is None:
            self._metrics = metrics

    @property
    def metrics(self) -> RuntimeMetrics:
        """The bound metrics hub (a private one until bound)."""
        if self._metrics is None:
            self._metrics = RuntimeMetrics()
        return self._metrics

    @property
    def envelopes_sent(self) -> int:
        """Total envelopes accepted for delivery (all series labels)."""
        return int(self.metrics.counter(names.TRANSPORT_ENVELOPES_SENT))

    @property
    def envelopes_delivered(self) -> int:
        """Total envelopes handed to a receiver via :meth:`recv`."""
        return int(self.metrics.counter(names.TRANSPORT_ENVELOPES_DELIVERED))

    def _count_sent(self) -> None:
        self.metrics.incr(names.TRANSPORT_ENVELOPES_SENT, transport=self.transport_kind)

    # -- inboxes -------------------------------------------------------
    def register(self, address: NodeId) -> None:
        if address not in self._queues:
            self._queues[address] = asyncio.Queue()

    def addresses(self) -> List[NodeId]:
        return sorted(self._queues)

    def deliver_local(self, address: NodeId, envelope: Envelope) -> bool:
        """Enqueue ``envelope`` on a local inbox (no send accounting)."""
        queue = self._queues.get(address)
        if queue is None:
            return False
        queue.put_nowait(envelope)
        return True

    async def recv(self, address: NodeId, timeout: Optional[float] = None) -> Optional[Envelope]:
        queue = self._queues.get(address)
        if queue is None:
            raise UnknownAddressError(address)
        if timeout is None:
            envelope = await queue.get()
        else:
            # Fast path: a queued envelope is handed over without
            # suspending the caller.  For the empty-queue wait, use
            # asyncio.timeout rather than wait_for: wait_for wraps the
            # get in an extra task, adding a scheduler hop to every
            # wakeup, which is enough latency to miss child-wait
            # deadlines in the hot inbox loop.
            try:
                envelope = queue.get_nowait()
            except asyncio.QueueEmpty:
                try:
                    async with asyncio.timeout(timeout):
                        envelope = await queue.get()
                except TimeoutError:
                    return None
        self.metrics.incr(
            names.TRANSPORT_ENVELOPES_DELIVERED, transport=self.transport_kind
        )
        return envelope

    def pending(self, address: NodeId) -> int:
        queue = self._queues.get(address)
        return 0 if queue is None else queue.qsize()


class InProcessTransport(MailboxTransport):
    """Loopback transport: every address lives in this process.

    Delivery is immediate (enqueue on send); ordering per
    sender-receiver pair follows send order, which is what a TCP
    stream would give.  ``transport_envelopes_sent`` /
    ``transport_envelopes_delivered`` are recorded into the bound
    metrics hub -- the same series the TCP transport reports, so the
    report's transport health row is engine-agnostic.
    """

    transport_kind = "inproc"

    async def send(self, to: NodeId, envelope: Envelope) -> bool:
        if not self.deliver_local(to, envelope):
            return False
        self._count_sent()
        return True
