"""The transport abstraction and its in-process implementation.

Agents never talk to each other directly; they address peers by
:class:`~repro.core.attributes.NodeId` (the collector is ``-1``)
through a :class:`Transport`.  This is the seam a socket transport
plugs into later: :class:`InProcessTransport` backs each address with
an :class:`asyncio.Queue`, a TCP transport would back it with a
connection -- the agents are identical either way.
"""

from __future__ import annotations

import abc
import asyncio
from typing import Dict, List, Optional

from repro.core.attributes import NodeId
from repro.runtime.messages import Envelope


class Transport(abc.ABC):
    """Point-to-point, ordered, at-most-once envelope delivery."""

    @abc.abstractmethod
    def register(self, address: NodeId) -> None:
        """Create an inbox for ``address`` (idempotent)."""

    @abc.abstractmethod
    def addresses(self) -> List[NodeId]:
        """All registered addresses."""

    @abc.abstractmethod
    async def send(self, to: NodeId, envelope: Envelope) -> bool:
        """Deliver ``envelope`` to ``to``'s inbox.

        Returns ``False`` if the address is unknown (the runtime's
        analogue of a connection refused -- the caller decides whether
        that is an error).
        """

    @abc.abstractmethod
    async def recv(self, address: NodeId, timeout: Optional[float] = None) -> Optional[Envelope]:
        """Next envelope for ``address``, or ``None`` on timeout."""

    @abc.abstractmethod
    def pending(self, address: NodeId) -> int:
        """Number of queued envelopes at ``address``."""

    def close(self) -> None:
        """Release transport resources (no-op by default)."""


class InProcessTransport(Transport):
    """Loopback transport: one :class:`asyncio.Queue` per address.

    Delivery is immediate (enqueue on send); ordering per
    sender-receiver pair follows send order, which is what a TCP
    stream would give.  ``envelopes_sent`` / ``envelopes_delivered``
    are raw transport counters -- the metrics hub reads them for its
    transport health row.
    """

    def __init__(self) -> None:
        self._queues: Dict[NodeId, "asyncio.Queue[Envelope]"] = {}
        self.envelopes_sent = 0
        self.envelopes_delivered = 0

    def register(self, address: NodeId) -> None:
        if address not in self._queues:
            self._queues[address] = asyncio.Queue()

    def addresses(self) -> List[NodeId]:
        return sorted(self._queues)

    async def send(self, to: NodeId, envelope: Envelope) -> bool:
        queue = self._queues.get(to)
        if queue is None:
            return False
        self.envelopes_sent += 1
        queue.put_nowait(envelope)
        return True

    async def recv(self, address: NodeId, timeout: Optional[float] = None) -> Optional[Envelope]:
        queue = self._queues[address]
        if timeout is None:
            envelope = await queue.get()
        else:
            # Fast path: a queued envelope is handed over without
            # suspending the caller.  For the empty-queue wait, use
            # asyncio.timeout rather than wait_for: wait_for wraps the
            # get in an extra task, adding a scheduler hop to every
            # wakeup, which is enough latency to miss child-wait
            # deadlines in the hot inbox loop.
            try:
                envelope = queue.get_nowait()
            except asyncio.QueueEmpty:
                try:
                    async with asyncio.timeout(timeout):
                        envelope = await queue.get()
                except TimeoutError:
                    return None
        self.envelopes_delivered += 1
        return envelope

    def pending(self, address: NodeId) -> int:
        queue = self._queues.get(address)
        return 0 if queue is None else queue.qsize()
