"""The runtime engine: plan in, concurrent agents out.

:class:`MonitoringRuntime` instantiates a
:class:`~repro.core.plan.MonitoringPlan` as live asyncio tasks -- one
:class:`~repro.runtime.agent.NodeAgent` per participating node plus
one :class:`~repro.runtime.collector.CollectorAgent` -- wired over a
:class:`~repro.runtime.transport.Transport`, then paces collection
periods in wall-clock time:

1. advance the ground-truth metric registry (one unit of time);
2. broadcast a :class:`~repro.runtime.messages.TickEnvelope`;
3. sleep the period window while agents sample, batch, and relay;
4. settle in-flight messages, then have the collector score the
   period and run its failure detector.

The same plan and :class:`~repro.cluster.metrics.MetricRegistry` seed
produce matching collected-pair coverage in
:class:`~repro.simulation.engine.MonitoringSimulation` -- the parity
test in ``tests/test_runtime_parity.py`` holds the two engines to
within five percentage points of each other.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.metrics import MetricRegistry
from repro.cluster.node import Cluster
from repro.core.attributes import NodeAttributePair, NodeId
from repro.core.partition import AttributeSet
from repro.core.plan import MonitoringPlan, ShardedPlan
from repro.obs import names, trace
from repro.runtime.agent import NodeAgent, TreeRole
from repro.runtime.collector import CollectorAgent, FailureEvent
from repro.runtime.config import RuntimeConfig
from repro.runtime.messages import (
    COLLECTOR_ADDRESS,
    Envelope,
    StopEnvelope,
    TickEnvelope,
    collector_shard_address,
)
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.report import RuntimePeriodSample, RuntimeReport
from repro.runtime.transport import InProcessTransport, Transport


def build_roles(
    plan: MonitoringPlan,
    collector_of: Optional[Mapping[AttributeSet, NodeId]] = None,
) -> Dict[NodeId, List[TreeRole]]:
    """One :class:`TreeRole` per (member node, tree) of the plan.

    Trees get stable short ids (``t0``, ``t1``, ... in sorted
    attribute-set order) so metric labels and trace spans can name a
    tree without serializing its attribute set.  Module-level because
    ``repro deploy`` workers need the identical role table without
    constructing an engine: the derivation is deterministic, so every
    process that holds the same plan agrees on every role.

    ``collector_of`` maps each partition set to the transport address
    of the collector shard its tree reports to (defaulting every tree
    to the single central :data:`COLLECTOR_ADDRESS`).
    """
    roles: Dict[NodeId, List[TreeRole]] = {}
    ordered_trees = sorted(plan.trees.items(), key=lambda kv: sorted(kv[0]))
    for index, (attr_set, result) in enumerate(ordered_trees):
        tree = result.tree
        height = tree.height()
        tree_id = f"t{index}"
        collector = (
            collector_of.get(attr_set, COLLECTOR_ADDRESS)
            if collector_of is not None
            else COLLECTOR_ADDRESS
        )
        for node in tree.nodes:
            local_pairs = tuple(
                NodeAttributePair(node, attr) for attr in sorted(tree.local_demand(node))
            )
            roles.setdefault(node, []).append(
                TreeRole(
                    attr_set=attr_set,
                    parent=tree.parent(node),
                    children=tuple(sorted(tree.children(node))),
                    local_pairs=local_pairs,
                    depth=tree.depth(node),
                    height=height,
                    tree_id=tree_id,
                    collector=collector,
                )
            )
    return roles


def collector_addresses(sharded: ShardedPlan) -> Dict[AttributeSet, NodeId]:
    """Partition-set -> collector-shard transport address for a sharded plan."""
    return {
        attr_set: collector_shard_address(shard)
        for attr_set, shard in sharded.assignment.items()
    }


def merge_period_samples(
    period: int, weighted: Sequence[Tuple[int, RuntimePeriodSample]]
) -> RuntimePeriodSample:
    """Fold per-shard period scores into one cluster-wide sample.

    Each shard scores only its own requested pairs, so the merged
    fractions are the pair-count-weighted averages -- identical to what
    a single collector scoring the full pair set would report.
    """
    total = sum(weight for weight, _ in weighted)
    if total == 0:
        return RuntimePeriodSample(period, 0.0, 1.0, 1.0)
    return RuntimePeriodSample(
        period=period,
        mean_error=sum(w * s.mean_error for w, s in weighted) / total,
        fresh_fraction=sum(w * s.fresh_fraction for w, s in weighted) / total,
        received_fraction=sum(w * s.received_fraction for w, s in weighted) / total,
    )


class MonitoringRuntime:
    """Live execution of one monitoring plan."""

    def __init__(
        self,
        plan: MonitoringPlan,
        cluster: Cluster,
        registry: Optional[MetricRegistry] = None,
        config: Optional[RuntimeConfig] = None,
        transport: Optional[Transport] = None,
        metrics: Optional[RuntimeMetrics] = None,
        sharded: Optional[ShardedPlan] = None,
    ) -> None:
        if sharded is not None and sharded.plan is not plan:
            raise ValueError("sharded.plan must be the runtime's plan")
        self.plan = plan
        self.sharded = sharded
        self.cluster = cluster
        self.config = config if config is not None else RuntimeConfig()
        self.transport = transport if transport is not None else InProcessTransport()
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        # One registry for agent and transport counters: the transport
        # health row (envelopes, frames, reconnects) lands in the same
        # report whichever Transport implementation is plugged in.
        self.transport.bind_metrics(self.metrics)
        self.registry = (
            registry
            if registry is not None
            else MetricRegistry(plan.pairs, seed=self.config.seed)
        )
        for pair in plan.pairs:
            self.registry.ensure(pair)

        collector_of = collector_addresses(sharded) if sharded is not None else None
        roles = build_roles(plan, collector_of)
        self.agents: Dict[NodeId, NodeAgent] = {
            node: NodeAgent(
                node_id=node,
                capacity=cluster.capacity(node),
                roles=node_roles,
                cost=plan.cost,
                registry=self.registry,
                transport=self.transport,
                metrics=self.metrics,
                config=self.config,
            )
            for node, node_roles in sorted(roles.items())
        }
        #: One collector agent per shard, keyed by transport address
        #: (a single agent at COLLECTOR_ADDRESS when unsharded).
        self.collectors: Dict[NodeId, CollectorAgent] = {}
        #: Pair-count weight per shard address, for score merging.
        self._shard_weights: Dict[NodeId, int] = {}
        if sharded is None:
            shard_specs = [(COLLECTOR_ADDRESS, sorted(plan.pairs), list(self.agents))]
        else:
            shard_specs = [
                (
                    collector_shard_address(shard),
                    sorted(sharded.pairs_for(shard)),
                    [n for n in sharded.nodes_for(shard) if n in self.agents],
                )
                for shard in range(sharded.shards)
            ]
        for address, requested, expected in shard_specs:
            self.collectors[address] = CollectorAgent(
                requested_pairs=requested,
                expected_nodes=expected,
                central_capacity=cluster.central_capacity,
                cost=plan.cost,
                registry=self.registry,
                transport=self.transport,
                metrics=self.metrics,
                config=self.config,
                address=address,
            )
            self._shard_weights[address] = len(requested)
        #: The shard-0 agent; the single collector when unsharded.
        self.collector = self.collectors[COLLECTOR_ADDRESS]
        #: Cluster-wide per-period scores (merged across shards).
        self.samples: List[RuntimePeriodSample] = []

    # ------------------------------------------------------------------
    def run(self, n_periods: int) -> RuntimeReport:
        """Blocking wrapper around :meth:`run_async`."""
        return asyncio.run(self.run_async(n_periods))

    async def run_async(self, n_periods: int) -> RuntimeReport:
        """Run ``n_periods`` collection periods and return the report."""
        if n_periods <= 0:
            raise ValueError(f"n_periods must be > 0, got {n_periods}")
        started = time.monotonic()
        for address in self.collectors:
            self.transport.register(address)
        for node in self.agents:
            self.transport.register(node)
        tasks = [asyncio.ensure_future(agent.run()) for agent in self.agents.values()]
        tasks.extend(
            asyncio.ensure_future(collector.run())
            for collector in self.collectors.values()
        )
        try:
            for period in range(n_periods):
                # One monitoring period is one trace: mint a fresh
                # 128-bit trace id, root it at the period span, and
                # stamp the context on the tick so every agent's wave
                # joins the same trace (this is the in-process twin of
                # the deploy collector's cross-process clock).
                period_ctx = (
                    trace.new_root_context()
                    if trace.active_tracer() is not None
                    else None
                )
                with trace.attach(period_ctx):
                    with trace.span(
                        names.SPAN_RUNTIME_PERIOD, lane=names.LANE_ENGINE, period=period
                    ) as period_span:
                        self.registry.advance_all()
                        tick = TickEnvelope(
                            period=period, trace_ctx=period_span.context()
                        )
                        await self._broadcast(tick)
                        await asyncio.sleep(self.config.period_seconds)
                        with trace.span(names.SPAN_RUNTIME_SETTLE, lane=names.LANE_ENGINE, period=period):
                            await self._settle()
                        self._close_period(period)
            await self._broadcast(StopEnvelope())
            await asyncio.wait(tasks, timeout=5.0)
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await self.transport.aclose()
        report = RuntimeReport(
            requested_pairs=len(self.plan.pairs),
            n_periods=n_periods,
            samples=list(self.samples),
            failure_events=self._merged_failure_events(),
            metrics=self.metrics,
            wall_seconds=time.monotonic() - started,
        )
        return report

    # ------------------------------------------------------------------
    def _close_period(self, period: int) -> RuntimePeriodSample:
        """Score the period on every shard and record the merged sample."""
        weighted = [
            (self._shard_weights[address], collector.close_period(period))
            for address, collector in self.collectors.items()
        ]
        if len(weighted) == 1:
            merged = weighted[0][1]
        else:
            merged = merge_period_samples(period, weighted)
        self.samples.append(merged)
        return merged

    def _merged_failure_events(self) -> List[FailureEvent]:
        """Failure events across shards, de-duplicated.

        Every shard runs its own detector over the nodes in its trees,
        so a node in several shards' trees is flagged once per shard --
        collapse identical transitions, ordered by (period, node).
        """
        seen = set()
        events: List[FailureEvent] = []
        for collector in self.collectors.values():
            for event in collector.failure_events:
                key = (event.node, event.period, event.kind)
                if key not in seen:
                    seen.add(key)
                    events.append(event)
        events.sort(key=lambda e: (e.period, e.node, e.kind))
        return events

    # ------------------------------------------------------------------
    async def _broadcast(self, envelope: "Envelope") -> None:
        for node in self.agents:
            await self.transport.send(node, envelope)
        for address in self.collectors:
            await self.transport.send(address, envelope)

    async def _settle(self) -> None:
        """Let in-flight work finish before the period is scored.

        Yields to the event loop until every inbox is drained and no
        agent has an outstanding send task, bounded by one extra period
        of wall-clock grace.  This makes scoring independent of
        machine speed: on a loaded box the sleep may end while the
        bottom-up wave is still relaying, and settling here is what
        keeps the parity with the lock-step simulator tight.
        """
        deadline = time.monotonic() + self.config.period_seconds
        while time.monotonic() < deadline:
            busy = any(agent.busy() for agent in self.agents.values())
            if not busy and self.transport.idle():
                return
            await asyncio.sleep(0)
