"""The runtime engine: plan in, concurrent agents out.

:class:`MonitoringRuntime` instantiates a
:class:`~repro.core.plan.MonitoringPlan` as live asyncio tasks -- one
:class:`~repro.runtime.agent.NodeAgent` per participating node plus
one :class:`~repro.runtime.collector.CollectorAgent` -- wired over a
:class:`~repro.runtime.transport.Transport`, then paces collection
periods in wall-clock time:

1. advance the ground-truth metric registry (one unit of time);
2. broadcast a :class:`~repro.runtime.messages.TickEnvelope`;
3. sleep the period window while agents sample, batch, and relay;
4. settle in-flight messages, then have the collector score the
   period and run its failure detector.

The same plan and :class:`~repro.cluster.metrics.MetricRegistry` seed
produce matching collected-pair coverage in
:class:`~repro.simulation.engine.MonitoringSimulation` -- the parity
test in ``tests/test_runtime_parity.py`` holds the two engines to
within five percentage points of each other.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from repro.cluster.metrics import MetricRegistry
from repro.cluster.node import Cluster
from repro.core.attributes import NodeAttributePair, NodeId
from repro.core.plan import MonitoringPlan
from repro.obs import names, trace
from repro.runtime.agent import NodeAgent, TreeRole
from repro.runtime.collector import CollectorAgent
from repro.runtime.config import RuntimeConfig
from repro.runtime.messages import (
    COLLECTOR_ADDRESS,
    Envelope,
    StopEnvelope,
    TickEnvelope,
)
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.report import RuntimeReport
from repro.runtime.transport import InProcessTransport, Transport


def build_roles(plan: MonitoringPlan) -> Dict[NodeId, List[TreeRole]]:
    """One :class:`TreeRole` per (member node, tree) of the plan.

    Trees get stable short ids (``t0``, ``t1``, ... in sorted
    attribute-set order) so metric labels and trace spans can name a
    tree without serializing its attribute set.  Module-level because
    ``repro deploy`` workers need the identical role table without
    constructing an engine: the derivation is deterministic, so every
    process that holds the same plan agrees on every role.
    """
    roles: Dict[NodeId, List[TreeRole]] = {}
    ordered_trees = sorted(plan.trees.items(), key=lambda kv: sorted(kv[0]))
    for index, (attr_set, result) in enumerate(ordered_trees):
        tree = result.tree
        height = tree.height()
        tree_id = f"t{index}"
        for node in tree.nodes:
            local_pairs = tuple(
                NodeAttributePair(node, attr) for attr in sorted(tree.local_demand(node))
            )
            roles.setdefault(node, []).append(
                TreeRole(
                    attr_set=attr_set,
                    parent=tree.parent(node),
                    children=tuple(sorted(tree.children(node))),
                    local_pairs=local_pairs,
                    depth=tree.depth(node),
                    height=height,
                    tree_id=tree_id,
                )
            )
    return roles


class MonitoringRuntime:
    """Live execution of one monitoring plan."""

    def __init__(
        self,
        plan: MonitoringPlan,
        cluster: Cluster,
        registry: Optional[MetricRegistry] = None,
        config: Optional[RuntimeConfig] = None,
        transport: Optional[Transport] = None,
        metrics: Optional[RuntimeMetrics] = None,
    ) -> None:
        self.plan = plan
        self.cluster = cluster
        self.config = config if config is not None else RuntimeConfig()
        self.transport = transport if transport is not None else InProcessTransport()
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        # One registry for agent and transport counters: the transport
        # health row (envelopes, frames, reconnects) lands in the same
        # report whichever Transport implementation is plugged in.
        self.transport.bind_metrics(self.metrics)
        self.registry = (
            registry
            if registry is not None
            else MetricRegistry(plan.pairs, seed=self.config.seed)
        )
        for pair in plan.pairs:
            self.registry.ensure(pair)

        roles = build_roles(plan)
        self.agents: Dict[NodeId, NodeAgent] = {
            node: NodeAgent(
                node_id=node,
                capacity=cluster.capacity(node),
                roles=node_roles,
                cost=plan.cost,
                registry=self.registry,
                transport=self.transport,
                metrics=self.metrics,
                config=self.config,
            )
            for node, node_roles in sorted(roles.items())
        }
        self.collector = CollectorAgent(
            requested_pairs=sorted(plan.pairs),
            expected_nodes=list(self.agents),
            central_capacity=cluster.central_capacity,
            cost=plan.cost,
            registry=self.registry,
            transport=self.transport,
            metrics=self.metrics,
            config=self.config,
        )

    # ------------------------------------------------------------------
    def run(self, n_periods: int) -> RuntimeReport:
        """Blocking wrapper around :meth:`run_async`."""
        return asyncio.run(self.run_async(n_periods))

    async def run_async(self, n_periods: int) -> RuntimeReport:
        """Run ``n_periods`` collection periods and return the report."""
        if n_periods <= 0:
            raise ValueError(f"n_periods must be > 0, got {n_periods}")
        started = time.monotonic()
        self.transport.register(COLLECTOR_ADDRESS)
        for node in self.agents:
            self.transport.register(node)
        tasks = [asyncio.ensure_future(agent.run()) for agent in self.agents.values()]
        tasks.append(asyncio.ensure_future(self.collector.run()))
        try:
            for period in range(n_periods):
                with trace.span(names.SPAN_RUNTIME_PERIOD, lane=names.LANE_ENGINE, period=period):
                    self.registry.advance_all()
                    tick = TickEnvelope(period=period)
                    await self._broadcast(tick)
                    await asyncio.sleep(self.config.period_seconds)
                    with trace.span(names.SPAN_RUNTIME_SETTLE, lane=names.LANE_ENGINE, period=period):
                        await self._settle()
                    self.collector.close_period(period)
            await self._broadcast(StopEnvelope())
            await asyncio.wait(tasks, timeout=5.0)
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await self.transport.aclose()
        report = RuntimeReport(
            requested_pairs=len(self.plan.pairs),
            n_periods=n_periods,
            samples=list(self.collector.samples),
            failure_events=list(self.collector.failure_events),
            metrics=self.metrics,
            wall_seconds=time.monotonic() - started,
        )
        return report

    # ------------------------------------------------------------------
    async def _broadcast(self, envelope: "Envelope") -> None:
        for node in self.agents:
            await self.transport.send(node, envelope)
        await self.transport.send(COLLECTOR_ADDRESS, envelope)

    async def _settle(self) -> None:
        """Let in-flight work finish before the period is scored.

        Yields to the event loop until every inbox is drained and no
        agent has an outstanding send task, bounded by one extra period
        of wall-clock grace.  This makes scoring independent of
        machine speed: on a loaded box the sleep may end while the
        bottom-up wave is still relaying, and settling here is what
        keeps the parity with the lock-step simulator tight.
        """
        deadline = time.monotonic() + self.config.period_seconds
        while time.monotonic() < deadline:
            busy = any(agent.busy() for agent in self.agents.values())
            if not busy and self.transport.idle():
                return
            await asyncio.sleep(0)
