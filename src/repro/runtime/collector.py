"""The collector agent: scoring, staleness, and failure detection.

The collector is the runtime's sink.  It keeps the last reading per
node-attribute pair (reusing the simulator's
:class:`~repro.simulation.collection.CollectorState`, so percentage
error is computed by the exact same rule in both engines), and adds
the two behaviours only a live system exhibits:

- **failure detection** -- each agent heartbeats every
  ``heartbeat_every`` periods; a node silent for ``failure_timeout``
  periods is flagged ``down``, and flagged ``recovered`` when its
  heartbeats resume;
- **staleness tracking** -- at every period close, the age (in
  periods) of each requested pair's newest reading is recorded into
  the ``staleness_periods`` histogram, alongside wall-clock collection
  latency per delivered batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.cluster.metrics import MetricRegistry
from repro.core.attributes import NodeAttributePair, NodeId
from repro.core.cost import CostModel
from repro.obs import names, trace
from repro.runtime.config import RuntimeConfig
from repro.runtime.messages import (
    COLLECTOR_ADDRESS,
    HeartbeatEnvelope,
    StopEnvelope,
    TickEnvelope,
    UpdateEnvelope,
)
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.report import RuntimePeriodSample
from repro.runtime.transport import Transport
from repro.simulation.collection import CollectorState

_EPS = 1e-9


@dataclass(frozen=True)
class FailureEvent:
    """One failure-detector transition, observed at period close."""

    node: NodeId
    period: int
    kind: str  # "down" | "recovered"


class CollectorAgent:
    """The central collector's runtime half."""

    def __init__(
        self,
        requested_pairs: Sequence[NodeAttributePair],
        expected_nodes: Sequence[NodeId],
        central_capacity: float,
        cost: CostModel,
        registry: MetricRegistry,
        transport: Transport,
        metrics: RuntimeMetrics,
        config: RuntimeConfig,
        address: NodeId = COLLECTOR_ADDRESS,
    ) -> None:
        self.address = address
        self.requested_pairs = tuple(requested_pairs)
        self.expected_nodes = tuple(sorted(expected_nodes))
        self.central_capacity = central_capacity
        self.cost = cost
        self.registry = registry
        self.transport = transport
        self.metrics = metrics
        self.config = config
        self.state = CollectorState()
        self.samples: List[RuntimePeriodSample] = []
        self.failure_events: List[FailureEvent] = []
        self._budget = central_capacity
        self._current_period = -1
        self._last_heartbeat: Dict[NodeId, int] = {}
        self._failed: Set[NodeId] = set()
        self._tick_monotonic: Dict[int, float] = {}

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Inbox loop for ticks, updates, and heartbeats."""
        while True:
            envelope = await self.transport.recv(
                self.address, timeout=self.config.recv_timeout_seconds
            )
            if envelope is None:
                continue  # recv timed out; re-check the inbox
            if isinstance(envelope, StopEnvelope):
                break
            if isinstance(envelope, TickEnvelope):
                self._on_tick(envelope)
            elif isinstance(envelope, UpdateEnvelope):
                self._on_update(envelope)
            elif isinstance(envelope, HeartbeatEnvelope):
                self._on_heartbeat(envelope)

    # ------------------------------------------------------------------
    def _on_tick(self, tick: TickEnvelope) -> None:
        self._current_period = tick.period
        self._budget = self.central_capacity
        self._tick_monotonic[tick.period] = tick.sent_monotonic

    def _on_update(self, envelope: UpdateEnvelope) -> None:
        if envelope.trace_ctx is not None and trace.active_tracer() is not None:
            # Linked to the sending agent's wave span -- in a deploy
            # this edge crosses the worker->collector TCP boundary.
            with trace.attach(envelope.trace_ctx):
                trace.event(
                    names.EVENT_COLLECTOR_RECV,
                    lane=names.LANE_COLLECTOR,
                    sender=envelope.sender,
                    period=envelope.period,
                )
        charge = envelope.cost(self.cost)
        if self.config.enforce_capacity:
            if self._budget < charge - _EPS:
                self.metrics.incr(names.MESSAGES_DROPPED_CAPACITY)
                return
            self._budget -= charge
        for pair, reading in envelope.payload.items():
            self.state.record(pair, reading)
        self.metrics.incr(names.MESSAGES_DELIVERED)
        self.metrics.incr(names.COST_UNITS_SPENT, charge)
        tick_at = self._tick_monotonic.get(envelope.period)
        if tick_at is not None:
            self.metrics.observe(names.COLLECTION_LATENCY_S, time.monotonic() - tick_at)

    def _on_heartbeat(self, envelope: HeartbeatEnvelope) -> None:
        self._last_heartbeat[envelope.sender] = envelope.period
        if envelope.sender in self._failed:
            self._failed.discard(envelope.sender)
            self.failure_events.append(
                FailureEvent(envelope.sender, max(self._current_period, 0), "recovered")
            )
            self.metrics.incr(names.FAILURE_RECOVERIES)

    # ------------------------------------------------------------------
    def close_period(self, period: int) -> RuntimePeriodSample:
        """Score period ``period`` and run the failure detector.

        Called by the engine after the period's wall-clock window (and
        message settle) so the collector's view is compared against the
        ground truth of the same period -- the simulator's deadline
        measurement, reproduced live.
        """
        with trace.span(
            names.SPAN_COLLECTOR_CLOSE_PERIOD, lane=names.LANE_COLLECTOR, period=period
        ) as score_span:
            pairs = self.requested_pairs
            n = len(pairs)
            if n == 0:
                sample = RuntimePeriodSample(period, 0.0, 1.0, 1.0)
            else:
                total_error = 0.0
                fresh = 0
                received = 0
                for pair in pairs:
                    truth = self.registry.value(pair)
                    total_error += self.state.percentage_error(pair, truth)
                    reading = self.state.reading(pair)
                    if reading is not None:
                        received += 1
                        self.metrics.observe(
                            names.STALENESS_PERIODS, float(period) - reading.sampled_at
                        )
                        if reading.sampled_at >= float(period) - _EPS:
                            fresh += 1
                sample = RuntimePeriodSample(
                    period=period,
                    mean_error=total_error / n,
                    fresh_fraction=fresh / n,
                    received_fraction=received / n,
                )
            self.samples.append(sample)
            self.metrics.observe(names.PERIOD_COVERAGE, sample.received_fraction)
            score_span.set(
                coverage=sample.received_fraction, mean_error=sample.mean_error
            )
            self._detect_failures(period)
        return sample

    def _detect_failures(self, period: int) -> None:
        for node in self.expected_nodes:
            if node in self._failed:
                continue
            last_seen = self._last_heartbeat.get(node, -1)
            if period - last_seen >= self.config.failure_timeout:
                self._failed.add(node)
                self.failure_events.append(FailureEvent(node, period, "down"))
                self.metrics.incr(names.FAILURE_DETECTIONS)

    @property
    def failed_nodes(self) -> Set[NodeId]:
        """Nodes currently flagged down by the failure detector."""
        return set(self._failed)
