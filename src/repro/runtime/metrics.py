"""The runtime's observability hub: counters and histograms.

Every agent and the collector record into one shared
:class:`RuntimeMetrics` instance; the engine snapshots it into the
final :class:`~repro.runtime.report.RuntimeReport`.  Rendering goes
through :mod:`repro.analysis` so live-run output lines up with the
benchmark tables, and :meth:`RuntimeMetrics.as_dict` is the
machine-readable face consumed by ``repro run --json`` and CI.
"""

from __future__ import annotations

import math
from typing import Dict, List, Union

from repro.analysis.report import format_table

Number = Union[int, float]


class Histogram:
    """A value-list histogram with on-demand summary statistics.

    The runtime's distributions are small (one observation per message
    or per period), so keeping raw values and computing quantiles
    exactly is both simplest and most accurate.  A streaming sketch is
    the upgrade path if runs ever grow to millions of observations.
    """

    def __init__(self) -> None:
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    def quantile(self, q: float) -> float:
        """Exact q-quantile by linear interpolation; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        position = q * (len(ordered) - 1)
        lower = math.floor(position)
        upper = math.ceil(position)
        if lower == upper:
            return ordered[lower]
        weight = position - lower
        return ordered[lower] * (1.0 - weight) + ordered[upper] * weight

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "max": self.max,
        }


class RuntimeMetrics:
    """Named counters plus named histograms.

    Counter and histogram names are created on first touch so agents
    do not need a registration step; :meth:`as_dict` and
    :meth:`render` emit them sorted for stable output.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------
    def incr(self, name: str, amount: Number = 1) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + float(amount)

    def observe(self, name: str, value: float) -> None:
        self._histograms.setdefault(name, Histogram()).observe(value)

    # -- reading -------------------------------------------------------
    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "histograms": {
                k: self._histograms[k].summary() for k in sorted(self._histograms)
            },
        }

    def render(self) -> str:
        """Aligned tables (via :mod:`repro.analysis`) for terminal output."""
        counter_rows = [
            [name, round(value, 3)] for name, value in sorted(self._counters.items())
        ]
        blocks = [format_table("runtime counters", ["counter", "value"], counter_rows)]
        histogram_rows = []
        for name in sorted(self._histograms):
            s = self._histograms[name].summary()
            histogram_rows.append(
                [name, int(s["count"]), s["mean"], s["p50"], s["p95"], s["max"]]
            )
        if histogram_rows:
            blocks.append(
                format_table(
                    "runtime histograms",
                    ["histogram", "count", "mean", "p50", "p95", "max"],
                    histogram_rows,
                )
            )
        return "\n\n".join(blocks)
