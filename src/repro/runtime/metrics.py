"""The runtime's observability hub, backed by :mod:`repro.obs`.

Every agent and the collector record into one shared
:class:`RuntimeMetrics` instance, which is a thin view over a
:class:`~repro.obs.metrics.MetricsRegistry` -- the engine snapshots it
into the final :class:`~repro.runtime.report.RuntimeReport`, and the
CLI's ``--metrics`` flag exports the very same registry as a
Prometheus snapshot, so the two can never disagree.

Agents record with labels (``node=...``, ``tree=...``); the report
reads label-collapsed totals so its machine-readable shape
(:meth:`RuntimeMetrics.as_dict`, consumed by ``repro run --json`` and
CI) stays compact and stable.  Rendering goes through
:mod:`repro.analysis` so live-run output lines up with the benchmark
tables.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.analysis.report import format_table
from repro.obs.metrics import Histogram, MetricsRegistry

Number = Union[int, float]

__all__ = ["Histogram", "Number", "RuntimeMetrics"]


class RuntimeMetrics:
    """Named counters plus named histograms over a metrics registry.

    Counter and histogram series are created on first touch so agents
    do not need a registration step; :meth:`as_dict` and
    :meth:`render` emit label-collapsed totals sorted for stable
    output.  Pass an explicit ``registry`` to share series with other
    recorders (the CLI does this so ``--metrics`` snapshots planner
    and runtime counters together); the default is a private registry
    per instance, keeping independent runs independent.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- recording -----------------------------------------------------
    def incr(self, name: str, amount: Number = 1, **labels: object) -> None:
        self.registry.incr(name, amount, **labels)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.registry.observe(name, value, **labels)

    # -- reading -------------------------------------------------------
    def counter(self, name: str) -> float:
        """Label-collapsed total for ``name`` (0.0 when never touched)."""
        return self.registry.counter_total(name)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self.registry.histogram(name, **labels)

    def counters(self) -> Dict[str, float]:
        return self.registry.counter_totals()

    def _histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        return {
            name: hist.summary() for name, hist in self.registry.histograms().items()
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": self.counters(),
            "histograms": self._histogram_summaries(),
        }

    def render(self) -> str:
        """Aligned tables (via :mod:`repro.analysis`) for terminal output."""
        counter_rows = [
            [name, round(value, 3)] for name, value in self.counters().items()
        ]
        blocks = [format_table("runtime counters", ["counter", "value"], counter_rows)]
        histogram_rows = []
        for name, s in sorted(self._histogram_summaries().items()):
            histogram_rows.append(
                [name, int(s["count"]), s["mean"], s["p50"], s["p95"], s["max"]]
            )
        if histogram_rows:
            blocks.append(
                format_table(
                    "runtime histograms",
                    ["histogram", "count", "mean", "p50", "p95", "max"],
                    histogram_rows,
                )
            )
        return "\n\n".join(blocks)
