"""Runtime configuration: pacing, policies, and scripted outages.

The runtime paces collection periods in *wall-clock seconds* (the
simulator's abstract unit time becomes real time here), but all quality
metrics are kept in *period units* so results are comparable across
machines of different speed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.attributes import NodeId


class DropPolicy(enum.Enum):
    """What an agent does when its per-period budget cannot carry the
    full payload it wants to send.

    - ``TRIM``: send as many values as the budget affords, discard the
      rest (mirrors the simulator's graceful-degradation behaviour, so
      it is the parity default);
    - ``DROP``: all-or-nothing -- if the whole payload does not fit,
      send nothing and discard it;
    - ``DEFER``: backpressure -- send what fits now and carry the
      remainder over to the next period's payload.
    """

    TRIM = "trim"
    DROP = "drop"
    DEFER = "defer"


@dataclass(frozen=True)
class AgentOutage:
    """Node ``node`` is dead during periods ``[start, end)``.

    A dead agent sends no updates and no heartbeats and drops anything
    it receives -- the collector's missed-heartbeat detector should
    flag it, and flag the recovery once heartbeats resume.
    """

    node: NodeId
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"outage start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"outage window must have end > start, got [{self.start}, {self.end})"
            )

    def covers(self, period: int) -> bool:
        return self.start <= period < self.end


@dataclass
class RuntimeConfig:
    """Tunable knobs of one live run."""

    #: Wall-clock seconds per collection period.
    period_seconds: float = 0.05
    #: How long (as a fraction of the period) an interior node waits
    #: for its children's batches before sending without them.  The
    #: bottom-up wave is event-driven -- a node sends the moment every
    #: child has reported -- so this deadline only binds when a child
    #: is dead, dropped, or late.
    child_wait_fraction: float = 0.5
    #: Enforce per-period node/collector capacity budgets.
    enforce_capacity: bool = True
    #: Behaviour when a payload exceeds the sender's remaining budget.
    drop_policy: DropPolicy = DropPolicy.TRIM
    #: Send a heartbeat every this many periods.
    heartbeat_every: int = 1
    #: Collector flags a node as failed after this many periods without
    #: a heartbeat.
    failure_timeout: int = 3
    #: Inbox-recv timeout for the agent/collector run loops.  A recv
    #: that returns None (timed out) just re-checks the loop; without
    #: this guard a dropped stop message would hang the coroutine
    #: forever once the transport is a real socket.
    recv_timeout_seconds: float = 1.0
    #: Seed for the ground-truth metric registry (when the engine
    #: constructs one itself).
    seed: Optional[int] = None
    #: Scripted node outages (crash/recovery scenarios).
    outages: List[AgentOutage] = field(default_factory=lambda: [])

    def __post_init__(self) -> None:
        if self.period_seconds <= 0:
            raise ValueError(f"period_seconds must be > 0, got {self.period_seconds}")
        if not 0 < self.child_wait_fraction <= 1:
            raise ValueError(
                f"child_wait_fraction must be in (0, 1], got {self.child_wait_fraction}"
            )
        if self.heartbeat_every < 1:
            raise ValueError(f"heartbeat_every must be >= 1, got {self.heartbeat_every}")
        if self.failure_timeout < 1:
            raise ValueError(f"failure_timeout must be >= 1, got {self.failure_timeout}")
        if self.recv_timeout_seconds <= 0:
            raise ValueError(
                f"recv_timeout_seconds must be > 0, got {self.recv_timeout_seconds}"
            )

    @property
    def child_wait_seconds(self) -> float:
        """Wall-clock child-wait deadline per period."""
        return self.child_wait_fraction * self.period_seconds

    def node_down(self, node: NodeId, period: int) -> bool:
        """Whether ``node`` is scripted dead during ``period``."""
        return any(o.node == node and o.covers(period) for o in self.outages)
