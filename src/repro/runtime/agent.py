"""The per-node monitoring agent.

One :class:`NodeAgent` runs per cluster node that participates in any
collection tree.  Each agent owns one inbox on the transport and plays
one :class:`TreeRole` per tree it belongs to: sample the local
node-attribute pairs, merge whatever child updates have arrived, and
forward one batched message per tree per period -- phased bottom-up
(deeper nodes send earlier) so the wave converges toward the root the
same way the simulator schedules it.

Resource-awareness is enforced live: every send and receive is charged
``C + a*x`` against the node's per-period budget, and an agent that
cannot afford its payload applies the configured
:class:`~repro.runtime.config.DropPolicy` -- trim values, drop the
message, or defer the overflow to the next period (backpressure).
"""

# The bottom-up wave is event-driven rather than timer-phased: an
# interior node sends the moment every child has reported this period,
# falling back to the ``child_wait`` deadline when one is dead or
# dropped.  Timer phasing (the simulator's approach) is fragile under a
# real event loop -- an overdue timer can fire before the inbox
# coroutine that would have delivered a child's already-queued batch.

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Coroutine, Dict, List, Optional, Set, Tuple

from repro.cluster.metrics import MetricRegistry
from repro.core.attributes import NodeAttributePair, NodeId
from repro.core.cost import CostModel
from repro.core.partition import AttributeSet
from repro.obs import names, trace
from repro.runtime.config import DropPolicy, RuntimeConfig
from repro.runtime.messages import (
    COLLECTOR_ADDRESS,
    Envelope,
    HeartbeatEnvelope,
    StopEnvelope,
    TickEnvelope,
    UpdateEnvelope,
)
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.transport import Transport
from repro.simulation.messages import Reading

_EPS = 1e-9


@dataclass(frozen=True)
class TreeRole:
    """This node's position in one collection tree."""

    attr_set: AttributeSet
    parent: Optional[NodeId]
    children: Tuple[NodeId, ...]
    local_pairs: Tuple[NodeAttributePair, ...]
    depth: int
    height: int
    #: Stable short id (``t0``, ``t1``, ...) labeling this tree's
    #: metric series and trace spans; assigned by the engine.
    tree_id: str = ""
    #: Address of the collector shard this tree reports to.
    collector: NodeId = COLLECTOR_ADDRESS

    @property
    def receiver(self) -> NodeId:
        """Where this node's batch goes: parent, or the tree's collector."""
        return self.parent if self.parent is not None else self.collector


class NodeAgent:
    """A concurrent monitoring agent for one node."""

    def __init__(
        self,
        node_id: NodeId,
        capacity: float,
        roles: List[TreeRole],
        cost: CostModel,
        registry: MetricRegistry,
        transport: Transport,
        metrics: RuntimeMetrics,
        config: RuntimeConfig,
    ) -> None:
        self.node_id = node_id
        self.capacity = capacity
        self.roles = list(roles)
        self.cost = cost
        self.registry = registry
        self.transport = transport
        self.metrics = metrics
        self.config = config
        self._budget = capacity
        self._current_period = -1
        #: Child readings (and deferred overflow) pending relay, per tree.
        self._buffers: Dict[AttributeSet, Dict[NodeAttributePair, Reading]] = {}
        #: Latest period each child has reported, per tree.
        self._children_seen: Dict[AttributeSet, Dict[NodeId, int]] = {}
        #: Last period each pair made it into a sent batch, per tree
        #: (DEFER fairness: least-recently-sent pairs go first).
        self._last_sent: Dict[AttributeSet, Dict[NodeAttributePair, int]] = {}
        #: Signalled whenever a child update lands.
        self._update_event: Optional["asyncio.Event"] = None
        self._period_tasks: Set["asyncio.Task[None]"] = set()
        #: Trace-viewer row for this agent's spans.
        self._lane = names.node_lane(node_id)

    # ------------------------------------------------------------------
    def busy(self) -> bool:
        """Whether any per-period send task is still outstanding."""
        return any(not task.done() for task in self._period_tasks)

    def down(self, period: int) -> bool:
        """Whether this node is scripted dead during ``period``."""
        return self.config.node_down(self.node_id, period)

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Inbox loop: react to ticks, updates, and stop."""
        self._update_event = asyncio.Event()
        try:
            while True:
                envelope = await self.transport.recv(
                    self.node_id, timeout=self.config.recv_timeout_seconds
                )
                if envelope is None:
                    continue  # recv timed out; re-check the inbox
                if isinstance(envelope, StopEnvelope):
                    break
                if isinstance(envelope, TickEnvelope):
                    self._on_tick(envelope)
                elif isinstance(envelope, UpdateEnvelope):
                    self._on_update(envelope)
        finally:
            await self._retire_period_tasks()

    async def _retire_period_tasks(self) -> None:
        # Snapshot and clear BEFORE awaiting: nothing spawns once the
        # run loop has exited, and clearing first means a task that
        # finishes during the gather cannot be lost from the set's
        # read-modify-write (REMO421).
        pending = [task for task in self._period_tasks if not task.done()]
        self._period_tasks.clear()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    # ------------------------------------------------------------------
    # Inbox reactions
    # ------------------------------------------------------------------
    def _on_tick(self, tick: TickEnvelope) -> None:
        self._current_period = tick.period
        self._budget = self.capacity
        self._period_tasks = {task for task in self._period_tasks if not task.done()}
        if self.down(tick.period):
            self.metrics.incr(names.AGENT_DOWN_PERIODS, node=self.node_id)
            return
        # Adopt the tick's trace context while spawning: asyncio tasks
        # snapshot contextvars at creation, so every wave spawned here
        # records spans inside the period's trace with the (possibly
        # remote) period root span as parent.
        with trace.attach(tick.trace_ctx):
            if tick.period % self.config.heartbeat_every == 0:
                self._spawn(self._send_heartbeat(tick.period))
            for role in self.roles:
                self._spawn(self._send_update(role, tick.period))

    def _on_update(self, envelope: UpdateEnvelope) -> None:
        if envelope.trace_ctx is not None and trace.active_tracer() is not None:
            # Linked to the sender's wave span: the reverse-direction
            # cross-process edge in a merged trace.
            with trace.attach(envelope.trace_ctx):
                trace.event(
                    names.EVENT_AGENT_RECV,
                    lane=self._lane,
                    sender=envelope.sender,
                    period=envelope.period,
                )
        if self.down(self._current_period):
            self.metrics.incr(names.MESSAGES_DROPPED_FAILURE, node=self.node_id)
            return
        # The child reported, whether or not its batch is affordable --
        # record that first so a capacity drop cannot stall the wave.
        seen = self._children_seen.setdefault(envelope.tree, {})
        seen[envelope.sender] = max(seen.get(envelope.sender, -1), envelope.period)
        if self._update_event is not None:
            self._update_event.set()
        charge = envelope.cost(self.cost)
        if self.config.enforce_capacity:
            if self._budget < charge - _EPS:
                self.metrics.incr(names.MESSAGES_DROPPED_CAPACITY, node=self.node_id)
                return
            self._budget -= charge
        envelope.merge_into(self._buffers.setdefault(envelope.tree, {}))
        self.metrics.incr(names.MESSAGES_DELIVERED, node=self.node_id)
        self.metrics.incr(names.COST_UNITS_SPENT, charge, node=self.node_id)

    # ------------------------------------------------------------------
    # Per-period work
    # ------------------------------------------------------------------
    def _spawn(self, coro: Coroutine[object, object, None]) -> None:
        task = asyncio.ensure_future(coro)
        self._period_tasks.add(task)

    async def _send_heartbeat(self, period: int) -> None:
        # With sharded collectors, each shard runs its own failure
        # detector over the nodes in its trees -- beacon every shard
        # this node reports to (the single-collector case sends one).
        collectors = sorted({role.collector for role in self.roles}) or [
            COLLECTOR_ADDRESS
        ]
        for collector in collectors:
            await self.transport.send(
                collector, HeartbeatEnvelope(sender=self.node_id, period=period)
            )
            self.metrics.incr(names.HEARTBEATS_SENT, node=self.node_id)

    async def _send_update(self, role: TreeRole, period: int) -> None:
        with trace.span(
            names.SPAN_AGENT_WAVE, lane=self._lane, tree=role.tree_id, period=period
        ) as wave:
            await self._await_children(role, period)
            payload: Dict[NodeAttributePair, Reading] = {}
            buffered = self._buffers.pop(role.attr_set, None)
            if buffered:
                payload.update(buffered)
            for pair in role.local_pairs:
                payload[pair] = Reading(
                    self.registry.value(pair), sampled_at=float(period)
                )
            if not payload:
                wave.set(outcome="empty")
                return
            shaped = self._apply_budget(role, payload, period)
            if shaped is None:
                wave.set(outcome="shaped_out", offered=len(payload))
                return
            charge = self.cost.message_cost(len(shaped))
            if self.config.enforce_capacity:
                self._budget -= charge
            self.metrics.incr(names.MESSAGES_SENT, node=self.node_id, tree=role.tree_id)
            self.metrics.incr(names.COST_UNITS_SPENT, charge, node=self.node_id)
            self.metrics.observe(names.PAYLOAD_VALUES, len(shaped))
            wave.set(outcome="sent", values=len(shaped))
            await self.transport.send(
                role.receiver,
                UpdateEnvelope(
                    sender=self.node_id,
                    tree=role.attr_set,
                    period=period,
                    payload=shaped,
                    trace_ctx=wave.context(),
                ),
            )

    def _children_ready(self, role: TreeRole, period: int) -> bool:
        seen = self._children_seen.get(role.attr_set, {})
        return all(seen.get(child, -1) >= period for child in role.children)

    async def _await_children(self, role: TreeRole, period: int) -> None:
        """Block until every child has reported ``period``'s batch for
        this tree, or the child-wait deadline passes."""
        if not role.children:
            return
        with trace.span(
            names.SPAN_AGENT_CHILD_WAIT, lane=self._lane, tree=role.tree_id, period=period
        ):
            deadline = time.monotonic() + self.config.child_wait_seconds
            while not self._children_ready(role, period):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._update_event is None:
                    self.metrics.incr(names.CHILD_WAIT_TIMEOUTS, node=self.node_id)
                    return
                self._update_event.clear()
                if self._children_ready(role, period):
                    return
                try:
                    await asyncio.wait_for(self._update_event.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    self.metrics.incr(names.CHILD_WAIT_TIMEOUTS, node=self.node_id)
                    return

    def _apply_budget(
        self, role: TreeRole, payload: Dict[NodeAttributePair, Reading], period: int
    ) -> Optional[Dict[NodeAttributePair, Reading]]:
        """Shape ``payload`` to the remaining budget per the drop policy.

        Returns the payload to send, or ``None`` when nothing goes out
        this period.
        """
        if not self.config.enforce_capacity:
            return payload
        policy = self.config.drop_policy
        if policy is DropPolicy.DROP:
            if self._budget < self.cost.message_cost(len(payload)) - _EPS:
                self.metrics.incr(names.MESSAGES_DROPPED_CAPACITY, node=self.node_id)
                return None
            return payload
        affordable = int(self.cost.values_within_budget(self._budget) + _EPS)
        if affordable <= 0:
            # Cannot even cover the per-message overhead.
            if policy is DropPolicy.DEFER:
                self._defer(role, payload)
            else:
                self.metrics.incr(names.MESSAGES_DROPPED_CAPACITY, node=self.node_id)
            return None
        if affordable >= len(payload):
            return payload
        if policy is DropPolicy.DEFER:
            # Fairness under sustained overload: least-recently-sent
            # pairs first, then oldest readings.  Pure recency (or a
            # fixed pair order) permanently starves the same pairs,
            # because every pair is refreshed each period.
            last_sent = self._last_sent.setdefault(role.attr_set, {})
            ordered = sorted(
                payload,
                key=lambda pair: (last_sent.get(pair, -1), payload[pair].sampled_at, pair),
            )
        else:
            ordered = sorted(payload)
        keep = ordered[:affordable]
        overflow = {pair: payload[pair] for pair in ordered[affordable:]}
        if policy is DropPolicy.DEFER:
            last_sent = self._last_sent.setdefault(role.attr_set, {})
            for pair in keep:
                last_sent[pair] = period
            self._defer(role, overflow)
        else:
            self.metrics.incr(names.VALUES_TRIMMED, len(overflow), node=self.node_id)
        return {pair: payload[pair] for pair in keep}

    def _defer(self, role: TreeRole, overflow: Dict[NodeAttributePair, Reading]) -> None:
        """Backpressure: carry unaffordable readings to the next period."""
        buffer = self._buffers.setdefault(role.attr_set, {})
        for pair, reading in overflow.items():
            existing = buffer.get(pair)
            if existing is None or reading.sampled_at >= existing.sampled_at:
                buffer[pair] = reading
        self.metrics.incr(names.VALUES_DEFERRED, len(overflow), node=self.node_id)
