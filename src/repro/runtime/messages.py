"""Wire envelopes exchanged between runtime agents.

Everything an agent can find in its inbox is an :class:`Envelope`:

- :class:`TickEnvelope` -- the engine's period-start broadcast (the
  runtime's clock distribution; a later socket transport would replace
  this with per-node timers plus NTP-style sync);
- :class:`UpdateEnvelope` -- a batch of attribute readings travelling
  one hop up a monitoring tree;
- :class:`HeartbeatEnvelope` -- the liveness signal the collector's
  failure detector consumes;
- :class:`StopEnvelope` -- orderly shutdown.

Updates reuse the simulator's :class:`~repro.simulation.messages.Reading`
value type, and their capacity charge is computed through the same
:class:`~repro.core.cost.CostModel` -- one cost model, two execution
engines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

from typing import Optional

from repro.core.attributes import NodeAttributePair, NodeId
from repro.core.cost import CostModel
from repro.core.partition import AttributeSet
from repro.obs.trace import TraceContext
from repro.simulation.messages import Reading

#: Address of the central collector on any transport.  With sharded
#: collectors this is shard 0's address; see
#: :func:`collector_shard_address`.
COLLECTOR_ADDRESS: NodeId = -1

#: Collector shard addresses occupy ``-1 .. -(MAX_COLLECTOR_SHARDS)``;
#: the cap keeps them clear of the deploy control addresses, which
#: start at ``-1000`` (``repro.net.deploy.CONTROL_ADDRESS_BASE``).
MAX_COLLECTOR_SHARDS = 998


def collector_shard_address(shard: int) -> NodeId:
    """Transport address of collector shard ``shard`` (shard 0 == -1)."""
    if not 0 <= shard < MAX_COLLECTOR_SHARDS:
        raise ValueError(
            f"collector shard must be in [0, {MAX_COLLECTOR_SHARDS}), got {shard}"
        )
    return COLLECTOR_ADDRESS - shard


@dataclass(frozen=True)
class Envelope:
    """Base class for everything a transport can carry."""


@dataclass(frozen=True)
class TickEnvelope(Envelope):
    """Period ``period`` starts now.

    ``sent_monotonic`` anchors wall-clock latency measurement: the
    collector reports collection latency as arrival time minus the
    tick's send time.

    ``trace_ctx`` carries the period's distributed-trace identity (the
    clock owner mints one trace per period): agents that adopt it make
    one monitoring period one trace across every process.  Excluded
    from equality so pre-tracing round-trip expectations still hold.
    """

    period: int
    sent_monotonic: float = field(default_factory=time.monotonic)
    trace_ctx: Optional[TraceContext] = field(
        default=None, compare=False, repr=False
    )


@dataclass(frozen=True)
class UpdateEnvelope(Envelope):
    """A batched monitoring update for one tree, one hop.

    ``trace_ctx`` points at the sending agent's wave span so the
    receiver (parent agent or collector, possibly across TCP) can emit
    events linked into the same per-period trace.
    """

    sender: NodeId
    tree: AttributeSet
    period: int
    payload: Dict[NodeAttributePair, Reading]
    trace_ctx: Optional[TraceContext] = field(
        default=None, compare=False, repr=False
    )

    def cost(self, model: CostModel) -> float:
        """Capacity charge on each endpoint (the ``C + a*x`` model)."""
        return model.message_cost(len(self.payload))

    def merge_into(self, buffer: Dict[NodeAttributePair, Reading]) -> None:
        """Fold readings into a relay buffer, keeping the freshest."""
        for pair, reading in self.payload.items():
            existing = buffer.get(pair)
            if existing is None or reading.sampled_at >= existing.sampled_at:
                buffer[pair] = reading


@dataclass(frozen=True)
class HeartbeatEnvelope(Envelope):
    """Liveness beacon from ``sender`` during ``period``."""

    sender: NodeId
    period: int


@dataclass(frozen=True)
class StopEnvelope(Envelope):
    """Drain and exit."""
