"""Task-update streams for the runtime adaptation experiments.

Section 7.1 ("Runtime adaptation") emulates a dynamic environment by
continuously modifying a small portion of the live tasks: each update
batch randomly selects 5% of the monitoring nodes and replaces 50% of
their monitored attributes.  :class:`TaskUpdateStream` reproduces that
protocol against a :class:`~repro.core.tasks.TaskManager`-compatible
task list, emitting batches of ``("modify", task)`` operations.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from repro.cluster.node import Cluster
from repro.core.tasks import MonitoringTask


class TaskUpdateStream:
    """Generates batches of task modifications (the paper's protocol).

    Parameters
    ----------
    cluster:
        The deployment (supplies each node's observable attributes).
    tasks:
        The initial task set; batches mutate this working copy.
    node_fraction:
        Fraction of monitoring nodes touched per batch (paper: 0.05).
    attr_fraction:
        Fraction of each touched task's attributes replaced (paper: 0.5).
    """

    def __init__(
        self,
        cluster: Cluster,
        tasks: Iterable[MonitoringTask],
        node_fraction: float = 0.05,
        attr_fraction: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 < node_fraction <= 1.0:
            raise ValueError(f"node_fraction must be in (0, 1], got {node_fraction}")
        if not 0.0 < attr_fraction <= 1.0:
            raise ValueError(f"attr_fraction must be in (0, 1], got {attr_fraction}")
        self.cluster = cluster
        self.tasks: List[MonitoringTask] = list(tasks)
        if not self.tasks:
            raise ValueError("update stream needs at least one initial task")
        self.node_fraction = node_fraction
        self.attr_fraction = attr_fraction
        self.rng = random.Random(seed)
        pool = set()
        for node in cluster:
            pool |= node.attributes
        self._attribute_pool = sorted(pool)

    def next_batch(self) -> List[Tuple[str, MonitoringTask]]:
        """One update batch: ``("modify", new_task)`` operations.

        Tasks touching any of the selected nodes get ``attr_fraction``
        of their attributes swapped for fresh ones drawn from the
        cluster-wide pool.
        """
        n_touch = max(1, int(self.node_fraction * len(self.cluster)))
        touched_nodes = set(self.rng.sample(self.cluster.node_ids, n_touch))
        ops: List[Tuple[str, MonitoringTask]] = []
        for index, task in enumerate(self.tasks):
            if not (task.nodes & touched_nodes):
                continue
            new_task = self._rewrite(task)
            if new_task is not None and new_task.attributes != task.attributes:
                self.tasks[index] = new_task
                ops.append(("modify", new_task))
        return ops

    def _rewrite(self, task: MonitoringTask) -> Optional[MonitoringTask]:
        attrs = sorted(task.attributes)
        n_replace = max(1, int(self.attr_fraction * len(attrs)))
        keep = set(attrs)
        for attr in self.rng.sample(attrs, min(n_replace, len(attrs))):
            keep.discard(attr)
        replacements = [a for a in self._attribute_pool if a not in task.attributes]
        self.rng.shuffle(replacements)
        new_attrs = set(keep) | set(replacements[:n_replace])
        if not new_attrs:
            return None
        return MonitoringTask(task.task_id, new_attrs, task.nodes, task.frequency)
