"""Canonical ready-made workloads.

The quickstart example, the ``repro check`` CLI default, and CI all
exercise the same cluster + task mix so "the quickstart workload" is
one definition, not three drifting copies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.node import Cluster
from repro.cluster.topology import default_attribute_pool, make_uniform_cluster
from repro.core.cost import CostModel
from repro.core.tasks import MonitoringTask
from repro.workloads.tasks import TaskSampler


def quickstart_workload() -> Tuple[Cluster, CostModel, List[MonitoringTask]]:
    """The quickstart scenario: 64 nodes, three overlapping tasks.

    Each node spends at most 300 cost units per period on monitoring
    I/O and observes 12 of 24 attribute types; the central collector
    is capped at 900.  Messages cost ``C + a*x`` with ``C=20`` and
    ``a=1`` (Section 2.3 of the paper).
    """
    cluster = make_uniform_cluster(
        n_nodes=64,
        capacity=300.0,
        attrs_per_node=12,
        central_capacity=900.0,
        seed=7,
    )
    cost = CostModel(per_message=20.0, per_value=1.0)
    pool = sorted({a for node in cluster for a in node.attributes})
    tasks = [
        MonitoringTask("dashboard", pool[:3], range(0, 64)),
        MonitoringTask("debug-tier1", pool[:6], range(0, 24)),
        MonitoringTask("capacity-planning", pool[3:10], range(16, 56)),
    ]
    return cluster, cost, tasks


def sampled_workload(
    nodes: int = 64,
    capacity: float = 400.0,
    central: Optional[float] = None,
    pool: int = 32,
    attrs_per_node: int = 16,
    tasks: int = 15,
    cost_c: float = 20.0,
    cost_a: float = 1.0,
    seed: int = 1,
) -> Tuple[Cluster, CostModel, List[MonitoringTask]]:
    """The CLI's sampled workload: a uniform cluster plus random tasks.

    ``repro plan/simulate/run`` and every ``repro deploy`` child
    process construct their workload through this one function, so a
    worker rebuilding its world from a deploy spec gets bit-identical
    cluster, cost model, and task list (sampling is fully seeded).
    """
    cluster = make_uniform_cluster(
        n_nodes=nodes,
        capacity=capacity,
        attrs_per_node=min(attrs_per_node, pool),
        attribute_pool=default_attribute_pool(pool),
        central_capacity=central if central is not None else 3.0 * capacity,
        seed=seed,
    )
    cost = CostModel(per_message=cost_c, per_value=cost_a)
    sampled = TaskSampler(cluster, seed=seed + 1).sample_many(
        tasks, (2, 5), (max(5, nodes // 6), max(6, nodes // 2))
    )
    return cluster, cost, sampled
