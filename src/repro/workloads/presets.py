"""Canonical ready-made workloads.

The quickstart example, the ``repro check`` CLI default, and CI all
exercise the same cluster + task mix so "the quickstart workload" is
one definition, not three drifting copies.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.node import Cluster
from repro.cluster.topology import make_uniform_cluster
from repro.core.cost import CostModel
from repro.core.tasks import MonitoringTask


def quickstart_workload() -> Tuple[Cluster, CostModel, List[MonitoringTask]]:
    """The quickstart scenario: 64 nodes, three overlapping tasks.

    Each node spends at most 300 cost units per period on monitoring
    I/O and observes 12 of 24 attribute types; the central collector
    is capped at 900.  Messages cost ``C + a*x`` with ``C=20`` and
    ``a=1`` (Section 2.3 of the paper).
    """
    cluster = make_uniform_cluster(
        n_nodes=64,
        capacity=300.0,
        attrs_per_node=12,
        central_capacity=900.0,
        seed=7,
    )
    cost = CostModel(per_message=20.0, per_value=1.0)
    pool = sorted({a for node in cluster for a in node.attributes})
    tasks = [
        MonitoringTask("dashboard", pool[:3], range(0, 64)),
        MonitoringTask("debug-tier1", pool[:6], range(0, 24)),
        MonitoringTask("capacity-planning", pool[3:10], range(16, 56)),
    ]
    return cluster, cost, tasks
