"""Synthetic workload generators matching Section 7's setup.

Monitoring tasks are sampled by picking ``|A_t|`` attributes and
``|N_t|`` nodes uniformly; *small-scale* tasks touch few attributes on
few nodes, *large-scale* tasks involve many of either.  The runtime
adaptation experiments mutate the live task set in batches: each batch
picks 5% of the monitoring nodes and replaces 50% of their monitored
attributes.
"""

from repro.workloads.tasks import (
    TaskSampler,
    sample_large_tasks,
    sample_small_tasks,
)
from repro.workloads.updates import TaskUpdateStream

__all__ = [
    "TaskSampler",
    "TaskUpdateStream",
    "sample_large_tasks",
    "sample_small_tasks",
]
