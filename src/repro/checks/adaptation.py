"""Adaptation-legality checkers (``REMO3xx``).

The adaptive service reports which merge/split operations its
restricted local search applied between two reconfigurations.  These
checks replay that operation sequence on the *pre-step* partition and
diff the result against the *post-step* partition:

- an operation that names sets absent from the partition it is applied
  to is illegal (``REMO301``) -- ``Partition.apply`` would reject it,
  so its presence in an "applied" log means the search corrupted its
  own state;
- if the replay succeeds but lands on a different partition than the
  one the service actually produced, the log and the state diverged
  (``REMO302``);
- merge/split moves can only regroup attributes, never invent or
  retire them, so a universe change between the two partitions is
  always a bug in the search (``REMO303``) -- workload-driven universe
  changes happen in the task delta *before* the search runs.
"""

from __future__ import annotations

from typing import Sequence

from repro.checks.diagnostics import DiagnosticReport
from repro.core.partition import Partition, PartitionOp


def check_adaptation_step(
    before: Partition,
    after: Partition,
    ops: Sequence[PartitionOp],
    report: DiagnosticReport,
) -> None:
    """Verify one adaptation step's merge/split trail.

    ``before`` must be the partition the restricted search started
    from (i.e. *after* any workload-delta trimming/extension), and
    ``ops`` the operations the search reports having applied, in
    order.
    """
    if before.universe != after.universe:
        gained = sorted(set(after.universe) - set(before.universe))
        lost = sorted(set(before.universe) - set(after.universe))
        report.add(
            "REMO303",
            "adaptation",
            f"universe changed across the step: gained {gained}, lost {lost}",
        )
        # Replay on mismatched universes would only cascade errors.
        return

    current = before
    for index, op in enumerate(ops):
        try:
            current = current.apply(op)
        except (KeyError, ValueError) as exc:
            report.add(
                "REMO301",
                f"adaptation / op {index}",
                f"{op.describe()} is illegal on the partition it was "
                f"applied to: {exc}",
            )
            # The trail is broken; later ops would be judged against
            # the wrong intermediate partition.
            return

    if current != after:
        only_replay = [sorted(s) for s in current.sets if s not in after]
        only_actual = [sorted(s) for s in after.sets if s not in current]
        report.add(
            "REMO302",
            "adaptation",
            f"replaying {len(ops)} op(s) yields sets {only_replay} where the "
            f"service produced {only_actual}",
        )
