"""Top-level entry points that chain the individual checkers.

The order matters: structural soundness is a precondition for the
cost recomputation (a cyclic tree cannot be traversed bottom-up), so
:func:`check_plan` only runs the capacity checkers on trees the
structure checkers certified, and only runs the budget summation when
capacities were supplied at all.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.checks.capacity import check_budgets, check_tree_costs
from repro.checks.diagnostics import DiagnosticReport
from repro.checks.recompute import TreeAccounting
from repro.checks.structure import check_partition, check_tree
from repro.cluster.node import Cluster
from repro.core.attributes import NodeId
from repro.core.partition import AttributeSet
from repro.core.plan import MonitoringPlan


def check_plan(
    plan: MonitoringPlan,
    node_capacities: Optional[Mapping[NodeId, float]] = None,
    central_capacity: Optional[float] = None,
) -> DiagnosticReport:
    """Statically verify a plan; returns every finding, never raises.

    Structure (``REMO1xx``) and cache-drift (``REMO2xx``) checks always
    run; budget checks additionally require ``node_capacities`` /
    ``central_capacity`` (pass a :class:`Cluster` via
    :func:`check_plan_for_cluster` for the common case).
    """
    report = DiagnosticReport()
    check_partition(plan, report)

    accountings: Dict[AttributeSet, TreeAccounting] = {}
    for attr_set, result in plan.trees.items():
        if not check_tree(attr_set, result.tree, report):
            continue
        accounting = check_tree_costs(attr_set, result.tree, report)
        if accounting is not None:
            accountings[attr_set] = accounting

    if node_capacities is not None and central_capacity is not None:
        check_budgets(accountings, node_capacities, central_capacity, report)
    return report


def check_plan_for_cluster(plan: MonitoringPlan, cluster: Cluster) -> DiagnosticReport:
    """:func:`check_plan` with budgets drawn from a cluster."""
    capacities = {node_id: cluster.capacity(node_id) for node_id in cluster.node_ids}
    return check_plan(plan, capacities, cluster.central_capacity)


def assert_plan_valid(
    plan: MonitoringPlan,
    cluster: Optional[Cluster] = None,
    context: str = "plan check",
) -> DiagnosticReport:
    """Run :func:`check_plan` and raise on ERROR findings.

    Raises :class:`~repro.checks.diagnostics.PlanCheckError` (an
    ``AssertionError``) listing every error; warnings are returned in
    the report but never raise.  This is the hook behind the planner's
    ``debug_checks=True`` flag.
    """
    if cluster is not None:
        report = check_plan_for_cluster(plan, cluster)
    else:
        report = check_plan(plan)
    report.raise_if_errors(context)
    return report
