"""Pre-launch verification of a multi-process shard assignment.

``repro deploy`` splits a plan's participating nodes across worker
processes before anything is spawned.  A bad split is much cheaper to
refuse here than to debug as a half-deaf deployment: a node in no
shard silently collects nothing, a node in two shards double-reports,
and two processes told to bind the same port fight at startup.  The
same append-only ``REMOxxx`` code registry used by the plan checks
identifies each failure class (``REMO351``-``REMO354``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.attributes import NodeId
from repro.checks.diagnostics import DiagnosticReport

#: ``(host, port)`` -- kept structural so this module does not depend
#: on :mod:`repro.net` (checks sit below the transport layer).
HostPort = Tuple[str, int]


def check_shard_assignment(
    nodes: Iterable[NodeId],
    shards: Sequence[Sequence[NodeId]],
    endpoints: Optional[Sequence[HostPort]] = None,
) -> DiagnosticReport:
    """Verify that ``shards`` is a legal split of ``nodes``.

    ``nodes`` is the full set of participating plan nodes; ``shards``
    maps worker rank -> assigned nodes; ``endpoints`` (optional) lists
    every listen address the deployment will bind -- workers first,
    then the collector -- in any order.

    Emits:

    - ``REMO351`` (error): a node missing from every shard, or present
      in more than one (including twice in the same shard);
    - ``REMO352`` (error): a reserved (negative) address -- collector
      or control inbox -- assigned to a shard;
    - ``REMO353`` (error): two processes sharing one endpoint;
    - ``REMO354`` (warning): a shard with no nodes.
    """
    report = DiagnosticReport()
    expected = set(nodes)

    owners: Dict[NodeId, List[int]] = {}
    for rank, shard in enumerate(shards):
        for node in shard:
            owners.setdefault(node, []).append(rank)
        if not shard:
            report.add(
                "REMO354",
                f"worker {rank}",
                "shard is empty: the worker process will host no agents",
            )

    for node in sorted(expected - set(owners)):
        report.add(
            "REMO351",
            "shard plan",
            f"node {node} participates in the plan but belongs to no shard",
        )
    for node, ranks in sorted(owners.items()):
        if len(ranks) > 1:
            report.add(
                "REMO351",
                "shard plan",
                f"node {node} is assigned {len(ranks)} times "
                f"(workers {sorted(set(ranks))})",
            )
        elif node not in expected and node >= 0:
            report.add(
                "REMO351",
                f"worker {ranks[0]}",
                f"node {node} is sharded but does not participate in the plan",
            )
        if node < 0:
            report.add(
                "REMO352",
                f"worker {ranks[0]}",
                f"address {node} is reserved for the collector/control plane "
                "and cannot be hosted by a worker shard",
            )

    if endpoints is not None:
        seen: Dict[HostPort, int] = {}
        for index, endpoint in enumerate(endpoints):
            key = (str(endpoint[0]), int(endpoint[1]))
            if key in seen:
                report.add(
                    "REMO353",
                    f"{key[0]}:{key[1]}",
                    f"endpoint assigned to process {seen[key]} and again to "
                    f"process {index}",
                )
            else:
                seen[key] = index
    return report
