"""Capacity and cost-model checkers (``REMO2xx``).

These checkers trust nothing the trees cache.  Every quantity is
recomputed from the primitive structure via
:func:`repro.checks.recompute.recompute_tree`, then

- the recomputation is diffed against the cached bookkeeping
  (``REMO203`` for costs, ``REMO204`` for pair counts), and
- the **recomputed** loads are summed across trees and held against
  the per-node budgets ``b_i`` and the central collector's budget
  (``REMO201``/``REMO202``) -- so a stale cache can never hide a
  genuine overload.

Budget comparisons reuse the same ``1e-6`` slack as
``MonitoringPlan.validate``; cache diffs use a much tighter relative
tolerance because both sides are derived from the identical floats.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.checks.diagnostics import DiagnosticReport
from repro.checks.recompute import TreeAccounting, recompute_tree
from repro.core.attributes import NodeId
from repro.core.partition import AttributeSet
from repro.trees.model import MonitoringTree

#: Slack for budget feasibility, matching ``MonitoringPlan.validate``.
BUDGET_TOLERANCE = 1e-6
#: Tolerance for cached-vs-recomputed drift.  Both sides are computed
#: from the same primitive floats, so only accumulation-order noise is
#: acceptable.
DRIFT_REL_TOL = 1e-9
DRIFT_ABS_TOL = 1e-9


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=DRIFT_REL_TOL, abs_tol=DRIFT_ABS_TOL)


def _set_label(attr_set: AttributeSet) -> str:
    inner = ",".join(sorted(attr_set)[:4])
    if len(attr_set) > 4:
        inner += ",..."
    return "tree {" + inner + "}"


def check_tree_costs(
    attr_set: AttributeSet,
    tree: MonitoringTree,
    report: DiagnosticReport,
) -> Optional[TreeAccounting]:
    """Recompute one tree and diff it against the cached bookkeeping.

    Returns the recomputed accounting (for the budget checks) or
    ``None`` when the structure cannot be traversed -- the structural
    checkers report that case separately.
    """
    label = _set_label(attr_set)

    # Primitive-input sanity first: a recomputation of garbage demands
    # would just reproduce the garbage.
    for node in tree.nodes:
        for attr, weight in tree.local_demand(node).items():
            if weight <= 0.0 or not math.isfinite(weight):
                report.add(
                    "REMO205",
                    f"{label} / node {node}",
                    f"local demand for {attr!r} has invalid weight {weight!r}",
                )
        msgw = tree.local_message_weight(node)
        if msgw < 0.0 or not math.isfinite(msgw):
            report.add(
                "REMO205",
                f"{label} / node {node}",
                f"invalid local message weight {msgw!r}",
            )

    try:
        accounting = recompute_tree(tree)
    except ValueError:
        # Structurally unsound; REMO110/111/112 cover it.
        return None

    if accounting.pair_count != tree.pair_count():
        report.add(
            "REMO204",
            label,
            f"cached pair count {tree.pair_count()} != recomputed "
            f"{accounting.pair_count}",
        )

    for node, acc in accounting.nodes.items():
        cached_send = tree.send_cost(node)
        cached_recv = tree.recv_cost(node)
        cached_values = tree.outgoing_values(node)
        cached_msgw = tree.message_weight(node)
        drift = []
        if not _close(cached_send, acc.send):
            drift.append(f"send {cached_send!r} != {acc.send!r}")
        if not _close(cached_recv, acc.recv):
            drift.append(f"recv {cached_recv!r} != {acc.recv!r}")
        if not _close(cached_values, acc.total_values):
            drift.append(f"outgoing values {cached_values!r} != {acc.total_values!r}")
        if not _close(cached_msgw, acc.msg_weight):
            drift.append(f"message weight {cached_msgw!r} != {acc.msg_weight!r}")
        if drift:
            report.add(
                "REMO203",
                f"{label} / node {node}",
                "cached vs recomputed: " + "; ".join(drift),
            )

    if not _close(tree.central_used(), accounting.central_used):
        report.add(
            "REMO203",
            label,
            f"cached central usage {tree.central_used()!r} != recomputed "
            f"{accounting.central_used!r}",
        )
    return accounting


def check_budgets(
    accountings: Mapping[AttributeSet, TreeAccounting],
    node_capacities: Mapping[NodeId, float],
    central_capacity: float,
    report: DiagnosticReport,
) -> None:
    """Hold recomputed loads against node and collector budgets."""
    usage: Dict[NodeId, float] = {}
    central = 0.0
    for accounting in accountings.values():
        for node, acc in accounting.nodes.items():
            usage[node] = usage.get(node, 0.0) + acc.used
        central += accounting.central_used

    for node in sorted(usage):
        used = usage[node]
        budget = node_capacities.get(node)
        if budget is None:
            report.add(
                "REMO201",
                f"node {node}",
                f"plan uses a node with no capacity budget (load {used:.6f})",
            )
        elif used > budget + BUDGET_TOLERANCE:
            report.add(
                "REMO201",
                f"node {node}",
                f"recomputed load {used:.6f} exceeds budget {budget:.6f}",
            )

    if central > central_capacity + BUDGET_TOLERANCE:
        report.add(
            "REMO202",
            "collector",
            f"recomputed central load {central:.6f} exceeds capacity "
            f"{central_capacity:.6f}",
        )
