"""Deterministic plan-corruption injectors for testing the checkers.

Each fault models one real failure class the verifier must catch and
is engineered so its *primary* diagnostic code is distinct from the
other faults':

- ``drop-tree``   -> ``REMO102`` (a partition set loses its tree);
- ``cycle``       -> ``REMO111`` (a parent pointer loops, the classic
  symptom of a botched branch move);
- ``overload``    -> ``REMO201`` (a member's demand is inflated past
  its budget with bookkeeping kept *consistent*, so only the budget
  check can see it);
- ``stale-cost``  -> ``REMO203`` (a cached send cost is poked without
  touching the structure, so only the recomputation diff can see it).

The injectors mutate the plan **in place** (plans are deliberately
mutable dataclass-style objects; the whole point of the verifier is
that such mutation can go wrong) and bypass the tree API exactly the
way a buggy caller would.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.partition import AttributeSet
from repro.core.plan import MonitoringPlan

#: Public names of the supported corruption classes.
FAULT_KINDS = ("drop-tree", "cycle", "overload", "stale-cost")


def _sorted_sets(plan: MonitoringPlan) -> List[AttributeSet]:
    return sorted(plan.trees, key=sorted)


def _drop_tree(plan: MonitoringPlan) -> str:
    attr_set = _sorted_sets(plan)[0]
    del plan.trees[attr_set]
    return f"dropped the tree for {sorted(attr_set)}"


def _cycle(plan: MonitoringPlan) -> str:
    for attr_set in _sorted_sets(plan):
        tree = plan.trees[attr_set].tree
        victims = [n for n in tree.nodes if tree.parent(n) is not None]
        if not victims:
            continue
        node = max(victims)
        parent = tree.parent(node)
        # Re-point the node at itself, keeping the parent/children
        # mirror consistent so ONLY the cycle check fires.
        tree._children[parent].discard(node)
        tree._parent[node] = node
        tree._children[node].add(node)
        return f"self-looped node {node} in tree {sorted(attr_set)}"
    raise ValueError("no tree with a non-root node to corrupt")


def _overload(plan: MonitoringPlan) -> str:
    for attr_set in _sorted_sets(plan):
        tree = plan.trees[attr_set].tree
        for node in sorted(tree.nodes):
            demand = tree.local_demand(node)
            if not demand:
                continue
            attr = sorted(demand)[0]
            demand[attr] += 1.0e6
            # check=False skips the capacity guard, like a caller that
            # forgot it; the incremental bookkeeping stays CONSISTENT,
            # so only the recomputed-budget check can catch this.
            tree.update_local(node, demand, check=False)
            return (
                f"inflated demand for {attr!r} at node {node} in tree "
                f"{sorted(attr_set)}"
            )
    raise ValueError("no tree with local demand to corrupt")


def _stale_cost(plan: MonitoringPlan) -> str:
    for attr_set in _sorted_sets(plan):
        tree = plan.trees[attr_set].tree
        if not tree.nodes:
            continue
        node = min(tree.nodes)
        tree._send_a[tree._slot[node]] += 37.0
        return (
            f"desynced cached send cost at node {node} in tree "
            f"{sorted(attr_set)}"
        )
    raise ValueError("no non-empty tree to corrupt")


_INJECTORS: Dict[str, Callable[[MonitoringPlan], str]] = {
    "drop-tree": _drop_tree,
    "cycle": _cycle,
    "overload": _overload,
    "stale-cost": _stale_cost,
}


def inject_fault(plan: MonitoringPlan, kind: str) -> str:
    """Corrupt ``plan`` in place; returns a description of the damage."""
    try:
        injector = _INJECTORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        ) from None
    return injector(plan)
