"""From-scratch recomputation of a monitoring tree's resource usage.

The tree model maintains send/receive costs *incrementally* so the
builders stay fast; this module recomputes the same quantities bottom
up from nothing but the primitive structure (parent/children tables,
local demands, local message weights), the aggregation funnels, and
the :class:`~repro.core.cost.CostModel`.  The capacity checkers
compare the two: any divergence is bookkeeping drift (``REMO203``),
and budget checks always use the recomputed values so a stale cache
can never mask a genuine overload (``REMO201``).

The traversal assumes the structure checker already certified the
tree acyclic and connected; :func:`recompute_tree` raises
``ValueError`` if that assumption is violated rather than looping
forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.attributes import AttributeId, NodeId
from repro.trees.model import MonitoringTree


@dataclass
class NodeAccounting:
    """Independently recomputed per-node quantities for one tree."""

    outgoing_values: Dict[AttributeId, float]
    msg_weight: float
    send: float
    recv: float

    @property
    def used(self) -> float:
        """Capacity the node spends on this tree (send + receive side)."""
        return self.send + self.recv

    @property
    def total_values(self) -> float:
        return sum(self.outgoing_values.values())


@dataclass
class TreeAccounting:
    """Recomputed usage for a whole tree.

    ``central_used`` is the cost charged to the collector: the root's
    send cost (the root is the unique member whose message no other
    member receives).
    """

    nodes: Dict[NodeId, NodeAccounting]
    pair_count: int
    central_used: float = 0.0

    @property
    def total_message_cost(self) -> float:
        return sum(acc.send for acc in self.nodes.values())


def recompute_tree(tree: MonitoringTree) -> TreeAccounting:
    """Recompute every node's content, weight, and cost from scratch.

    Works purely from ``local_demand``/``local_message_weight``, the
    children tables, the tree's funnel, and its cost model -- none of
    the cached ``_send``/``_recv``/``_out`` state is consulted.
    """
    members = list(tree.nodes)
    if not members:
        return TreeAccounting(nodes={}, pair_count=0, central_used=0.0)
    root = tree.root
    if root is None or root not in tree:
        raise ValueError("cannot recompute a tree without a valid root")

    # Preorder via children tables, guarded against cycles.
    order: List[NodeId] = []
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        for child in tree.children(node):
            if child in seen:
                raise ValueError(f"cycle at node {child}; run structure checks first")
            seen.add(child)
            stack.append(child)
    if len(order) != len(members):
        raise ValueError("tree is not fully connected; run structure checks first")

    cost = tree.cost
    accounting: Dict[NodeId, NodeAccounting] = {}
    pair_count = 0
    for node in reversed(order):
        local = tree.local_demand(node)
        pair_count += len(local)
        incoming: Dict[AttributeId, float] = {
            attr: weight for attr, weight in local.items() if weight > 0.0
        }
        msg_weight = tree.local_message_weight(node)
        recv = 0.0
        for child in tree.children(node):
            child_acc = accounting[child]
            for attr, weight in child_acc.outgoing_values.items():
                incoming[attr] = incoming.get(attr, 0.0) + weight
            recv += child_acc.send
            msg_weight = max(msg_weight, child_acc.msg_weight)
        outgoing = {}
        for attr, weight in incoming.items():
            funneled = tree.funnel_value(attr, weight)
            if funneled > 0.0:
                outgoing[attr] = funneled
        send = (
            cost.weighted_message_cost(msg_weight, sum(outgoing.values()))
            if msg_weight > 0.0
            else 0.0
        )
        accounting[node] = NodeAccounting(
            outgoing_values=outgoing,
            msg_weight=msg_weight,
            send=send,
            recv=recv,
        )

    return TreeAccounting(
        nodes=accounting,
        pair_count=pair_count,
        central_used=accounting[root].send,
    )


def assert_tree_matches_recompute(tree: MonitoringTree, tol: float = 1e-6) -> None:
    """Assert the tree's incremental caches agree with a from-scratch pass.

    The tree maintains outgoing values, message weights, and send and
    receive costs delta-by-delta as nodes are added, removed, and moved;
    this oracle recomputes all of them bottom-up via
    :func:`recompute_tree` and raises ``AssertionError`` on any
    divergence beyond ``tol``.  It is the equivalence check behind the
    incremental-maintenance property tests.
    """
    acc = recompute_tree(tree)
    if tree.pair_count() != acc.pair_count:
        raise AssertionError(
            f"pair count drift: cached {tree.pair_count()}, recomputed {acc.pair_count}"
        )
    cached_nodes = set(tree.nodes)
    if cached_nodes != set(acc.nodes):
        raise AssertionError(
            f"membership drift: cached {sorted(cached_nodes)}, "
            f"recomputed {sorted(acc.nodes)}"
        )
    for node in tree.nodes:
        node_acc = acc.nodes[node]
        quantities = (
            ("outgoing values", tree.outgoing_values(node), node_acc.total_values),
            ("message weight", tree.message_weight(node), node_acc.msg_weight),
            ("send cost", tree.send_cost(node), node_acc.send),
            ("receive cost", tree.recv_cost(node), node_acc.recv),
        )
        for label, cached, recomputed in quantities:
            if abs(cached - recomputed) > tol:
                raise AssertionError(
                    f"{label} drift at node {node}: cached {cached!r}, "
                    f"recomputed {recomputed!r}"
                )
    if abs(tree.central_used() - acc.central_used) > tol:
        raise AssertionError(
            f"central usage drift: cached {tree.central_used()!r}, "
            f"recomputed {acc.central_used!r}"
        )
