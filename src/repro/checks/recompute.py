"""From-scratch recomputation of a monitoring tree's resource usage.

The tree model maintains send/receive costs *incrementally* so the
builders stay fast; this module recomputes the same quantities bottom
up from nothing but the primitive structure (parent/children tables,
local demands, local message weights), the aggregation funnels, and
the :class:`~repro.core.cost.CostModel`.  The capacity checkers
compare the two: any divergence is bookkeeping drift (``REMO203``),
and budget checks always use the recomputed values so a stale cache
can never mask a genuine overload (``REMO201``).

The traversal assumes the structure checker already certified the
tree acyclic and connected; :func:`recompute_tree` raises
``ValueError`` if that assumption is violated rather than looping
forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.attributes import AttributeId, NodeId
from repro.trees.model import MonitoringTree


@dataclass
class NodeAccounting:
    """Independently recomputed per-node quantities for one tree."""

    outgoing_values: Dict[AttributeId, float]
    msg_weight: float
    send: float
    recv: float

    @property
    def used(self) -> float:
        """Capacity the node spends on this tree (send + receive side)."""
        return self.send + self.recv

    @property
    def total_values(self) -> float:
        return sum(self.outgoing_values.values())


@dataclass
class TreeAccounting:
    """Recomputed usage for a whole tree.

    ``central_used`` is the cost charged to the collector: the root's
    send cost (the root is the unique member whose message no other
    member receives).
    """

    nodes: Dict[NodeId, NodeAccounting]
    pair_count: int
    central_used: float = 0.0

    @property
    def total_message_cost(self) -> float:
        return sum(acc.send for acc in self.nodes.values())


def recompute_tree(tree: MonitoringTree) -> TreeAccounting:
    """Recompute every node's content, weight, and cost from scratch.

    Works purely from ``local_demand``/``local_message_weight``, the
    children tables, the tree's funnel, and its cost model -- none of
    the cached ``_send``/``_recv``/``_out`` state is consulted.
    """
    members = list(tree.nodes)
    if not members:
        return TreeAccounting(nodes={}, pair_count=0, central_used=0.0)
    root = tree.root
    if root is None or root not in tree:
        raise ValueError("cannot recompute a tree without a valid root")

    # Preorder via children tables, guarded against cycles.
    order: List[NodeId] = []
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        for child in tree.children(node):
            if child in seen:
                raise ValueError(f"cycle at node {child}; run structure checks first")
            seen.add(child)
            stack.append(child)
    if len(order) != len(members):
        raise ValueError("tree is not fully connected; run structure checks first")

    cost = tree.cost
    accounting: Dict[NodeId, NodeAccounting] = {}
    pair_count = 0
    for node in reversed(order):
        local = tree.local_demand(node)
        pair_count += len(local)
        incoming: Dict[AttributeId, float] = {
            attr: weight for attr, weight in local.items() if weight > 0.0
        }
        msg_weight = tree.local_message_weight(node)
        recv = 0.0
        for child in tree.children(node):
            child_acc = accounting[child]
            for attr, weight in child_acc.outgoing_values.items():
                incoming[attr] = incoming.get(attr, 0.0) + weight
            recv += child_acc.send
            msg_weight = max(msg_weight, child_acc.msg_weight)
        outgoing = {}
        for attr, weight in incoming.items():
            funneled = tree.funnel_value(attr, weight)
            if funneled > 0.0:
                outgoing[attr] = funneled
        send = (
            cost.weighted_message_cost(msg_weight, sum(outgoing.values()))
            if msg_weight > 0.0
            else 0.0
        )
        accounting[node] = NodeAccounting(
            outgoing_values=outgoing,
            msg_weight=msg_weight,
            send=send,
            recv=recv,
        )

    return TreeAccounting(
        nodes=accounting,
        pair_count=pair_count,
        central_used=accounting[root].send,
    )
