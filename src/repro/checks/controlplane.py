"""Pre-launch verification of collector sharding and tenant namespaces.

The control plane (`repro serve`) splits a plan's collection trees
across collector shards and multiplexes many tenants' task namespaces
onto one planner.  Both mappings are cheap to verify before anything
listens on a socket and expensive to debug afterwards: a partition set
assigned to no shard silently never scores, an overloaded shard root
drops updates at capacity, and a tenant name containing the namespace
separator corrupts every qualified task id derived from it.  Failure
classes live in the same append-only registry (``REMO361``-``REMO365``).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.checks.diagnostics import DiagnosticReport
from repro.core.partition import AttributeSet
from repro.core.plan import MonitoringPlan
from repro.core.tasks import TENANT_SEPARATOR, MonitoringTask


def _set_label(attr_set: AttributeSet) -> str:
    return "{" + ",".join(str(a) for a in sorted(attr_set)) + "}"


def check_collector_shards(
    plan: MonitoringPlan,
    assignment: Mapping[AttributeSet, int],
    shards: int,
    central_capacity: Optional[float] = None,
) -> DiagnosticReport:
    """Verify that ``assignment`` legally shards ``plan``'s trees.

    Emits:

    - ``REMO361`` (error): a partition set missing from the assignment,
      an assigned set outside the partition, or a shard index outside
      ``[0, shards)``;
    - ``REMO362`` (error): a shard whose root messages exceed
      ``central_capacity`` (checked when a budget is given);
    - ``REMO363`` (warning): a shard hosting no trees.
    """
    report = DiagnosticReport()
    if shards < 1:
        report.add("REMO361", "shard plan", f"shard count must be >= 1, got {shards}")
        return report

    partition_sets = set(plan.partition.sets)
    for attr_set in sorted(partition_sets - set(assignment), key=sorted):
        report.add(
            "REMO361",
            f"set {_set_label(attr_set)}",
            "partition set is assigned to no collector shard",
        )
    usage: Dict[int, float] = {shard: 0.0 for shard in range(shards)}
    for attr_set, shard in sorted(assignment.items(), key=lambda kv: sorted(kv[0])):
        label = f"set {_set_label(attr_set)}"
        if attr_set not in partition_sets:
            report.add(
                "REMO361", label, "assigned set does not belong to the partition"
            )
            continue
        if not 0 <= shard < shards:
            report.add(
                "REMO361",
                label,
                f"assigned to shard {shard}, outside [0, {shards})",
            )
            continue
        usage[shard] += plan.trees[attr_set].tree.central_used()

    for shard in range(shards):
        if central_capacity is not None and usage[shard] > central_capacity + 1e-6:
            report.add(
                "REMO362",
                f"collector shard {shard}",
                f"root messages cost {usage[shard]:.6f} > "
                f"per-collector budget {central_capacity:.6f}",
            )
        if not any(
            owner == shard and attr_set in partition_sets
            for attr_set, owner in assignment.items()
        ):
            report.add(
                "REMO363",
                f"collector shard {shard}",
                "no partition set reports to this shard",
            )
    return report


def check_tenant_namespaces(
    tenant_tasks: Mapping[str, Sequence[MonitoringTask]],
) -> DiagnosticReport:
    """Verify tenant names and per-tenant task ids are well-formed.

    Emits:

    - ``REMO364`` (error): an empty tenant name, a tenant name or task
      id containing the ``/`` separator, or a duplicate task id within
      one tenant;
    - ``REMO365`` (warning): a tenant namespace holding no tasks.
    """
    report = DiagnosticReport()
    for tenant in sorted(tenant_tasks):
        tasks = tenant_tasks[tenant]
        location = f"tenant {tenant!r}"
        if not tenant:
            report.add("REMO364", location, "tenant name is empty")
        elif TENANT_SEPARATOR in tenant:
            report.add(
                "REMO364",
                location,
                f"tenant name contains the separator {TENANT_SEPARATOR!r}",
            )
        if not tasks:
            report.add("REMO365", location, "tenant has no registered tasks")
        seen: List[str] = []
        for task in tasks:
            if TENANT_SEPARATOR in task.task_id:
                report.add(
                    "REMO364",
                    f"{location} / task {task.task_id!r}",
                    f"task id contains the separator {TENANT_SEPARATOR!r}",
                )
            if task.task_id in seen:
                report.add(
                    "REMO364",
                    f"{location} / task {task.task_id!r}",
                    "duplicate task id within the tenant namespace",
                )
            else:
                seen.append(task.task_id)
    return report
