"""Static plan-invariant verifier (``repro.checks``).

Verifies a :class:`~repro.core.plan.MonitoringPlan` without running
the simulator: partition exact cover, tree well-formedness, capacity
feasibility against a from-scratch cost recomputation, and adaptation
legality.  Every finding carries a stable ``REMOxxx`` code -- see
:data:`repro.checks.diagnostics.CODES` for the registry and the
README for the table.

Entry points:

- :func:`check_plan` / :func:`check_plan_for_cluster` -- collect every
  finding into a :class:`DiagnosticReport`;
- :func:`assert_plan_valid` -- raise :class:`PlanCheckError` on ERROR
  findings (the hook behind ``RemoPlanner(...).plan(...,
  debug_checks=True)``);
- :func:`check_adaptation_step` -- replay-differ for one adaptation
  step's merge/split trail;
- :func:`inject_fault` -- deterministic corruption injectors used by
  the test suite and ``repro check --corrupt``.
"""

from repro.checks.adaptation import check_adaptation_step
from repro.checks.capacity import check_budgets, check_tree_costs
from repro.checks.controlplane import check_collector_shards, check_tenant_namespaces
from repro.checks.deployment import check_shard_assignment
from repro.checks.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    DiagnosticReport,
    PlanCheckError,
    Severity,
    describe_codes,
)
from repro.checks.faults import FAULT_KINDS, inject_fault
from repro.checks.recompute import (
    NodeAccounting,
    TreeAccounting,
    assert_tree_matches_recompute,
    recompute_tree,
)
from repro.checks.runner import assert_plan_valid, check_plan, check_plan_for_cluster
from repro.checks.structure import check_partition, check_tree

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "DiagnosticReport",
    "FAULT_KINDS",
    "NodeAccounting",
    "PlanCheckError",
    "Severity",
    "TreeAccounting",
    "assert_plan_valid",
    "assert_tree_matches_recompute",
    "check_adaptation_step",
    "check_budgets",
    "check_collector_shards",
    "check_partition",
    "check_plan",
    "check_plan_for_cluster",
    "check_shard_assignment",
    "check_tenant_namespaces",
    "check_tree",
    "check_tree_costs",
    "describe_codes",
    "inject_fault",
    "recompute_tree",
]
