"""Structural invariant checkers (``REMO1xx``).

Two layers of structure are verified without executing anything:

1. **Partition exact cover** -- the plan's partition must cover every
   attribute with a requested pair exactly once, every partition set
   must own exactly one tree, and no tree may collect an attribute or
   a node-attribute pair the workload never asked for.
2. **Tree well-formedness** -- each tree must be a rooted tree in the
   graph-theoretic sense: exactly one root (the node that sends to the
   central collector, parent ``-1`` in assignment records), acyclic
   parent pointers, every member reachable from the root, and the
   parent/children/depth tables mutually consistent.

All traversals are defensive: they must terminate and report on
corrupt structures (that is the whole point), so every walk carries a
visited set instead of trusting the tree's own bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.checks.diagnostics import DiagnosticReport
from repro.core.attributes import AttributeId, NodeAttributePair, NodeId
from repro.core.partition import AttributeSet
from repro.core.plan import MonitoringPlan
from repro.trees.model import MonitoringTree


def _set_label(attr_set: AttributeSet) -> str:
    inner = ",".join(sorted(attr_set)[:4])
    if len(attr_set) > 4:
        inner += ",..."
    return "tree {" + inner + "}"


def check_partition(plan: MonitoringPlan, report: DiagnosticReport) -> None:
    """Exact-cover and tree-existence checks over the whole plan."""
    requested_attrs: Set[AttributeId] = {p.attribute for p in plan.pairs}
    universe = set(plan.partition.universe)

    missing = requested_attrs - universe
    if missing:
        report.add(
            "REMO101",
            "partition",
            f"requested attributes outside every partition set: {sorted(missing)}",
        )
    unrequested = universe - requested_attrs
    if unrequested:
        report.add(
            "REMO105",
            "partition",
            f"partition covers attributes with no requested pairs: {sorted(unrequested)}",
        )

    tree_sets = set(plan.trees)
    partition_sets = set(plan.partition.sets)
    for attr_set in sorted(partition_sets - tree_sets, key=sorted):
        report.add(
            "REMO102",
            _set_label(attr_set),
            f"partition set {sorted(attr_set)} has no tree",
        )
    for attr_set in sorted(tree_sets - partition_sets, key=sorted):
        report.add(
            "REMO103",
            _set_label(attr_set),
            f"tree built for {sorted(attr_set)}, which is not a partition set",
        )

    # Pair-level exact cover: what the forest actually collects must be
    # a subset of what was requested, and each tree must stay inside
    # its own attribute set.
    for attr_set, result in plan.trees.items():
        tree = result.tree
        label = _set_label(attr_set)
        for node in tree.nodes:
            for attr, weight in tree.local_demand(node).items():
                if weight <= 0.0:
                    continue
                if attr not in attr_set:
                    report.add(
                        "REMO104",
                        f"{label} / node {node}",
                        f"collects attribute {attr!r} outside its set {sorted(attr_set)}",
                    )
                elif NodeAttributePair(node, attr) not in plan.pairs:
                    report.add(
                        "REMO115",
                        f"{label} / node {node}",
                        f"collects pair ({node}, {attr!r}) that no task requested",
                    )


def check_tree(
    attr_set: AttributeSet, tree: MonitoringTree, report: DiagnosticReport
) -> bool:
    """Well-formedness of one tree; returns ``True`` when the structure
    is sound enough for a cost recomputation to traverse it."""
    label = _set_label(attr_set)
    members = list(tree.nodes)
    if not members:
        return True
    member_set = set(members)
    sound = True

    # Root: exactly one parentless node, matching the cached pointer.
    roots = [n for n in members if tree.parent(n) is None]
    if len(roots) != 1 or tree.root not in member_set or roots[0] != tree.root:
        report.add(
            "REMO110",
            label,
            f"expected exactly one root matching the cached pointer "
            f"{tree.root!r}, found parentless nodes {sorted(roots)}",
        )
        sound = False

    # Parent/children mirror consistency.
    for node in members:
        parent = tree.parent(node)
        if parent is not None:
            if parent not in member_set:
                report.add(
                    "REMO113",
                    f"{label} / node {node}",
                    f"parent {parent} is not a member of the tree",
                )
                sound = False
            elif node not in tree.children(parent):
                report.add(
                    "REMO113",
                    f"{label} / node {node}",
                    f"missing from parent {parent}'s children set",
                )
                sound = False
        for child in tree.children(node):
            if child not in member_set or tree.parent(child) != node:
                report.add(
                    "REMO113",
                    f"{label} / node {node}",
                    f"children set names {child}, whose parent pointer disagrees",
                )
                sound = False

    # Cycles: walk parent chains with memoized termination results.
    on_cycle = _nodes_on_cycles(tree, members)
    for node in sorted(on_cycle):
        report.add(
            "REMO111",
            f"{label} / node {node}",
            "parent chain never reaches the root (cycle)",
        )
    if on_cycle:
        sound = False

    # Reachability from the root via children tables.
    reachable: Set[NodeId] = set()
    depths: Dict[NodeId, int] = {}
    if len(roots) == 1 and roots[0] in member_set:
        stack: List[NodeId] = [roots[0]]
        reachable.add(roots[0])
        depths[roots[0]] = 0
        while stack:
            node = stack.pop()
            for child in tree.children(node):
                if child in reachable or child not in member_set:
                    continue
                reachable.add(child)
                depths[child] = depths[node] + 1
                stack.append(child)
        for node in sorted(member_set - reachable - on_cycle):
            report.add(
                "REMO112",
                f"{label} / node {node}",
                "unreachable from the root",
            )
        if member_set - reachable:
            sound = False

    # Depth cache consistency (only meaningful on the reachable part).
    if sound:
        for node in sorted(reachable):
            if tree.depth(node) != depths[node]:
                report.add(
                    "REMO114",
                    f"{label} / node {node}",
                    f"cached depth {tree.depth(node)} != recomputed {depths[node]}",
                )
        # Idle relay leaves: structurally legal, pure waste.
        for node in sorted(member_set):
            local = {a: w for a, w in tree.local_demand(node).items() if w > 0.0}
            if not local and not tree.children(node) and tree.parent(node) is not None:
                report.add(
                    "REMO117",
                    f"{label} / node {node}",
                    "leaf carries no local values",
                )
    return sound


def _nodes_on_cycles(tree: MonitoringTree, members: List[NodeId]) -> Set[NodeId]:
    """Members whose parent chain loops instead of reaching the root."""
    TERMINATES, LOOPS = 1, 2
    state: Dict[NodeId, int] = {}
    member_set = set(members)
    on_cycle: Set[NodeId] = set()
    for start in members:
        if start in state:
            continue
        path: List[NodeId] = []
        path_index: Dict[NodeId, int] = {}
        node: Optional[NodeId] = start
        verdict = TERMINATES
        while node is not None and node in member_set:
            if node in state:
                verdict = state[node]
                break
            if node in path_index:
                # Found a fresh cycle: everything from its first
                # occurrence onward is on the cycle.
                verdict = LOOPS
                for cyc in path[path_index[node]:]:
                    on_cycle.add(cyc)
                break
            path_index[node] = len(path)
            path.append(node)
            node = tree.parent(node)
        for visited in path:
            state[visited] = verdict
            if verdict == LOOPS:
                on_cycle.add(visited)
    # Nodes whose chain merely *leads into* a cycle are reported as on
    # the cycle's chain too -- their path to the collector is broken
    # either way -- but the distinct REMO112 orphan check covers nodes
    # disconnected without a cycle, so keep only true loop members plus
    # their upstream here.
    return on_cycle
