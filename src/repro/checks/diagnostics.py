"""Diagnostic framework for the plan-invariant verifier.

Every invariant the checkers in this package enforce is identified by
a stable code so that tests, CI gates, and operators can key on exact
failure classes rather than message strings:

- ``REMO1xx`` -- structural invariants (partition exact cover, tree
  well-formedness);
- ``REMO2xx`` -- capacity and cost-model invariants (recomputed load
  within budgets, cached bookkeeping in sync with a from-scratch
  recomputation);
- ``REMO3xx`` -- adaptation legality (a pre/post-step differ over the
  merge/split operations the throttled search reports applying).

A :class:`Diagnostic` carries the code, a severity, a human-readable
location (which tree, which node), the concrete finding, and a fix
hint.  A :class:`DiagnosticReport` aggregates them and can escalate to
a :class:`PlanCheckError` (an ``AssertionError`` subclass, matching
the repo's existing ``validate``/``TreeInvariantError`` idiom).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings mean the plan violates a paper invariant and
    must not be deployed; ``WARNING`` findings are legal but wasteful
    or suspicious; ``INFO`` findings are observations.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    title: str
    severity: Severity
    hint: str


#: Every diagnostic code the checkers can emit, with its default
#: severity and fix hint.  Codes are append-only: never renumber.
CODES: Dict[str, CodeInfo] = {
    info.code: info
    for info in (
        # -- REMO1xx: structural ---------------------------------------
        CodeInfo(
            "REMO101",
            "partition does not cover the requested attributes",
            Severity.ERROR,
            "every attribute with a requested pair must belong to exactly one "
            "partition set; re-plan or extend the partition",
        ),
        CodeInfo(
            "REMO102",
            "partition set has no tree",
            Severity.ERROR,
            "each partition set needs exactly one built tree; rebuild the "
            "forest for the full partition",
        ),
        CodeInfo(
            "REMO103",
            "tree exists for a set outside the partition",
            Severity.ERROR,
            "drop the stray tree or add its attribute set to the partition",
        ),
        CodeInfo(
            "REMO104",
            "tree collects an attribute outside its partition set",
            Severity.ERROR,
            "strip the foreign attribute from the tree's local demands or "
            "move it to the owning set's tree",
        ),
        CodeInfo(
            "REMO105",
            "partition names an attribute with no requested pairs",
            Severity.WARNING,
            "harmless but wasteful: retire the attribute from the partition "
            "on the next re-plan",
        ),
        CodeInfo(
            "REMO110",
            "tree root violation",
            Severity.ERROR,
            "a non-empty tree must have exactly one node with parent None "
            "and it must match the cached root pointer",
        ),
        CodeInfo(
            "REMO111",
            "cycle in parent pointers",
            Severity.ERROR,
            "a monitoring tree must be acyclic; rebuild the tree from its "
            "membership records",
        ),
        CodeInfo(
            "REMO112",
            "orphan node disconnected from the root",
            Severity.ERROR,
            "every member must reach the collector via the root; re-attach "
            "or remove the orphan branch",
        ),
        CodeInfo(
            "REMO113",
            "parent/children tables disagree",
            Severity.ERROR,
            "parent pointers and children sets must mirror each other; the "
            "structure was mutated without going through the tree API",
        ),
        CodeInfo(
            "REMO114",
            "cached depth differs from the recomputed depth",
            Severity.ERROR,
            "depths drive adjustment heuristics; refresh them after moving "
            "branches",
        ),
        CodeInfo(
            "REMO115",
            "plan collects a pair that was never requested",
            Severity.ERROR,
            "trees may only carry requested node-attribute pairs; strip the "
            "stale local demand",
        ),
        CodeInfo(
            "REMO117",
            "idle relay leaf (no local values, no children)",
            Severity.WARNING,
            "the node spends a periodic message delivering nothing; prune it",
        ),
        # -- REMO2xx: capacity / cost ----------------------------------
        CodeInfo(
            "REMO201",
            "node capacity exceeded",
            Severity.ERROR,
            "recomputed send+recv load across all trees exceeds the node "
            "budget b_i; the plan is infeasible under the C + a*x model",
        ),
        CodeInfo(
            "REMO202",
            "central collector capacity exceeded",
            Severity.ERROR,
            "the sum of root messages exceeds the collector budget; merge "
            "trees or shed pairs",
        ),
        CodeInfo(
            "REMO203",
            "cached cost diverges from recomputation",
            Severity.ERROR,
            "send/recv/value bookkeeping drifted from what the CostModel "
            "yields on the actual structure; incremental update bug",
        ),
        CodeInfo(
            "REMO204",
            "cached pair count diverges from recomputation",
            Severity.ERROR,
            "pair-count bookkeeping drifted; coverage metrics are lying",
        ),
        CodeInfo(
            "REMO205",
            "invalid demand or message weight",
            Severity.ERROR,
            "demand weights must be > 0 and message weights > 0; reject the "
            "workload at the task manager",
        ),
        # -- REMO3xx: adaptation ---------------------------------------
        CodeInfo(
            "REMO301",
            "adaptation applied an illegal merge/split",
            Severity.ERROR,
            "an applied operation does not name member sets of the partition "
            "it was applied to; the restricted search corrupted its state",
        ),
        CodeInfo(
            "REMO302",
            "adaptation result diverges from replaying its operations",
            Severity.ERROR,
            "replaying the reported merge/split sequence on the pre-step "
            "partition does not yield the post-step partition",
        ),
        CodeInfo(
            "REMO303",
            "adaptation changed the attribute universe",
            Severity.ERROR,
            "merge/split operations can never add or retire attribute types; "
            "universe changes must come from the task delta, not the search",
        ),
        # -- REMO35x: deployment sharding ------------------------------
        CodeInfo(
            "REMO351",
            "shard assignment does not cover the plan's nodes exactly",
            Severity.ERROR,
            "every participating node must belong to exactly one worker "
            "shard; rebuild the shard plan from the plan's node set",
        ),
        CodeInfo(
            "REMO352",
            "reserved address assigned to a worker shard",
            Severity.ERROR,
            "the collector and per-worker control inboxes live at reserved "
            "negative addresses; shards may only contain plan nodes",
        ),
        CodeInfo(
            "REMO353",
            "two deployment processes share one endpoint",
            Severity.ERROR,
            "each worker and the collector need a distinct host:port to "
            "listen on; re-allocate ports",
        ),
        CodeInfo(
            "REMO354",
            "empty worker shard",
            Severity.WARNING,
            "a worker process with no nodes only burns a process slot; "
            "lower --workers or rebalance the shards",
        ),
        # -- REMO36x: control plane (collector shards, tenancy) --------
        CodeInfo(
            "REMO361",
            "collector-shard assignment does not cover the partition exactly",
            Severity.ERROR,
            "every partition set must map to exactly one collector shard "
            "in [0, shards); rebuild with ShardedPlan.build",
        ),
        CodeInfo(
            "REMO362",
            "collector shard exceeds the central capacity budget",
            Severity.ERROR,
            "the root messages landing on one collector shard exceed the "
            "per-collector budget; add shards or rebalance the assignment",
        ),
        CodeInfo(
            "REMO363",
            "empty collector shard",
            Severity.WARNING,
            "a collector shard hosting no trees only burns an agent slot; "
            "lower --collectors or switch the shard mode",
        ),
        CodeInfo(
            "REMO364",
            "malformed tenant or task identifier",
            Severity.ERROR,
            "tenant names and task ids must be non-empty and must not "
            "contain the '/' namespace separator; reject at the API",
        ),
        CodeInfo(
            "REMO365",
            "tenant namespace with no tasks",
            Severity.WARNING,
            "an empty tenant namespace still occupies control-plane state; "
            "drop the tenant or submit its tasks",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One verified finding.

    ``location`` is a short human-readable anchor such as
    ``"tree {a,b} / node 5"`` or ``"partition"``.
    """

    code: str
    severity: Severity
    location: str
    message: str
    hint: str

    @classmethod
    def of(
        cls,
        code: str,
        location: str,
        message: str,
        severity: Optional[Severity] = None,
    ) -> "Diagnostic":
        """Build a diagnostic from the code registry.

        The registry supplies the default severity and the fix hint;
        ``severity`` overrides the default (e.g. downgrading a finding
        in an advisory context).
        """
        info = CODES[code]
        return cls(
            code=code,
            severity=severity if severity is not None else info.severity,
            location=location,
            message=message,
            hint=info.hint,
        )

    def format(self, with_hint: bool = False) -> str:
        """Render as ``SEVERITY CODE [location]: message``."""
        line = f"{self.severity.value.upper()} {self.code} [{self.location}]: {self.message}"
        if with_hint:
            line += f"\n    hint: {self.hint}"
        return line


class PlanCheckError(AssertionError):
    """Raised when a check run finds ERROR-severity diagnostics."""

    def __init__(self, context: str, report: "DiagnosticReport") -> None:
        self.report = report
        lines = [d.format() for d in report.errors]
        super().__init__(
            f"{context}: {len(report.errors)} invariant violation(s)\n"
            + "\n".join(lines)
        )


@dataclass
class DiagnosticReport:
    """An ordered collection of findings from one check run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        location: str,
        message: str,
        severity: Optional[Severity] = None,
    ) -> None:
        """Append a finding built from the code registry."""
        self.diagnostics.append(Diagnostic.of(code, location, message, severity))

    def extend(self, other: "DiagnosticReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        """Truthy when any finding exists (of any severity)."""
        return bool(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> List[str]:
        """The distinct codes present, in first-seen order."""
        seen: List[str] = []
        for d in self.diagnostics:
            if d.code not in seen:
                seen.append(d.code)
        return seen

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def format(self, with_hints: bool = False) -> str:
        """All findings, one per line (empty string when clean)."""
        return "\n".join(d.format(with_hint=with_hints) for d in self.diagnostics)

    def raise_if_errors(self, context: str) -> None:
        """Escalate ERROR findings to a :class:`PlanCheckError`."""
        if self.has_errors:
            raise PlanCheckError(context, self)


def describe_codes() -> Iterable[CodeInfo]:
    """The code registry in code order (for ``repro check --codes``)."""
    return sorted(CODES.values(), key=lambda info: info.code)
