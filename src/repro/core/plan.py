"""Monitoring plans: an evaluated forest of collection trees.

A :class:`MonitoringPlan` is the planner's output and the unit the
local search compares: the partition, one built tree per partition
set, and the de-duplicated pair set the forest was asked to collect.
It exposes the two quantities every algorithm in the paper optimizes
or measures -- the number of node-attribute pairs actually collected
(Problem Statement 1's objective) and the monitoring message volume
per unit time (the adaptation machinery's ``C_cur``).
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

from repro.core.attributes import NodeAttributePair, NodeId
from repro.core.cost import CostModel
from repro.core.partition import AttributeSet, Partition
from repro.trees.base import TreeBuildResult

#: One monitoring edge: node -> parent within the tree for a given
#: attribute set.  Parent ``-1`` denotes the central collector.
Assignment = Tuple[NodeId, AttributeSet, NodeId]


class MonitoringPlan:
    """An immutable-by-convention snapshot of a planned forest."""

    def __init__(
        self,
        partition: Partition,
        trees: Mapping[AttributeSet, TreeBuildResult],
        pairs: Iterable[NodeAttributePair],
        cost_model: CostModel,
    ) -> None:
        if set(trees) != set(partition.sets):
            raise ValueError("plan must contain exactly one tree per partition set")
        self.partition = partition
        self.trees: Dict[AttributeSet, TreeBuildResult] = dict(trees)
        self.pairs: FrozenSet[NodeAttributePair] = frozenset(pairs)
        self.cost = cost_model

    # ------------------------------------------------------------------
    # Objective metrics
    # ------------------------------------------------------------------
    def collected_pair_count(self) -> int:
        """Node-attribute pairs the forest delivers to the collector."""
        return sum(result.tree.pair_count() for result in self.trees.values())

    def requested_pair_count(self) -> int:
        return len(self.pairs)

    def coverage(self) -> float:
        """Fraction of requested pairs collected (the paper's headline
        "percentage of collected values")."""
        total = self.requested_pair_count()
        if total == 0:
            return 1.0
        return self.collected_pair_count() / total

    def total_message_cost(self) -> float:
        """Send-side monitoring traffic per unit time across the forest.

        Includes each tree root's message to the central collector;
        this is the ``C_cur`` volume in the cost-benefit throttling
        formula (Section 4.2).
        """
        return sum(result.tree.total_message_cost() for result in self.trees.values())

    def uncollected_by_set(self) -> Dict[AttributeSet, int]:
        """Per-tree count of requested pairs the tree failed to include."""
        requested: Dict[AttributeSet, int] = {s: 0 for s in self.partition.sets}
        attr_to_set = {a: s for s in self.partition.sets for a in s}
        for pair in self.pairs:
            target = attr_to_set.get(pair.attribute)
            if target is not None:
                requested[target] += 1
        return {
            s: requested[s] - self.trees[s].tree.pair_count() for s in self.partition.sets
        }

    def collected_pairs(self) -> Set[NodeAttributePair]:
        """The concrete pairs the forest delivers (for the simulator)."""
        result: Set[NodeAttributePair] = set()
        for attr_set, build in self.trees.items():
            tree = build.tree
            for node in tree.nodes:
                for attr in tree.local_demand(node):
                    result.add(NodeAttributePair(node, attr))
        return result

    # ------------------------------------------------------------------
    # Resource accounting
    # ------------------------------------------------------------------
    def node_usage(self) -> Dict[NodeId, float]:
        """Total capacity consumed per node across all trees."""
        usage: Dict[NodeId, float] = {}
        for result in self.trees.values():
            tree = result.tree
            for node in tree.nodes:
                usage[node] = usage.get(node, 0.0) + tree.used(node)
        return usage

    def central_usage(self) -> float:
        """Capacity consumed at the central collector (one message per tree)."""
        return sum(result.tree.central_used() for result in self.trees.values())

    def tree_count(self) -> int:
        return len(self.trees)

    def max_tree_depth(self) -> int:
        """Deepest tree in the forest (drives worst-case staleness)."""
        heights = [result.tree.height() for result in self.trees.values()]
        return max(heights) if heights else -1

    # ------------------------------------------------------------------
    # Structure (for adaptation diffs and the simulator)
    # ------------------------------------------------------------------
    def assignments(self) -> Set[Assignment]:
        """Every monitoring edge, tagged by its tree's attribute set.

        The symmetric difference between two plans' assignments counts
        the connect/disconnect control messages an adaptation would
        send -- the paper's ``M_adapt``.
        """
        edges: Set[Assignment] = set()
        for attr_set, result in self.trees.items():
            tree = result.tree
            for node in tree.nodes:
                parent = tree.parent(node)
                edges.add((node, attr_set, parent if parent is not None else -1))
        return edges

    def edge_multiset(self) -> Dict[Tuple[NodeId, NodeId], int]:
        """Structural ``(node, parent)`` connections with multiplicity.

        Attribute-set labels are deliberately excluded: a tree whose set
        shrinks (an attribute retired system-wide) keeps its structure,
        and no connect/disconnect control message is sent for it.
        """
        edges: Dict[Tuple[NodeId, NodeId], int] = {}
        for result in self.trees.values():
            tree = result.tree
            for node in tree.nodes:
                parent = tree.parent(node)
                key = (node, parent if parent is not None else -1)
                edges[key] = edges.get(key, 0) + 1
        return edges

    @staticmethod
    def edge_multiset_diff(
        old: Dict[Tuple[NodeId, NodeId], int],
        new: Dict[Tuple[NodeId, NodeId], int],
    ) -> int:
        """Connect/disconnect messages between two edge multisets."""
        keys = set(old) | set(new)
        return sum(abs(old.get(k, 0) - new.get(k, 0)) for k in keys)

    def adaptation_cost_from(self, previous: "MonitoringPlan") -> int:
        """Number of edge changes relative to ``previous`` (``M_adapt``)."""
        return self.edge_multiset_diff(previous.edge_multiset(), self.edge_multiset())

    def fingerprint(self) -> str:
        """Canonical content digest for bit-identity comparisons.

        Two plans fingerprint equal iff they have the same partition,
        the same tree structures (edges in canonical order), the same
        per-node local demands, and bitwise-equal send costs (floats
        rendered via ``repr``, which round-trips exactly).  Used by the
        seed-identity tests to assert that default planner settings
        reproduce PR-4 plans byte for byte.
        """
        digest = hashlib.sha256()
        for attr_set in sorted(self.trees, key=_set_key):
            digest.update(b"set:")
            digest.update(_set_key(attr_set).encode("utf-8"))
            tree = self.trees[attr_set].tree
            for node in sorted(tree.nodes):
                parent = tree.parent(node)
                demand = ",".join(
                    f"{attr}={weight!r}"
                    for attr, weight in sorted(tree.local_demand(node).items())
                )
                record = (
                    f"|{node}>{-1 if parent is None else parent}"
                    f";{tree.send_cost(node)!r};{demand}"
                )
                digest.update(record.encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, node_capacities: Mapping[NodeId, float], central_capacity: float) -> None:
        """Check every per-tree invariant plus the cross-tree budget.

        ``node_capacities`` are full node budgets ``b_i``; the sum of a
        node's usage across all trees must stay within them (and the
        collector within ``central_capacity``).
        """
        for result in self.trees.values():
            result.tree.validate()
        for node, used in self.node_usage().items():
            budget = node_capacities.get(node, 0.0)
            if used > budget + 1e-6:
                raise AssertionError(
                    f"cross-tree capacity violated at node {node}: "
                    f"used {used:.6f} > budget {budget:.6f}"
                )
        if self.central_usage() > central_capacity + 1e-6:
            raise AssertionError(
                f"central capacity violated: {self.central_usage():.6f} > "
                f"{central_capacity:.6f}"
            )
        collected = self.collected_pairs()
        if not collected <= self.pairs:
            extra = collected - self.pairs
            raise AssertionError(f"plan collects pairs never requested: {sorted(extra)[:5]}")


# ----------------------------------------------------------------------
# Collector sharding
# ----------------------------------------------------------------------

#: Which collector shard each partition set reports to.
ShardAssignment = Dict[AttributeSet, int]

#: Shard modes accepted by :func:`shard_partition_sets`.
SHARD_MODES = ("hash", "range")


def _set_key(attr_set: AttributeSet) -> str:
    """Canonical string key for a partition set (stable across processes)."""
    return ",".join(str(attr) for attr in sorted(attr_set))


def shard_partition_sets(
    sets: Iterable[AttributeSet],
    shards: int,
    mode: str = "hash",
) -> ShardAssignment:
    """Assign each partition set to one of ``shards`` collector roots.

    ``hash`` buckets by CRC-32 of the canonical attribute list -- stable
    across interpreter runs and processes (never the builtin ``hash``,
    which is salted per process).  ``range`` sorts sets by that same key
    and cuts the order into near-equal contiguous blocks, which keeps
    lexicographically adjacent attribute sets on the same collector.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    if mode not in SHARD_MODES:
        raise ValueError(f"unknown shard mode {mode!r}; expected one of {SHARD_MODES}")
    ordered = sorted(sets, key=_set_key)
    assignment: ShardAssignment = {}
    if mode == "hash":
        for attr_set in ordered:
            digest = zlib.crc32(_set_key(attr_set).encode("utf-8"))
            assignment[attr_set] = digest % shards
    else:
        total = len(ordered)
        for index, attr_set in enumerate(ordered):
            assignment[attr_set] = (index * shards) // total if total else 0
    return assignment


class ShardedPlan:
    """A :class:`MonitoringPlan` whose trees are split across collector roots.

    Each partition set (and therefore each collection tree) reports to
    exactly one of ``shards`` collector shards; a shard hosts the trees
    assigned to it and scores only the pairs those trees were asked to
    collect.  Shard 0 additionally owns any requested pair whose
    attribute appears in no partition set (uncoverable pairs), so the
    shards' pair sets always partition ``plan.pairs`` exactly.
    """

    def __init__(
        self,
        plan: MonitoringPlan,
        assignment: Mapping[AttributeSet, int],
        shards: int,
    ) -> None:
        self.plan = plan
        self.assignment: ShardAssignment = dict(assignment)
        self.shards = shards
        self._attr_shard: Dict[str, int] = {}
        for attr_set, shard in self.assignment.items():
            for attr in attr_set:
                self._attr_shard[str(attr)] = shard

    @classmethod
    def build(cls, plan: MonitoringPlan, shards: int, mode: str = "hash") -> "ShardedPlan":
        return cls(plan, shard_partition_sets(plan.partition.sets, shards, mode), shards)

    def shard_of(self, attr_set: AttributeSet) -> int:
        return self.assignment[attr_set]

    def sets_for(self, shard: int) -> List[AttributeSet]:
        """Partition sets hosted by ``shard``, in canonical order."""
        return sorted(
            (s for s, owner in self.assignment.items() if owner == shard),
            key=_set_key,
        )

    def pairs_for(self, shard: int) -> Set[NodeAttributePair]:
        """Requested pairs scored by ``shard`` (uncoverable pairs -> shard 0)."""
        result: Set[NodeAttributePair] = set()
        for pair in self.plan.pairs:
            owner = self._attr_shard.get(str(pair.attribute), 0)
            if owner == shard:
                result.add(pair)
        return result

    def nodes_for(self, shard: int) -> List[NodeId]:
        """Nodes participating in any tree hosted by ``shard``, sorted."""
        nodes: Set[NodeId] = set()
        for attr_set in self.sets_for(shard):
            nodes.update(self.plan.trees[attr_set].tree.nodes)
        return sorted(nodes)

    def collector_of_sets(self) -> Dict[AttributeSet, int]:
        """Alias of the raw assignment, as a fresh dict."""
        return dict(self.assignment)

    def subplan(self, shard: int) -> MonitoringPlan:
        """The shard's own forest as a standalone :class:`MonitoringPlan`."""
        sets = self.sets_for(shard)
        trees = {s: self.plan.trees[s] for s in sets}
        return MonitoringPlan(Partition(sets), trees, self.pairs_for(shard), self.plan.cost)

    def central_usage_by_shard(self) -> Dict[int, float]:
        """Collector capacity consumed at each shard root."""
        usage: Dict[int, float] = {shard: 0.0 for shard in range(self.shards)}
        for attr_set, shard in self.assignment.items():
            usage[shard] += self.plan.trees[attr_set].tree.central_used()
        return usage

    def summary(self) -> Dict[str, object]:
        """Status-API-friendly description of the shard layout."""
        return {
            "shards": self.shards,
            "sets_per_shard": {
                str(shard): len(self.sets_for(shard)) for shard in range(self.shards)
            },
            "pairs_per_shard": {
                str(shard): len(self.pairs_for(shard)) for shard in range(self.shards)
            },
            "central_usage": {
                str(shard): usage
                for shard, usage in self.central_usage_by_shard().items()
            },
        }
