"""Attribute and node-attribute-pair primitives.

The paper models each monitoring node as exposing a set of observable
*attributes* (interchangeably called *metrics*): locally observable,
continuously changing variables such as CPU utilization or a stream
operator's tuple rate.  Attributes at different nodes with the same
name are attributes of the same *type*.

A monitoring task ultimately reduces to a set of *node-attribute
pairs* ``(i, j)`` -- "collect attribute ``j`` from node ``i``" -- and
the planner's objective (Problem Statement 1) is to maximize the
number of such pairs delivered to the central collector without
violating any node's resource constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set, Tuple

#: Node identifiers are small integers assigned by the cluster substrate.
NodeId = int

#: Attribute identifiers are short strings such as ``"cpu"`` or
#: ``"op12.tuple_rate"``.  Equal strings denote the same attribute type.
AttributeId = str


@dataclass(frozen=True, order=True)
class NodeAttributePair:
    """A single unit of monitoring work: attribute ``attribute`` at node ``node``.

    Instances are immutable, hashable, and totally ordered so they can
    be used in sets, as dict keys, and in deterministic sorted output.
    """

    node: NodeId
    attribute: AttributeId

    def as_tuple(self) -> Tuple[NodeId, AttributeId]:
        """Return the pair as a plain ``(node, attribute)`` tuple."""
        return (self.node, self.attribute)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return f"{self.node}:{self.attribute}"


def pairs_for(nodes: Iterable[NodeId], attributes: Iterable[AttributeId]) -> Set[NodeAttributePair]:
    """Cartesian helper: every attribute observed at every node.

    This mirrors how a monitoring task ``t = (A_t, N_t)`` expands into
    its node-attribute pair list (Definition 1).
    """
    attrs = tuple(attributes)
    return {NodeAttributePair(n, a) for n in nodes for a in attrs}


def attributes_of(pairs: Iterable[NodeAttributePair]) -> FrozenSet[AttributeId]:
    """The set of attribute types appearing in ``pairs``."""
    return frozenset(p.attribute for p in pairs)


def nodes_of(pairs: Iterable[NodeAttributePair]) -> FrozenSet[NodeId]:
    """The set of nodes appearing in ``pairs``."""
    return frozenset(p.node for p in pairs)


def group_by_attribute(pairs: Iterable[NodeAttributePair]) -> dict:
    """Group pairs into ``{attribute: set_of_nodes}``.

    The partition machinery works at attribute granularity; this is the
    canonical bridge from a flat pair set to that view.
    """
    grouped: dict = {}
    for pair in pairs:
        grouped.setdefault(pair.attribute, set()).add(pair.node)
    return grouped


def group_by_node(pairs: Iterable[NodeAttributePair]) -> dict:
    """Group pairs into ``{node: set_of_attributes}``."""
    grouped: dict = {}
    for pair in pairs:
        grouped.setdefault(pair.node, set()).add(pair.attribute)
    return grouped
