"""Monitoring tasks and the task manager.

A monitoring task ``t = (A_t, N_t)`` (Definition 1) periodically
collects the values of every attribute in ``A_t`` from every node in
``N_t``.  Different tasks routinely overlap -- e.g. two tasks both
collecting ``cpu`` from node ``b`` -- and sending the same value twice
is pure waste, so the *task manager* (Section 2.2) flattens the live
task set into a de-duplicated list of node-attribute pairs before any
topology planning happens.

The task manager is also the mutation point for the runtime-adaptation
machinery (Section 4): adding, removing, or modifying a task yields a
:class:`TaskSetDelta` describing exactly which node-attribute pairs
became newly required or are no longer required by *any* task.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.attributes import AttributeId, NodeAttributePair, NodeId


@dataclass(frozen=True)
class MonitoringTask:
    """An application state monitoring task (Definition 1).

    Parameters
    ----------
    task_id:
        User-assigned unique identifier.
    attributes:
        The attribute types ``A_t`` to collect.
    nodes:
        The nodes ``N_t`` to collect them from.
    frequency:
        Collection frequency relative to the system's base collection
        period (1.0 = every period).  Values in ``(0, 1]``; used by the
        heterogeneous-update-frequency extension (Section 6.3).
    """

    task_id: str
    attributes: FrozenSet[AttributeId]
    nodes: FrozenSet[NodeId]
    frequency: float = 1.0

    def __init__(
        self,
        task_id: str,
        attributes: Iterable[AttributeId],
        nodes: Iterable[NodeId],
        frequency: float = 1.0,
    ) -> None:
        object.__setattr__(self, "task_id", task_id)
        object.__setattr__(self, "attributes", frozenset(attributes))
        object.__setattr__(self, "nodes", frozenset(nodes))
        object.__setattr__(self, "frequency", frequency)
        if not self.task_id:
            raise ValueError("task_id must be a non-empty string")
        if not self.attributes:
            raise ValueError(f"task {task_id!r} must monitor at least one attribute")
        if not self.nodes:
            raise ValueError(f"task {task_id!r} must monitor at least one node")
        if not 0.0 < self.frequency <= 1.0:
            raise ValueError(
                f"task {task_id!r} frequency must be in (0, 1], got {frequency}"
            )

    def pairs(self) -> Set[NodeAttributePair]:
        """Expand the task into its node-attribute pair list."""
        return {NodeAttributePair(n, a) for n in self.nodes for a in self.attributes}

    @property
    def size(self) -> int:
        """Number of node-attribute pairs the task requests."""
        return len(self.attributes) * len(self.nodes)

    def with_attributes(self, attributes: Iterable[AttributeId]) -> "MonitoringTask":
        """A copy of this task monitoring a different attribute set."""
        return MonitoringTask(self.task_id, attributes, self.nodes, self.frequency)

    def with_nodes(self, nodes: Iterable[NodeId]) -> "MonitoringTask":
        """A copy of this task monitoring a different node set."""
        return MonitoringTask(self.task_id, self.attributes, nodes, self.frequency)


@dataclass(frozen=True)
class TaskSetDelta:
    """The pair-level effect of one task-set mutation.

    ``added`` holds pairs that were not required by any task before the
    mutation and are required now; ``removed`` holds pairs no longer
    required by any task.  Pairs that stay covered by some other task
    appear in neither set -- exactly the de-duplication semantics the
    adaptation planner needs.
    """

    added: FrozenSet[NodeAttributePair]
    removed: FrozenSet[NodeAttributePair]

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed


class DuplicateTaskError(ValueError):
    """Raised when adding a task whose id is already registered."""


class UnknownTaskError(KeyError):
    """Raised when removing or modifying a task id that is not registered."""


class TaskManager:
    """Registry of live monitoring tasks with pair-level de-duplication.

    The manager maintains a reference count per node-attribute pair so
    that the de-duplicated pair set -- the planner's input -- can be
    kept incrementally and every mutation reports an exact
    :class:`TaskSetDelta`.
    """

    def __init__(self, tasks: Iterable[MonitoringTask] = ()) -> None:
        self._tasks: Dict[str, MonitoringTask] = {}
        self._refcount: Counter = Counter()
        for task in tasks:
            self.add_task(task)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __iter__(self) -> Iterator[MonitoringTask]:
        return iter(self._tasks.values())

    def get(self, task_id: str) -> MonitoringTask:
        """Return the registered task with ``task_id``."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise UnknownTaskError(task_id) from None

    @property
    def tasks(self) -> List[MonitoringTask]:
        """All registered tasks, in registration order."""
        return list(self._tasks.values())

    def pairs(self) -> Set[NodeAttributePair]:
        """The de-duplicated node-attribute pair set (the planner input)."""
        return set(self._refcount)

    def pair_count(self) -> int:
        """Number of distinct node-attribute pairs currently required."""
        return len(self._refcount)

    def multiplicity(self, pair: NodeAttributePair) -> int:
        """How many registered tasks require ``pair``."""
        return self._refcount.get(pair, 0)

    def tasks_requiring(self, pair: NodeAttributePair) -> List[MonitoringTask]:
        """All tasks whose expansion contains ``pair``."""
        return [
            t
            for t in self._tasks.values()
            if pair.node in t.nodes and pair.attribute in t.attributes
        ]

    # ------------------------------------------------------------------
    # Mutation side
    # ------------------------------------------------------------------
    def add_task(self, task: MonitoringTask) -> TaskSetDelta:
        """Register ``task``; return the newly required pairs."""
        if task.task_id in self._tasks:
            raise DuplicateTaskError(task.task_id)
        added = set()
        for pair in task.pairs():
            if self._refcount[pair] == 0:
                added.add(pair)
            self._refcount[pair] += 1
        self._tasks[task.task_id] = task
        return TaskSetDelta(frozenset(added), frozenset())

    def remove_task(self, task_id: str) -> TaskSetDelta:
        """Deregister the task; return the pairs no longer required."""
        task = self.get(task_id)
        removed = set()
        for pair in task.pairs():
            self._refcount[pair] -= 1
            if self._refcount[pair] == 0:
                del self._refcount[pair]
                removed.add(pair)
        del self._tasks[task_id]
        return TaskSetDelta(frozenset(), frozenset(removed))

    def modify_task(self, task: MonitoringTask) -> TaskSetDelta:
        """Replace the registered task with the same id; return the net delta."""
        old = self.get(task.task_id)
        old_pairs = old.pairs()
        new_pairs = task.pairs()
        removed = set()
        for pair in old_pairs - new_pairs:
            self._refcount[pair] -= 1
            if self._refcount[pair] == 0:
                del self._refcount[pair]
                removed.add(pair)
        added = set()
        for pair in new_pairs - old_pairs:
            if self._refcount[pair] == 0:
                added.add(pair)
            self._refcount[pair] += 1
        self._tasks[task.task_id] = task
        return TaskSetDelta(frozenset(added), frozenset(removed))

    def apply(self, delta_ops: Iterable[Tuple[str, Optional[MonitoringTask]]]) -> TaskSetDelta:
        """Apply a batch of ``(op, task)`` mutations, returning the net delta.

        ``op`` is ``"add"``, ``"remove"`` (task may be the task object or
        just carry the id), or ``"modify"``.  Batching matters for
        adaptation: the net delta of a batch can be far smaller than the
        union of per-op deltas when ops cancel out.
        """
        added: Set[NodeAttributePair] = set()
        removed: Set[NodeAttributePair] = set()
        for op, task in delta_ops:
            if op == "add":
                assert task is not None
                delta = self.add_task(task)
            elif op == "remove":
                assert task is not None
                delta = self.remove_task(task.task_id)
            elif op == "modify":
                assert task is not None
                delta = self.modify_task(task)
            else:
                raise ValueError(f"unknown task operation {op!r}")
            # Net the deltas: an add followed by a remove cancels.
            for pair in delta.added:
                if pair in removed:
                    removed.discard(pair)
                else:
                    added.add(pair)
            for pair in delta.removed:
                if pair in added:
                    added.discard(pair)
                else:
                    removed.add(pair)
        return TaskSetDelta(frozenset(added), frozenset(removed))


#: Separates the tenant name from the task id in a qualified task id.
TENANT_SEPARATOR = "/"


class InvalidTenantError(ValueError):
    """Raised for empty tenant/task names or names containing the separator."""


def validate_tenant_name(tenant: str) -> str:
    """Reject tenant names that cannot round-trip through qualified ids."""
    if not tenant:
        raise InvalidTenantError("tenant name must be a non-empty string")
    if TENANT_SEPARATOR in tenant:
        raise InvalidTenantError(
            f"tenant name {tenant!r} must not contain {TENANT_SEPARATOR!r}"
        )
    return tenant


def qualified_task_id(tenant: str, task_id: str) -> str:
    """The globally unique id for a tenant's task: ``tenant/task_id``."""
    return f"{tenant}{TENANT_SEPARATOR}{task_id}"


class MultiTenantTaskManager:
    """Per-tenant task namespaces with global pair-level de-duplication.

    Each tenant owns an isolated :class:`TaskManager`, so task ids only
    need to be unique *within* a tenant and dedup semantics (refcounts,
    duplicate-id errors) are scoped per tenant.  Across tenants the
    manager counts how many tenants require each node-attribute pair and
    reports global :class:`TaskSetDelta`\\ s on the 0->1 / 1->0
    transitions -- the planner plans the union of all tenants' pairs,
    collecting each pair once no matter how many tenants want it.
    """

    def __init__(self) -> None:
        self._tenants: Dict[str, TaskManager] = {}
        self._tenant_count: Counter = Counter()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def tenants(self) -> List[str]:
        """All tenant names with a registered namespace, sorted."""
        return sorted(self._tenants)

    def has_tenant(self, tenant: str) -> bool:
        return tenant in self._tenants

    def tasks(self, tenant: str) -> List[MonitoringTask]:
        """The tenant's registered tasks (empty for unknown tenants)."""
        manager = self._tenants.get(tenant)
        return manager.tasks if manager is not None else []

    def get(self, tenant: str, task_id: str) -> MonitoringTask:
        manager = self._tenants.get(tenant)
        if manager is None:
            raise UnknownTaskError(qualified_task_id(tenant, task_id))
        try:
            return manager.get(task_id)
        except UnknownTaskError:
            raise UnknownTaskError(qualified_task_id(tenant, task_id)) from None

    def task_count(self) -> int:
        return sum(len(manager) for manager in self._tenants.values())

    def pairs(self) -> Set[NodeAttributePair]:
        """The union of all tenants' pairs, de-duplicated (planner input)."""
        return set(self._tenant_count)

    def pair_count(self) -> int:
        return len(self._tenant_count)

    def tenant_multiplicity(self, pair: NodeAttributePair) -> int:
        """How many tenants currently require ``pair``."""
        return self._tenant_count.get(pair, 0)

    def tenant_pairs(self, tenant: str) -> Set[NodeAttributePair]:
        manager = self._tenants.get(tenant)
        return manager.pairs() if manager is not None else set()

    # ------------------------------------------------------------------
    # Mutation side
    # ------------------------------------------------------------------
    def _namespace(self, tenant: str) -> TaskManager:
        validate_tenant_name(tenant)
        if tenant not in self._tenants:
            self._tenants[tenant] = TaskManager()
        return self._tenants[tenant]

    def _globalize(self, tenant: str, delta: TaskSetDelta) -> TaskSetDelta:
        """Translate a tenant-local delta into the cross-tenant delta."""
        added: Set[NodeAttributePair] = set()
        removed: Set[NodeAttributePair] = set()
        for pair in delta.added:
            if self._tenant_count[pair] == 0:
                added.add(pair)
            self._tenant_count[pair] += 1
        for pair in delta.removed:
            self._tenant_count[pair] -= 1
            if self._tenant_count[pair] == 0:
                del self._tenant_count[pair]
                removed.add(pair)
        return TaskSetDelta(frozenset(added), frozenset(removed))

    def add_task(self, tenant: str, task: MonitoringTask) -> TaskSetDelta:
        """Register ``task`` under ``tenant``; return the *global* delta."""
        if TENANT_SEPARATOR in task.task_id:
            raise InvalidTenantError(
                f"task id {task.task_id!r} must not contain {TENANT_SEPARATOR!r}"
            )
        return self._globalize(tenant, self._namespace(tenant).add_task(task))

    def remove_task(self, tenant: str, task_id: str) -> TaskSetDelta:
        manager = self._tenants.get(tenant)
        if manager is None:
            raise UnknownTaskError(qualified_task_id(tenant, task_id))
        return self._globalize(tenant, manager.remove_task(task_id))

    def modify_task(self, tenant: str, task: MonitoringTask) -> TaskSetDelta:
        manager = self._tenants.get(tenant)
        if manager is None:
            raise UnknownTaskError(qualified_task_id(tenant, task.task_id))
        return self._globalize(tenant, manager.modify_task(task))

    def drop_tenant(self, tenant: str) -> TaskSetDelta:
        """Remove every task of ``tenant`` and the namespace itself."""
        manager = self._tenants.get(tenant)
        if manager is None:
            return TaskSetDelta(frozenset(), frozenset())
        ops = [("remove", task) for task in manager.tasks]
        delta = self._globalize(tenant, manager.apply(ops))
        del self._tenants[tenant]
        return delta
