"""Gain estimation for the guided partition augmentation (Section 3.1.1).

Evaluating a candidate partition is expensive -- it means rebuilding
capacity-constrained trees -- so REMO ranks candidates first by the
*estimated reduction in total capacity usage* the operation would
bring, and only evaluates the most promising few.  The intuition from
the paper: a partition that frees a lot of capacity leaves room for
more node-attribute pairs to be collected.

The journal text defers the estimator's formulas to an online appendix
that is not part of the supplied text, so this module implements the
estimator from the behaviour the body text specifies (see DESIGN.md,
substitution 3):

- A **merge** of sets whose trees share nodes lets each shared node
  fold two periodic messages into one, saving one message's overhead
  ``C`` on the send side and another ``C`` at its parent's receive
  side: estimated reduction ``2*C*|N_left & N_right|``.  Congested
  operands discount the estimate, because a bigger tree on already
  saturated nodes tends to shed pairs rather than save capacity.
- A **split** *increases* message count (negative capacity reduction
  of ``2*C*|N_rest & N_attr|``), but when the source tree is saturated
  it can recover uncollected pairs by moving payload to a second tree;
  the recoverable volume ``a * uncollected`` is credited.

Only the *ranking* induced by these scores drives the search; absolute
values never feed into feasibility decisions, which keeps the
substitution safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional

from repro.core.attributes import AttributeId, NodeAttributePair
from repro.core.cost import CostModel
from repro.core.partition import AttributeSet, MergeOp, PartitionOp, SplitOp

if TYPE_CHECKING:  # plan imports nothing from here; annotation-only
    from repro.core.plan import MonitoringPlan


@dataclass
class GainContext:
    """Pre-digested workload and incumbent-plan facts.

    ``node_masks`` maps each attribute to a bitmask of the nodes that
    must report it (bit ``i`` set => node ``i`` in the attribute's node
    set); masks make the heavy ``|N1 & N2|`` computations cheap.
    ``uncollected`` maps each *partition set* of the currently
    evaluated plan to the number of node-attribute pairs its tree
    failed to include.  ``collected_masks`` holds, per partition set,
    the bitmask of nodes its tree actually contains -- capacity freed
    by a merge comes from nodes *sending in both trees*, so estimates
    based on requested overlap alone systematically over-rank merges
    of saturated (empty) trees.  When absent, requested masks are used
    as a fallback.
    """

    cost: CostModel
    node_masks: Dict[AttributeId, int]
    uncollected: Dict[AttributeSet, int] = field(default_factory=dict)
    collected_masks: Optional[Dict[AttributeSet, int]] = None

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[NodeAttributePair],
        cost: CostModel,
        uncollected: Optional[Dict[AttributeSet, int]] = None,
        collected_masks: Optional[Dict[AttributeSet, int]] = None,
    ) -> "GainContext":
        masks: Dict[AttributeId, int] = {}
        for pair in pairs:
            masks[pair.attribute] = masks.get(pair.attribute, 0) | (1 << pair.node)
        return cls(
            cost=cost,
            node_masks=masks,
            uncollected=dict(uncollected or {}),
            collected_masks=collected_masks,
        )

    @classmethod
    def from_plan(cls, plan: "MonitoringPlan", cost: CostModel) -> "GainContext":
        """Context derived from an incumbent :class:`MonitoringPlan`."""
        collected: Dict[AttributeSet, int] = {}
        for attr_set, result in plan.trees.items():
            mask = 0
            for node in result.tree.nodes:
                mask |= 1 << node
            collected[attr_set] = mask
        return cls.from_pairs(
            plan.pairs,
            cost,
            uncollected=plan.uncollected_by_set(),
            collected_masks=collected,
        )

    def set_mask(self, attr_set: AttributeSet) -> int:
        """Bitmask of nodes requested to participate in ``attr_set``'s tree."""
        mask = 0
        for attr in attr_set:
            mask |= self.node_masks.get(attr, 0)
        return mask

    def collected_mask(self, attr_set: AttributeSet) -> int:
        """Bitmask of nodes the set's incumbent tree actually includes.

        Falls back to the requested mask when no plan state is known
        (e.g. ranking before any evaluation has happened).
        """
        if self.collected_masks is not None and attr_set in self.collected_masks:
            return self.collected_masks[attr_set]
        return self.set_mask(attr_set)

    def pair_volume(self, attr_set: AttributeSet) -> int:
        """Total node-attribute pairs the set's tree must carry."""
        return sum(
            self.node_masks.get(attr, 0).bit_count() for attr in attr_set
        )


def estimate_gain(op: PartitionOp, ctx: GainContext) -> float:
    """Estimated capacity-usage reduction (higher = more promising)."""
    if isinstance(op, MergeOp):
        return _merge_gain(op, ctx)
    if isinstance(op, SplitOp):
        return _split_gain(op, ctx)
    raise TypeError(f"unknown partition operation {op!r}")


def _merge_gain(op: MergeOp, ctx: GainContext) -> float:
    if (ctx.set_mask(op.left) & ctx.set_mask(op.right)).bit_count() == 0:
        # Disjoint node sets: nothing to fold, and the bigger tree only
        # adds failure surface.
        return float("-inf")
    left_coll = ctx.collected_mask(op.left)
    right_coll = ctx.collected_mask(op.right)
    shared = (left_coll & right_coll).bit_count()
    # Folding two periodic messages into one saves C on the sender and
    # C at its parent's receive side, per node present in both trees.
    node_saving = ctx.cost.overhead_cost(2.0 * shared)
    # Two root messages to the collector become one: C freed at the
    # central node -- but only if both trees actually deliver anything.
    central_saving = (
        ctx.cost.overhead_cost() if left_coll and right_coll else 0.0
    )
    # Uncollected pairs of either operand may ride the freed capacity;
    # the recoverable volume is bounded by what the merged tree's
    # existing members could plausibly absorb.
    uncollected = ctx.uncollected.get(op.left, 0) + ctx.uncollected.get(op.right, 0)
    absorbable = (left_coll | right_coll).bit_count()
    recovery = ctx.cost.value_cost(min(uncollected, 2 * absorbable))
    return node_saving + central_saving + recovery


def _split_gain(op: SplitOp, ctx: GainContext) -> float:
    uncollected = ctx.uncollected.get(op.source, 0)
    rest = op.source - {op.attribute}
    attr_mask = ctx.node_masks.get(op.attribute, 0)
    overlap = (ctx.set_mask(rest) & attr_mask).bit_count()
    overhead_added = ctx.cost.overhead_cost(2.0 * overlap)
    recoverable = ctx.cost.value_cost(uncollected)
    return recoverable - overhead_added


def rank_candidates(
    ops: Iterable[PartitionOp],
    ctx: GainContext,
    budget: Optional[int] = None,
    min_gain: float = float("-inf"),
) -> list:
    """Order candidate ops by decreasing estimated gain, keep the top
    ``budget`` with gain strictly above ``min_gain``."""
    scored = []
    for op in ops:
        gain = estimate_gain(op, ctx)
        if gain > min_gain:
            scored.append((gain, op))
    scored.sort(key=lambda item: (-item[0], item[1].describe()))
    if budget is not None:
        scored = scored[:budget]
    return scored
