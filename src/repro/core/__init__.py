"""Core REMO planning machinery.

The subpackage contains the paper's primary contribution: the
multi-task monitoring topology planner and everything it is defined in
terms of -- the cost model with per-message overhead, the monitoring
task model with de-duplication, attribute-set partitions with
merge/split neighborhoods, gain estimation for the guided local
search, resource allocation across trees, and the runtime adaptation
algorithms.
"""

from repro.core.attributes import NodeAttributePair
from repro.core.cost import AggregationKind, AggregationSpec, CostModel
from repro.core.tasks import (
    MonitoringTask,
    MultiTenantTaskManager,
    TaskManager,
    TaskSetDelta,
)
from repro.core.partition import Partition
from repro.core.plan import MonitoringPlan, ShardedPlan, shard_partition_sets
from repro.core.allocation import AllocationPolicy
from repro.core.forest import ForestBuilder
from repro.core.schemes import OneSetPlanner, SingletonSetPlanner
from repro.core.planner import RemoPlanner
from repro.core.adaptation import AdaptationStrategy, AdaptiveMonitoringService

__all__ = [
    "AdaptationStrategy",
    "AdaptiveMonitoringService",
    "ForestBuilder",
    "AggregationKind",
    "AggregationSpec",
    "AllocationPolicy",
    "CostModel",
    "MonitoringPlan",
    "MonitoringTask",
    "MultiTenantTaskManager",
    "NodeAttributePair",
    "OneSetPlanner",
    "Partition",
    "RemoPlanner",
    "ShardedPlan",
    "shard_partition_sets",
    "SingletonSetPlanner",
    "TaskManager",
    "TaskSetDelta",
]
