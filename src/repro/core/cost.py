"""The REMO message cost model and in-network aggregation funnels.

The paper's central modelling decision (Section 2.3, Fig. 2) is that
the cost of transmitting a message carrying ``x`` attribute values is

    ``C + a * x``

where ``C`` is a fixed *per-message overhead* (TCP/IP headers, protocol
processing, context switches) and ``a`` is the per-value payload cost.
The authors measured on BlueGene/P that per-message overhead dominates:
a root receiving 256 small messages per period burns ~68% of a core,
while growing one message from 1 to 256 values only raises its cost
from 0.2% to 1.4%.  Every planning decision in REMO flows from this
asymmetry, so the model lives here as a first-class object.

Section 6.1 extends the model with *funnel functions*: when a tree
performs in-network aggregation for a metric, the number of values a
node forwards is a function of the aggregation type and the number of
incoming values (e.g. SUM forwards 1 value regardless of fan-in).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.core.attributes import AttributeId


class AggregationKind(enum.Enum):
    """Supported in-network aggregation types (Section 6.1).

    ``HOLISTIC`` is the default "no aggregation" mode: every individual
    value is relayed to the collector.  ``DISTINCT`` is data-dependent;
    following the paper we bound it by the holistic funnel.
    """

    HOLISTIC = "holistic"
    SUM = "sum"
    MAX = "max"
    MIN = "min"
    AVG = "avg"
    COUNT = "count"
    TOP_K = "top_k"
    DISTINCT = "distinct"


@dataclass(frozen=True)
class AggregationSpec:
    """An aggregation assignment for one attribute type.

    ``k`` only applies to :attr:`AggregationKind.TOP_K`.
    """

    kind: AggregationKind = AggregationKind.HOLISTIC
    k: int = 10

    def funnel(self, incoming: int) -> int:
        """Number of outgoing values given ``incoming`` values.

        This is the paper's ``fnl_i^m(g_m, n_m)``: SUM/MAX/MIN/AVG/COUNT
        collapse any fan-in to a single partial result, TOP-k forwards at
        most ``k`` values, DISTINCT is bounded from above by the holistic
        funnel (the paper uses the same upper-bound estimate), and
        HOLISTIC forwards everything.
        """
        if incoming < 0:
            raise ValueError(f"incoming value count must be >= 0, got {incoming}")
        if incoming == 0:
            return 0
        if self.kind in (
            AggregationKind.SUM,
            AggregationKind.MAX,
            AggregationKind.MIN,
            AggregationKind.AVG,
            AggregationKind.COUNT,
        ):
            return 1
        if self.kind is AggregationKind.TOP_K:
            if self.k <= 0:
                raise ValueError(f"TOP_K requires k >= 1, got {self.k}")
            return min(self.k, incoming)
        # HOLISTIC and DISTINCT (upper bound): forward everything.
        return incoming


#: Aggregation assignments per attribute type.  Attributes absent from
#: the map are holistic.
AggregationMap = Dict[AttributeId, AggregationSpec]

HOLISTIC = AggregationSpec(AggregationKind.HOLISTIC)


@dataclass(frozen=True)
class CostModel:
    """The ``C + a * x`` message cost model.

    Parameters
    ----------
    per_message:
        ``C`` -- fixed cost charged for every message sent (and the
        same amount charged to the receiver for processing it).
    per_value:
        ``a`` -- incremental cost per attribute value carried.

    Costs and node capacities share one abstract unit ("cost units per
    unit time"); only ratios matter to the planner, which is why the
    evaluation sweeps the ``C/a`` ratio (Fig. 6c/6d).
    """

    per_message: float = 2.0
    per_value: float = 1.0

    def __post_init__(self) -> None:
        if self.per_message < 0:
            raise ValueError(f"per_message must be >= 0, got {self.per_message}")
        if self.per_value <= 0:
            raise ValueError(f"per_value must be > 0, got {self.per_value}")

    @property
    def overhead_ratio(self) -> float:
        """The ``C/a`` ratio the evaluation section sweeps."""
        return self.per_message / self.per_value

    def message_cost(self, n_values: int) -> float:
        """Cost of sending (or receiving) one message with ``n_values`` values."""
        if n_values < 0:
            raise ValueError(f"n_values must be >= 0, got {n_values}")
        return self.per_message + self.per_value * n_values

    def value_cost(self, total_values: float) -> float:
        """Payload cost ``a * x`` for ``total_values`` value-weights.

        ``total_values`` may be fractional (heterogeneous frequencies)
        or negative (cost deltas in incremental bookkeeping).
        """
        return self.per_value * total_values

    def overhead_cost(self, msg_weight: float = 1.0) -> float:
        """Per-message overhead ``C * w`` for ``msg_weight`` messages.

        Like :meth:`value_cost`, accepts fractional and delta weights.
        """
        return self.per_message * msg_weight

    def weighted_message_cost(self, msg_weight: float, total_values: float) -> float:
        """``C*w + a*x``: :meth:`message_cost` generalized to fractional
        message weights and value volumes.

        This is the one place the two model parameters combine; all
        cost arithmetic outside this module must go through these
        methods (enforced by the REMO403 lint rule).
        """
        return self.per_message * msg_weight + self.per_value * total_values

    def values_within_budget(self, budget: float, msg_weight: float = 1.0) -> float:
        """Largest value volume a message of weight ``msg_weight`` can
        carry without its cost exceeding ``budget`` (may be negative
        when the budget cannot even cover the per-message overhead)."""
        return (budget - self.per_message * msg_weight) / self.per_value

    def star_root_cost(self, n_children: int, values_per_child: int = 1) -> float:
        """Receive-side cost at a star root with ``n_children`` senders.

        This is the Fig. 2 micro-experiment in closed form: cost grows
        linearly in the *number of messages*, not merely total payload.
        """
        if n_children < 0:
            raise ValueError(f"n_children must be >= 0, got {n_children}")
        return n_children * self.message_cost(values_per_child)

    def with_ratio(self, ratio: float) -> "CostModel":
        """A copy of this model with ``C = ratio * a`` (same ``a``)."""
        if ratio < 0:
            raise ValueError(f"ratio must be >= 0, got {ratio}")
        return CostModel(per_message=ratio * self.per_value, per_value=self.per_value)
