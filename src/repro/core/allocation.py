"""Capacity allocation across trees (Section 5.2).

A node that participates in several monitoring trees must divide its
capacity ``b_i`` among them, and the division matters: give a tree too
little and it sheds nodes, give it too much and later trees starve.
Four policies are implemented, matching Fig. 11's comparands:

- ``UNIFORM`` -- equal slice per participating tree;
- ``PROPORTIONAL`` -- slices proportional to each tree's pair volume;
- ``ON_DEMAND`` -- trees are built sequentially and each sees all
  capacity left over by its predecessors;
- ``ORDERED`` -- on-demand, but trees are built smallest-first, so
  cheap small trees are placed before big relay-hungry ones can hog
  shared nodes (the paper's refinement, and REMO's default).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Mapping, Tuple

from repro.core.attributes import NodeId
from repro.core.partition import AttributeSet, Partition


class AllocationPolicy(enum.Enum):
    """How node capacity is divided among the trees sharing the node."""

    UNIFORM = "uniform"
    PROPORTIONAL = "proportional"
    ON_DEMAND = "on_demand"
    ORDERED = "ordered"

    @property
    def is_sequential(self) -> bool:
        """Whether trees see leftover capacity (vs a pre-divided slice)."""
        return self in (AllocationPolicy.ON_DEMAND, AllocationPolicy.ORDERED)


def build_order(
    policy: "AllocationPolicy",
    partition: Partition,
    set_volumes: Mapping[AttributeSet, int],
) -> List[AttributeSet]:
    """The order in which a forest builder should construct trees.

    ``set_volumes`` maps each partition set to its pair volume (the
    number of node-attribute pairs its tree must carry).  ORDERED
    builds smallest-first; every other policy uses a deterministic
    canonical order (volume is irrelevant once slices are fixed, but
    determinism keeps plans reproducible).
    """
    sets = list(partition.sets)
    if policy is AllocationPolicy.ORDERED:
        return sorted(sets, key=lambda s: (set_volumes.get(s, 0), sorted(s)))
    return sorted(sets, key=lambda s: sorted(s))


def preallocate(
    policy: "AllocationPolicy",
    partition: Partition,
    participation: Mapping[NodeId, List[AttributeSet]],
    capacities: Mapping[NodeId, float],
    set_volumes: Mapping[AttributeSet, int],
    node_volumes: Mapping[Tuple[NodeId, AttributeSet], int],
) -> Dict[AttributeSet, Dict[NodeId, float]]:
    """Fixed per-tree capacity slices for the pre-divided policies.

    Only meaningful for UNIFORM and PROPORTIONAL; sequential policies
    do not pre-divide (see :func:`sequential_view`).

    ``participation`` maps each node to the partition sets it serves;
    ``node_volumes`` maps ``(node, set)`` to the number of values the
    node contributes to that set's tree (used as the PROPORTIONAL
    weight, falling back to the tree's total volume when a node's own
    contribution is zero).
    """
    if policy.is_sequential:
        raise ValueError(f"{policy} does not pre-divide capacity")
    slices: Dict[AttributeSet, Dict[NodeId, float]] = {s: {} for s in partition.sets}
    for node, sets in participation.items():
        if not sets:
            continue
        budget = capacities[node]
        if policy is AllocationPolicy.UNIFORM:
            share = budget / len(sets)
            for s in sets:
                slices[s][node] = share
        else:  # PROPORTIONAL
            weights = []
            for s in sets:
                w = node_volumes.get((node, s), 0)
                if w <= 0:
                    w = max(set_volumes.get(s, 1), 1)
                weights.append(float(w))
            total = sum(weights)
            for s, w in zip(sets, weights):
                slices[s][node] = budget * (w / total)
    return slices


class CapacityLedger:
    """Mutable remaining-capacity tracker for the sequential policies.

    The forest builder hands each tree a *live view* of this ledger as
    its capacity mapping (on-demand allocation: "assign all current
    available capacity to the tree under construction"), then calls
    :meth:`charge` with the tree's final per-node usage before moving
    to the next tree.
    """

    def __init__(self, capacities: Mapping[NodeId, float], central_capacity: float) -> None:
        self._remaining: Dict[NodeId, float] = dict(capacities)
        self._central_remaining = central_capacity

    @property
    def central_remaining(self) -> float:
        return self._central_remaining

    def remaining(self, node: NodeId) -> float:
        return self._remaining.get(node, 0.0)

    def view(self) -> Mapping[NodeId, float]:
        """A snapshot of remaining capacities for one tree build.

        A shallow copy: the tree must see capacities frozen at build
        start, not shrinking under its feet as it itself consumes.
        """
        return dict(self._remaining)

    def charge(self, usage: Mapping[NodeId, float], central_usage: float) -> None:
        """Deduct a finished tree's usage from the ledger."""
        for node, used in usage.items():
            remaining = self._remaining.get(node, 0.0) - used
            self._remaining[node] = max(remaining, 0.0)
        self._central_remaining = max(self._central_remaining - central_usage, 0.0)
