"""The REMO planner: guided local search over attribute partitions.

This is the basic REMO approach of Section 3: starting from the
singleton-set partition, iterate two phases --

1. *partition augmentation*: enumerate the merge/split neighborhood
   of the current partition, rank candidates by estimated
   capacity-usage reduction (:mod:`repro.core.gain`), and keep only
   the most promising few (the guided search that makes the scheme
   scale);
2. *resource-aware evaluation*: build the forest for each surviving
   candidate with the capacity-constrained tree builder and measure
   the number of node-attribute pairs it collects.

The best strictly improving candidate becomes the new incumbent; the
search stops when no candidate improves (or after ``max_iterations``).
The objective follows Problem Statement 1: maximize collected pairs,
tie-broken by lower total message volume (freed capacity is the
paper's rationale for ranking by usage reduction in the first place).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.checks.runner import assert_plan_valid
from repro.cluster.node import Cluster
from repro.obs import names, trace
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import Span
from repro.core.attributes import AttributeId, NodeAttributePair, NodeId
from repro.core.allocation import AllocationPolicy
from repro.core.cost import AggregationMap, CostModel
from repro.core.forest import ForestBuilder, PairWeights, TreeMemo
from repro.core.gain import GainContext, rank_candidates
from repro.core.partition import AttributeSet, MergeOp, Partition, PartitionOp
from repro.core.plan import MonitoringPlan, ShardedPlan
from repro.core.schemes import TaskSource, observable_pairs
from repro.trees.base import GreedyTreeBuilder, TreeBuildResult

#: Cost comparisons use this tolerance so float noise cannot drive
#: endless "improvements".
_COST_EPS = 1e-6

#: The forest-construction closure threaded through the local search:
#: (partition, kept trees) -> evaluated plan.  All candidate plans flow
#: through one such builder, which is where ``debug_checks`` hooks in.
PlanBuilder = Callable[..., MonitoringPlan]


class PlanningStats:
    """Search-effort accounting for one :meth:`RemoPlanner.plan` call.

    The numeric counters are snapshots of the ambient
    :class:`~repro.obs.metrics.MetricsRegistry` rather than parallel
    bookkeeping: :meth:`bump` writes through to ``planner_*`` counter
    series (labeled by search phase), and the properties read back the
    delta accumulated since this object's creation.  ``accepted_ops``
    stays a plain list -- operation descriptions are trace events, not
    metrics.
    """

    #: (property, registry counter) pairs backing the numeric fields.
    _COUNTERS: Tuple[Tuple[str, str], ...] = (
        ("iterations", names.PLANNER_ITERATIONS_TOTAL),
        ("candidates_ranked", names.PLANNER_CANDIDATES_RANKED_TOTAL),
        ("candidates_evaluated", names.PLANNER_CANDIDATES_EVALUATED_TOTAL),
        ("memo_hits", names.PLANNER_MEMO_HITS_TOTAL),
        ("memo_misses", names.PLANNER_MEMO_MISSES_TOTAL),
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else default_registry()
        self._base = {
            counter: self.registry.counter_total(counter)
            for _attr, counter in self._COUNTERS
        }
        self._final: Optional[Dict[str, float]] = None
        self.accepted_ops: List[str] = []
        self.elapsed_seconds: float = 0.0

    def bump(self, counter: str, amount: int = 1, **labels: object) -> None:
        self.registry.incr(counter, amount, **labels)

    def freeze(self) -> None:
        """Close the accounting window: later registry activity (another
        ``plan()`` call on the same ambient registry) must not bleed
        into this object's readings."""
        self._final = {
            counter: self.registry.counter_total(counter)
            for _attr, counter in self._COUNTERS
        }

    def _delta(self, counter: str) -> int:
        if self._final is not None:
            total = self._final[counter]
        else:
            total = self.registry.counter_total(counter)
        return int(round(total - self._base[counter]))

    @property
    def iterations(self) -> int:
        return self._delta(names.PLANNER_ITERATIONS_TOTAL)

    @property
    def candidates_ranked(self) -> int:
        return self._delta(names.PLANNER_CANDIDATES_RANKED_TOTAL)

    @property
    def candidates_evaluated(self) -> int:
        return self._delta(names.PLANNER_CANDIDATES_EVALUATED_TOTAL)

    @property
    def memo_hits(self) -> int:
        """Tree builds answered from the construction memo.

        Process-pool workers keep their own memos and do not ship
        counters back, so under ``parallelism > 1`` this reflects only
        the serial portions of the search (seeds, full rebuilds).
        """
        return self._delta(names.PLANNER_MEMO_HITS_TOTAL)

    @property
    def memo_misses(self) -> int:
        return self._delta(names.PLANNER_MEMO_MISSES_TOTAL)


def objective(plan: MonitoringPlan) -> Tuple[int, float]:
    """Lexicographic objective: collected pairs up, message volume down."""
    return (plan.collected_pair_count(), -plan.total_message_cost())


@dataclass(frozen=True)
class _EvalContext:
    """Everything a candidate evaluation needs besides the incumbent.

    One instance is created per :meth:`RemoPlanner.plan_with_stats`
    call and shared by the serial path and (via the process-pool
    initializer) every worker, so both evaluate candidates through
    literally the same code and produce bit-identical plans.
    """

    forest: ForestBuilder
    pairs: FrozenSet[NodeAttributePair]
    cluster: Cluster
    pair_weights: Optional[PairWeights]
    msg_weights: Optional[Mapping[NodeId, float]]
    debug_checks: bool
    #: Per-plan-call tree-construction cache (``None`` disables).  The
    #: memo is created empty before the worker pool forks, so each
    #: worker warms its own copy independently.
    memo: Optional[TreeMemo] = None


def _context_build(
    ctx: _EvalContext,
    part: Partition,
    keep: Optional[Mapping[AttributeSet, TreeBuildResult]] = None,
) -> MonitoringPlan:
    built = ctx.forest.build(
        part,
        ctx.pairs,
        ctx.cluster,
        pair_weights=ctx.pair_weights,
        msg_weights=ctx.msg_weights,
        keep=keep,
        memo=ctx.memo,
    )
    if ctx.debug_checks:
        # Every candidate the search evaluates flows through this
        # helper, so one hook verifies them all.
        assert_plan_valid(
            built,
            ctx.cluster,
            context=f"candidate plan for {len(part)} set(s)",
        )
    return built


def _evaluate_with_context(
    ctx: _EvalContext, incumbent: MonitoringPlan, op: PartitionOp
) -> MonitoringPlan:
    """Resource-aware evaluation of one augmentation.

    Per Section 3.2, only the trees affected by the operation are
    reconstructed; untouched trees are carried over (their capacity
    usage is charged to the ledger before the affected trees are
    rebuilt against the remainder).  Pre-divided allocation policies
    cannot keep trees, so they fall back to full rebuild.
    """
    candidate_partition = incumbent.partition.apply(op)
    if not ctx.forest.allocation.is_sequential:
        return _context_build(ctx, candidate_partition)
    if isinstance(op, MergeOp):
        touched = {op.left | op.right}
    else:
        touched = {op.source - {op.attribute}, frozenset({op.attribute})}
    keep = {
        s: incumbent.trees[s]
        for s in candidate_partition.sets
        if s not in touched and s in incumbent.trees
    }
    return _context_build(ctx, candidate_partition, keep=keep)


#: Per-worker evaluation context, installed by the pool initializer.
_WORKER_CTX: Optional[_EvalContext] = None


def _init_eval_worker(ctx: _EvalContext) -> None:
    global _WORKER_CTX
    _WORKER_CTX = ctx
    # The worker's tracer is a fork-time copy of the parent's,
    # including any spans already recorded -- discard those so the
    # batches below ship back only spans this worker produced.
    trace.drain_local()


def _eval_op_batch(
    incumbent: MonitoringPlan,
    indexed_ops: Sequence[Tuple[int, PartitionOp]],
    worker_rank: int,
) -> Tuple[List[Tuple[int, MonitoringPlan]], List[Span]]:
    """Worker entry point: evaluate a batch of ranked candidates.

    Results carry their rank index so the parent can merge batches
    back into rank order and apply the exact serial acceptance logic.
    Spans recorded during evaluation (attributed to this worker's
    rank) ride along for the parent tracer to ingest.
    """
    ctx = _WORKER_CTX
    assert ctx is not None, "worker used before initialization"
    results: List[Tuple[int, MonitoringPlan]] = []
    for idx, op in indexed_ops:
        with trace.span(
            names.SPAN_PLANNER_EVALUATE_CANDIDATE,
            lane=names.worker_lane(worker_rank),
            rank=idx,
            worker=worker_rank,
        ):
            results.append((idx, _evaluate_with_context(ctx, incumbent, op)))
    return results, trace.drain_local()


def _separate_forbidden(
    sets: Iterable[Iterable[AttributeId]],
    forbidden_pairs: Set[FrozenSet[AttributeId]],
) -> List[Set[AttributeId]]:
    """Split groups until no forbidden attribute pair shares a set."""
    result: List[Set[AttributeId]] = []
    work = [set(s) for s in sets if s]
    while work:
        group = work.pop()
        violated = None
        for pair in forbidden_pairs:
            if pair <= group:
                violated = pair
                break
        if violated is None:
            result.append(group)
            continue
        a, b = tuple(violated)
        work.append(group - {a})
        work.append({a})
    return [s for s in result if s]


def _improves(
    candidate: MonitoringPlan,
    incumbent: MonitoringPlan,
    cost_fn: Optional[Callable[[MonitoringPlan], float]] = None,
) -> bool:
    """Strict improvement under the (coverage up, cost down) objective.

    ``cost_fn`` overrides the cost tie-break term (default: per-period
    message volume); the network-aware extension passes a scorer that
    adds forwarding cost (Section 3.3).
    """
    cost_of = cost_fn if cost_fn is not None else MonitoringPlan.total_message_cost
    cand_pairs, cand_cost = candidate.collected_pair_count(), cost_of(candidate)
    inc_pairs, inc_cost = incumbent.collected_pair_count(), cost_of(incumbent)
    if cand_pairs != inc_pairs:
        return cand_pairs > inc_pairs
    return cand_cost < inc_cost - _COST_EPS


class RemoPlanner:
    """Resource-aware multi-task monitoring topology planner.

    Parameters
    ----------
    cost_model:
        The shared ``C + a*x`` model.
    tree_builder:
        Tree construction scheme (default: REMO's adaptive builder).
    allocation:
        Cross-tree capacity policy (default ORDERED).
    aggregation:
        Optional in-network aggregation specs; passing them enables
        aggregation-aware planning (Section 6.1).
    candidate_budget:
        How many top-ranked neighbors to fully evaluate per iteration.
        The paper's guided augmentation exists precisely to keep this
        small; ``None`` evaluates the whole neighborhood (the ablation
        baseline).
    max_iterations:
        Hard cap on local-search steps.
    first_improvement:
        Accept the first evaluated candidate that improves instead of
        the best of the budget (cheaper, slightly worse plans).
    forbidden_pairs:
        Attribute pairs that must never share a partition set (the
        reliability extension's SSDP/DSDP constraint, Section 6.2).
    parallelism:
        Number of worker processes for candidate evaluation.  The
        ranked candidates of each iteration are independent, so they
        are dispatched across a process pool and merged back in rank
        order -- the accepted plan is bit-identical to a serial run.
        ``1`` (the default) evaluates inline.  Workers are forked, so
        the knob silently degrades to serial where fork is
        unavailable.
    beam_width:
        Cap on ranked candidates that survive into full evaluation per
        iteration, applied after ``candidate_budget``.  ``None`` (the
        default) keeps the exact PR-4 search and bit-identical plans;
        small beams trade plan quality (bounded in practice, see the
        beam tests' objective-ratio envelope) for large-workload
        speed.
    early_termination:
        Stop the local search once an accepted step improves message
        cost by less than this *fraction* of the incumbent's cost
        without improving coverage.  ``None`` (the default) runs to a
        local optimum, preserving bit-identity.
    memo_size:
        Entries in the per-``plan()``-call tree-construction memo
        (:class:`~repro.core.forest.TreeMemo`).  ``0`` disables
        memoization.  Memo hits return results bit-identical to a cold
        rebuild (the build is a pure function of the memo key), so
        this knob affects speed only.
    """

    def __init__(
        self,
        cost_model: CostModel,
        tree_builder: Optional[GreedyTreeBuilder] = None,
        allocation: AllocationPolicy = AllocationPolicy.ORDERED,
        aggregation: Optional[AggregationMap] = None,
        candidate_budget: Optional[int] = 8,
        max_iterations: int = 64,
        first_improvement: bool = False,
        forbidden_pairs: Optional[Set[FrozenSet[AttributeId]]] = None,
        plan_cost_fn: Optional[Callable[[MonitoringPlan], float]] = None,
        parallelism: int = 1,
        beam_width: Optional[int] = None,
        early_termination: Optional[float] = None,
        memo_size: int = 128,
    ) -> None:
        if candidate_budget is not None and candidate_budget <= 0:
            raise ValueError(f"candidate_budget must be > 0 or None, got {candidate_budget}")
        if max_iterations <= 0:
            raise ValueError(f"max_iterations must be > 0, got {max_iterations}")
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        if beam_width is not None and beam_width <= 0:
            raise ValueError(f"beam_width must be > 0 or None, got {beam_width}")
        if early_termination is not None and not 0.0 < early_termination < 1.0:
            raise ValueError(
                f"early_termination must be in (0, 1) or None, got {early_termination}"
            )
        if memo_size < 0:
            raise ValueError(f"memo_size must be >= 0, got {memo_size}")
        self.cost = cost_model
        self.forest = ForestBuilder(
            cost_model,
            tree_builder=tree_builder,
            allocation=allocation,
            aggregation=aggregation,
        )
        self.candidate_budget = candidate_budget
        self.max_iterations = max_iterations
        self.first_improvement = first_improvement
        self.parallelism = parallelism
        self.beam_width = beam_width
        self.early_termination = early_termination
        self.memo_size = memo_size
        self.forbidden_pairs = set(forbidden_pairs or set())
        #: Top-ranked candidates granted a full forest rebuild when the
        #: cheap incremental evaluation finds no improvement.
        self._full_rebuild_budget = 3
        #: Optional override of the cost tie-break term in plan
        #: comparisons (e.g. adding network forwarding cost, Section
        #: 3.3's extension); ``None`` uses per-period message volume.
        self.plan_cost_fn = plan_cost_fn

    def _improves(self, candidate: MonitoringPlan, incumbent: MonitoringPlan) -> bool:
        return _improves(candidate, incumbent, cost_fn=self.plan_cost_fn)

    # ------------------------------------------------------------------
    def plan(
        self,
        tasks: TaskSource,
        cluster: Cluster,
        pair_weights: Optional[PairWeights] = None,
        msg_weights: Optional[Mapping[NodeId, float]] = None,
        initial_partition: Optional[Partition] = None,
        debug_checks: bool = False,
    ) -> MonitoringPlan:
        """Plan a monitoring forest; see :meth:`plan_with_stats`."""
        plan, _stats = self.plan_with_stats(
            tasks,
            cluster,
            pair_weights=pair_weights,
            msg_weights=msg_weights,
            initial_partition=initial_partition,
            debug_checks=debug_checks,
        )
        return plan

    def plan_sharded(
        self,
        tasks: TaskSource,
        cluster: Cluster,
        collectors: int = 1,
        shard_mode: str = "hash",
        pair_weights: Optional[PairWeights] = None,
        msg_weights: Optional[Mapping[NodeId, float]] = None,
        initial_partition: Optional[Partition] = None,
    ) -> ShardedPlan:
        """Plan a forest, then shard its trees across ``collectors`` roots.

        Sharding is a deterministic post-pass over the planned partition
        (see :func:`repro.core.plan.shard_partition_sets`), so the plan
        itself is bit-identical to :meth:`plan` -- only the collector
        each tree reports to changes.
        """
        plan = self.plan(
            tasks,
            cluster,
            pair_weights=pair_weights,
            msg_weights=msg_weights,
            initial_partition=initial_partition,
        )
        return ShardedPlan.build(plan, collectors, shard_mode)

    def plan_with_stats(
        self,
        tasks: TaskSource,
        cluster: Cluster,
        pair_weights: Optional[PairWeights] = None,
        msg_weights: Optional[Mapping[NodeId, float]] = None,
        initial_partition: Optional[Partition] = None,
        debug_checks: bool = False,
    ) -> Tuple[MonitoringPlan, PlanningStats]:
        """Plan a monitoring forest and report search effort.

        ``initial_partition`` overrides the singleton-set starting
        point (used by REBUILD-from-current ablations and tests).

        ``debug_checks`` runs the static verifier
        (:func:`repro.checks.assert_plan_valid`) on every candidate
        plan the search evaluates -- seeds, accepted incumbents, and
        the final rebuild alike -- raising
        :class:`~repro.checks.PlanCheckError` at the first invariant
        violation.  Expensive; meant for tests and bug hunts.
        """
        stats = PlanningStats()
        with trace.timer(names.SPAN_PLANNER_PLAN, lane=names.LANE_PLANNER) as plan_timer:
            pairs = observable_pairs(tasks, cluster)
            if not pairs:
                raise ValueError("cannot plan for an empty workload")
            attributes = frozenset(p.attribute for p in pairs)
            if initial_partition is not None:
                if frozenset(initial_partition.universe) != attributes:
                    raise ValueError(
                        "initial partition universe must equal the workload's attributes"
                    )
                partition = initial_partition
            else:
                partition = None

            ctx = _EvalContext(
                forest=self.forest,
                pairs=pairs,
                cluster=cluster,
                pair_weights=pair_weights,
                msg_weights=msg_weights,
                debug_checks=debug_checks,
                memo=TreeMemo(self.memo_size) if self.memo_size > 0 else None,
            )

            def build(
                part: Partition,
                keep: Optional[Mapping[AttributeSet, TreeBuildResult]] = None,
            ) -> MonitoringPlan:
                return _context_build(ctx, part, keep)

            executor = self._make_executor(ctx)
            try:
                if partition is not None:
                    incumbent = build(partition)
                else:
                    # REMO seeks the middle ground between the two extreme
                    # partitions, but a merge-walk from singletons cannot reach
                    # merge-heavy optima within bounded iterations when there
                    # are many attribute types (nor can a split-walk from the
                    # one-set partition reach balanced k-way groupings).  Seed
                    # the local search with both endpoints plus a ladder of
                    # k-way partitions that cluster attributes by node-set
                    # similarity, and start from whichever evaluates best.
                    incumbent = build(Partition.singletons(attributes))
                    for seed_rank, seed in enumerate(
                        self._seed_partitions(pairs, attributes)
                    ):
                        with trace.span(
                            names.SPAN_PLANNER_SEED_EVAL,
                            lane=names.LANE_PLANNER,
                            rank=seed_rank,
                            sets=len(seed),
                        ):
                            candidate = build(seed)
                        stats.bump(
                            names.PLANNER_CANDIDATES_EVALUATED_TOTAL, phase="seed"
                        )
                        if self._improves(candidate, incumbent):
                            incumbent = candidate
                for _ in range(self.max_iterations):
                    stats.bump(names.PLANNER_ITERATIONS_TOTAL)
                    accepted = self._improve_once(
                        incumbent, ctx, build, stats, executor
                    )
                    if accepted is None:
                        break
                    if self.early_termination is not None and (
                        accepted.collected_pair_count()
                        == incumbent.collected_pair_count()
                    ):
                        # A cost-only step this small signals a
                        # flattening search; keep the improvement but
                        # stop looking for more.
                        prev_cost = incumbent.total_message_cost()
                        saved = prev_cost - accepted.total_message_cost()
                        if saved < self.early_termination * max(prev_cost, _COST_EPS):
                            incumbent = accepted
                            break
                    incumbent = accepted
                if stats.accepted_ops:
                    # Candidate evaluation carries unaffected trees over, which
                    # charges capacity in stale order; one final full rebuild of
                    # the winning partition restores the allocation policy's
                    # global ordering and is kept only if it helps.
                    with trace.span(names.SPAN_PLANNER_FINAL_REBUILD, lane=names.LANE_PLANNER):
                        final = build(incumbent.partition)
                    if self._improves(final, incumbent):
                        incumbent = final
            finally:
                if executor is not None:
                    executor.shutdown()
        stats.elapsed_seconds = plan_timer.elapsed
        stats.freeze()
        return incumbent, stats

    def _make_executor(self, ctx: _EvalContext) -> Optional[ProcessPoolExecutor]:
        """Spin up the candidate-evaluation pool, or ``None`` for serial.

        Workers are forked so they inherit the parent's hash seed --
        set iteration orders, and therefore every float accumulation
        order, match the serial path exactly.
        """
        if self.parallelism <= 1:
            return None
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:
            return None
        return ProcessPoolExecutor(
            max_workers=self.parallelism,
            mp_context=mp_context,
            initializer=_init_eval_worker,
            initargs=(ctx,),
        )

    # ------------------------------------------------------------------
    def _seed_partitions(
        self, pairs: FrozenSet[NodeAttributePair], attributes: FrozenSet[AttributeId]
    ) -> List[Partition]:
        """Initialization ladder: one-set plus similarity-clustered k-way
        partitions (k = 2, 4, 8, ...).

        Attributes are greedily assigned, largest node set first, to the
        group whose members they overlap most (ties: emptiest group), so
        attributes observed on the same nodes share a tree and fold their
        messages.  Groups containing a forbidden attribute pair are split
        apart afterwards to respect the reliability constraint.
        """
        if len(attributes) < 2:
            return []
        masks: Dict[AttributeId, int] = {}
        for pair in pairs:
            masks[pair.attribute] = masks.get(pair.attribute, 0) | (1 << pair.node)
        ordered = sorted(
            attributes, key=lambda a: (-masks.get(a, 0).bit_count(), a)
        )
        total_volume = sum(m.bit_count() for m in masks.values())
        seeds: List[Partition] = [Partition.one_set(attributes)]
        k = 2
        while k < len(attributes):
            # Volume cap keeps groups balanced: without it, broadly
            # observed attributes (e.g. OS gauges on every node) pull
            # everything into the first group and the "k-way" seed
            # degenerates back to the one-set partition.
            cap = 1.25 * total_volume / k
            group_masks = [0] * k
            group_attrs: List[List[AttributeId]] = [[] for _ in range(k)]
            group_volume = [0.0] * k
            for attr in ordered:
                mask = masks.get(attr, 0)
                volume = mask.bit_count()
                open_groups = [
                    g for g in range(k) if group_volume[g] + volume <= cap
                ]
                pool = open_groups if open_groups else list(range(k))
                best = max(
                    pool,
                    key=lambda g: (
                        (group_masks[g] & mask).bit_count(),
                        -group_volume[g],
                    ),
                )
                group_attrs[best].append(attr)
                group_masks[best] |= mask
                group_volume[best] += volume
            sets = [g for g in group_attrs if g]
            if self.forbidden_pairs:
                sets = _separate_forbidden(sets, self.forbidden_pairs)
            if len(sets) > 1:
                seeds.append(Partition(sets))
            k *= 2
        if self.forbidden_pairs:
            filtered = []
            for seed in seeds:
                sets = _separate_forbidden(
                    [sorted(s) for s in seed.sets], self.forbidden_pairs
                )
                filtered.append(Partition(sets))
            seeds = filtered
        return seeds

    # ------------------------------------------------------------------
    def _improve_once(
        self,
        incumbent: MonitoringPlan,
        ctx: _EvalContext,
        build: "PlanBuilder",
        stats: PlanningStats,
        executor: Optional[ProcessPoolExecutor] = None,
    ) -> Optional[MonitoringPlan]:
        with trace.span(
            names.SPAN_PARTITION_MERGE_ITERATION, lane=names.LANE_PLANNER, iteration=stats.iterations
        ) as iteration_span:
            # Partition-augmentation phase: neighborhood enumeration
            # plus gain ranking, timed separately from the (dominant)
            # tree-construction phase so the scaling bench can report
            # where wall time goes.
            phase_started = time.perf_counter()
            partition = incumbent.partition
            gain_ctx = GainContext.from_plan(incumbent, self.cost)
            ops: List[PartitionOp] = list(
                partition.merge_ops(forbidden_pairs=self.forbidden_pairs or None)
            )
            ops.extend(partition.split_ops())
            ranked = rank_candidates(ops, gain_ctx, budget=self.candidate_budget)
            if self.beam_width is not None:
                ranked = ranked[: self.beam_width]
            default_registry().observe(
                names.PLANNER_PHASE_SECONDS,
                time.perf_counter() - phase_started,
                phase="partition",
            )
            stats.bump(names.PLANNER_CANDIDATES_RANKED_TOTAL, len(ops))
            iteration_span.set(neighborhood=len(ops), candidates=len(ranked))

            # With a pool, evaluate the whole ranked budget up front; the
            # acceptance loop below then consumes the precomputed plans in
            # rank order, so accepted plans (and, except for wasted work
            # past a first-improvement cut, the stats) match serial runs
            # exactly.
            evaluated: Optional[List[MonitoringPlan]] = None
            if executor is not None and len(ranked) > 1:
                evaluated = self._evaluate_parallel(executor, incumbent, ranked)

            best_plan: Optional[MonitoringPlan] = None
            best_op: Optional[PartitionOp] = None
            for rank_idx, (_gain, op) in enumerate(ranked):
                if evaluated is not None:
                    candidate = evaluated[rank_idx]
                else:
                    with trace.span(
                        names.SPAN_PLANNER_EVALUATE_CANDIDATE, lane=names.LANE_PLANNER, rank=rank_idx
                    ):
                        candidate = _evaluate_with_context(ctx, incumbent, op)
                stats.bump(names.PLANNER_CANDIDATES_EVALUATED_TOTAL, phase="search")
                if not self._improves(candidate, incumbent):
                    continue
                if self.first_improvement:
                    stats.accepted_ops.append(op.describe())
                    trace.event(names.EVENT_PLANNER_ACCEPT, lane=names.LANE_PLANNER, op=op.describe())
                    return candidate
                if best_plan is None or self._improves(candidate, best_plan):
                    best_plan = candidate
                    best_op = op
            if best_plan is None:
                # Incremental evaluation charges kept trees' capacity before
                # the touched trees see any, so gains that require
                # *redistributing* capacity (typically central-collector
                # budget freed by a merge) are invisible.  Give the few
                # top-ranked candidates one full rebuild before giving up.
                for rank_idx, (_gain, op) in enumerate(
                    ranked[: self._full_rebuild_budget]
                ):
                    with trace.span(
                        names.SPAN_PLANNER_EVALUATE_CANDIDATE,
                        lane=names.LANE_PLANNER,
                        rank=rank_idx,
                        full_rebuild=True,
                    ):
                        candidate = build(incumbent.partition.apply(op))
                    stats.bump(names.PLANNER_CANDIDATES_EVALUATED_TOTAL, phase="rebuild")
                    if self._improves(candidate, incumbent) and (
                        best_plan is None or self._improves(candidate, best_plan)
                    ):
                        best_plan = candidate
                        best_op = op
            if best_plan is not None and best_op is not None:
                stats.accepted_ops.append(best_op.describe())
                trace.event(names.EVENT_PLANNER_ACCEPT, lane=names.LANE_PLANNER, op=best_op.describe())
            return best_plan

    def _evaluate_parallel(
        self,
        executor: ProcessPoolExecutor,
        incumbent: MonitoringPlan,
        ranked: Sequence[Tuple[float, PartitionOp]],
    ) -> List[MonitoringPlan]:
        """Fan the ranked candidates across the pool, merge by rank.

        Candidates are strided across workers (worker ``i`` gets ranks
        ``i, i+P, ...``) so expensive low-rank evaluations spread out,
        then reassembled into rank order for the acceptance loop.
        """
        workers = max(self.parallelism, 1)
        indexed = [(idx, op) for idx, (_gain, op) in enumerate(ranked)]
        chunks = [indexed[i::workers] for i in range(workers)]
        futures = [
            executor.submit(_eval_op_batch, incumbent, chunk, worker_rank)
            for worker_rank, chunk in enumerate(chunks)
            if chunk
        ]
        merged: Dict[int, MonitoringPlan] = {}
        for future in futures:
            results, spans = future.result()
            trace.ingest(spans)
            for idx, plan in results:
                merged[idx] = plan
        return [merged[idx] for idx in range(len(ranked))]
