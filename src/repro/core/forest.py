"""Forest construction: one capacity-constrained tree per partition set.

This is the resource-aware evaluation procedure of Section 3.2: given
an attribute partition, build the corresponding monitoring trees under
an allocation policy and package them as a :class:`MonitoringPlan`
whose collected-pair count is the objective the local search compares.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.cluster.node import Cluster
from repro.core.attributes import AttributeId, NodeAttributePair, NodeId
from repro.core.allocation import (
    AllocationPolicy,
    CapacityLedger,
    build_order,
    preallocate,
)
from repro.core.cost import AggregationMap, CostModel
from repro.core.partition import AttributeSet, Partition
from repro.core.plan import MonitoringPlan
from repro.obs import names
from repro.obs.metrics import default_registry
from repro.trees.base import GreedyTreeBuilder, TreeBuildRequest, TreeBuildResult
from repro.trees.adaptive import AdaptiveTreeBuilder

#: Optional per-pair value weights (frequency extension): expected
#: values per base collection period, in ``(0, 1]``.
PairWeights = Mapping[NodeAttributePair, float]

#: A tree-construction cache key: every input the greedy builder reads
#: (see :meth:`TreeMemo.key`), as plain hashable tuples -- full inputs,
#: not a digest, so hash collisions cannot alias distinct builds.
MemoKey = Tuple[object, ...]


class TreeMemo:
    """LRU cache of tree-construction results across candidate plans.

    Most partitions recur across merge iterations of the planner's
    local search: a candidate differs from the incumbent in one or two
    sets, but sequential allocation re-builds every set downstream of
    the change because its capacity ledger shifts.  Whenever a set's
    *effective inputs* -- demands, remaining capacities of the demand
    nodes, central remaining, message weights -- are unchanged, the
    greedy build is a pure function of them, so the cached
    :class:`TreeBuildResult` is byte-identical to a cold rebuild and
    can be shared (candidate evaluation never mutates trees; the same
    sharing contract ``keep=`` already relies on).

    One memo serves one ``plan()`` call -- within that scope the
    demands and message weights for a given attribute set are pure
    functions of the set (they derive from the fixed pair set and pair
    weights), so the key only needs the inputs that actually vary
    between builds: the set itself, the demand nodes' remaining
    capacity slices, and the central slice.  A memo must therefore
    never be shared across workloads or builder configurations.
    Hit/miss counts land on the ``planner_memo_*`` registry counters
    that :class:`~repro.core.planner.PlanningStats` reads back.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be > 0, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[MemoKey, TreeBuildResult]" = OrderedDict()
        # Sorted demand-node lists per attribute set, computed once:
        # keying must stay far cheaper than the builds it short-cuts.
        self._key_nodes: Dict[AttributeSet, List[NodeId]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def key(
        self,
        attr_set: AttributeSet,
        demands: Dict[NodeId, Dict[AttributeId, float]],
        ledger: CapacityLedger,
    ) -> MemoKey:
        """Fingerprint of one tree build's varying inputs.

        Only demand nodes can join the tree, so their remaining
        capacity slices (plus the central slice) are the only ledger
        state the build can observe.
        """
        nodes = self._key_nodes.get(attr_set)
        if nodes is None:
            nodes = self._key_nodes[attr_set] = sorted(demands)
        return (
            attr_set,
            tuple(ledger.remaining(n) for n in nodes),
            ledger.central_remaining,
        )

    def get(self, key: MemoKey) -> Optional[TreeBuildResult]:
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: MemoKey, result: TreeBuildResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)


class ForestBuilder:
    """Builds monitoring forests for arbitrary partitions.

    Parameters
    ----------
    cost_model:
        The shared ``C + a*x`` model.
    tree_builder:
        Any :class:`GreedyTreeBuilder`; defaults to REMO's adaptive
        builder.
    allocation:
        Capacity division policy across trees (default ORDERED, the
        paper's best performer in Fig. 11).
    aggregation:
        Optional in-network aggregation specs to plan with.  Passing
        them makes the planner aggregation-aware (Section 6.1); the
        oblivious baseline simply omits them.
    """

    def __init__(
        self,
        cost_model: CostModel,
        tree_builder: Optional[GreedyTreeBuilder] = None,
        allocation: AllocationPolicy = AllocationPolicy.ORDERED,
        aggregation: Optional[AggregationMap] = None,
    ) -> None:
        self.cost = cost_model
        self.tree_builder = (
            tree_builder if tree_builder is not None else AdaptiveTreeBuilder(cost_model)
        )
        self.allocation = allocation
        self.aggregation = aggregation

    # ------------------------------------------------------------------
    def build(
        self,
        partition: Partition,
        pairs: Iterable[NodeAttributePair],
        cluster: Cluster,
        pair_weights: Optional[PairWeights] = None,
        msg_weights: Optional[Mapping[NodeId, float]] = None,
        keep: Optional[Mapping[AttributeSet, TreeBuildResult]] = None,
        memo: Optional[TreeMemo] = None,
    ) -> MonitoringPlan:
        """Build a plan for ``partition`` over the de-duplicated ``pairs``.

        ``keep`` maps partition sets to existing tree results that must
        be retained verbatim (the DIRECT-APPLY adaptation path); their
        usage is charged to the capacity ledger before any new tree is
        built.  Only supported under sequential allocation policies.

        ``memo`` optionally caches tree-construction results across
        calls (see :class:`TreeMemo`); only consulted under sequential
        allocation, where the ledger state a build observes is captured
        by the memo key.
        """
        pair_set = frozenset(pairs)
        universe = {p.attribute for p in pair_set}
        missing = universe - set(partition.universe)
        if missing:
            raise ValueError(
                f"partition does not cover requested attributes: {sorted(missing)}"
            )
        keep = dict(keep or {})
        unknown_keep = set(keep) - set(partition.sets)
        if unknown_keep:
            raise ValueError(
                f"keep references sets outside the partition: {sorted(map(sorted, unknown_keep))}"
            )
        if keep and not self.allocation.is_sequential:
            raise ValueError("keep is only supported under sequential allocation")

        # Kept trees are retained verbatim, so their per-node demand
        # dicts are never read -- only their volume (for build
        # ordering); skip materializing them.
        demands, set_volumes = self._demands_by_set(
            partition, pair_set, pair_weights, skip=frozenset(keep)
        )

        if self.allocation.is_sequential:
            results = self._build_sequential(
                partition, cluster, demands, set_volumes, msg_weights, keep, memo
            )
        else:
            results = self._build_predivided(
                partition, cluster, demands, set_volumes, msg_weights
            )
        return MonitoringPlan(partition, results, pair_set, self.cost)

    # ------------------------------------------------------------------
    def _demands_by_set(
        self,
        partition: Partition,
        pairs: Iterable[NodeAttributePair],
        pair_weights: Optional[PairWeights],
        skip: FrozenSet[AttributeSet] = frozenset(),
    ) -> Tuple[
        Dict[AttributeSet, Dict[NodeId, Dict[AttributeId, float]]],
        Dict[AttributeSet, int],
    ]:
        """Group pair demands by partition set and count set volumes.

        Sets in ``skip`` get volumes but no demand dicts (their trees
        are being kept verbatim, so demands would go unread).
        """
        attr_to_set = {a: s for s in partition.sets for a in s}
        demands: Dict[AttributeSet, Dict[NodeId, Dict[AttributeId, float]]] = {
            s: {} for s in partition.sets if s not in skip
        }
        volumes: Dict[AttributeSet, int] = {s: 0 for s in partition.sets}
        for pair in pairs:
            target = attr_to_set[pair.attribute]
            volumes[target] += 1
            weight = 1.0
            if pair_weights is not None:
                weight = pair_weights.get(pair, 1.0)
                if not 0.0 < weight <= 1.0:
                    raise ValueError(
                        f"pair weight for {pair} must be in (0, 1], got {weight}"
                    )
            if target in skip:
                continue
            demands[target].setdefault(pair.node, {})[pair.attribute] = weight
        return demands, volumes

    def _build_sequential(
        self,
        partition: Partition,
        cluster: Cluster,
        demands: Dict[AttributeSet, Dict[NodeId, Dict[AttributeId, float]]],
        set_volumes: Dict[AttributeSet, int],
        msg_weights: Optional[Mapping[NodeId, float]],
        keep: Dict[AttributeSet, TreeBuildResult],
        memo: Optional[TreeMemo] = None,
    ) -> Dict[AttributeSet, TreeBuildResult]:
        ledger = CapacityLedger(
            {node.node_id: node.capacity for node in cluster},
            cluster.central_capacity,
        )
        registry = default_registry()
        results: Dict[AttributeSet, TreeBuildResult] = {}
        for attr_set, kept in keep.items():
            tree = kept.tree
            ledger.charge(
                {node: tree.used(node) for node in tree.nodes}, tree.central_used()
            )
            results[attr_set] = kept
        for attr_set in build_order(self.allocation, partition, set_volumes):
            if attr_set in results:
                continue
            result = None
            memo_key: Optional[MemoKey] = None
            if memo is not None:
                memo_key = memo.key(attr_set, demands[attr_set], ledger)
                result = memo.get(memo_key)
                if result is not None:
                    registry.incr(names.PLANNER_MEMO_HITS_TOTAL)
                else:
                    registry.incr(names.PLANNER_MEMO_MISSES_TOTAL)
            if result is None:
                request = TreeBuildRequest(
                    attributes=attr_set,
                    demands=demands[attr_set],
                    capacities=ledger.view(),
                    central_capacity=ledger.central_remaining,
                    aggregation=self.aggregation,
                    msg_weights=msg_weights,
                )
                result = self.tree_builder.build(request)
                if memo is not None and memo_key is not None:
                    memo.put(memo_key, result)
            tree = result.tree
            ledger.charge(
                {node: tree.used(node) for node in tree.nodes}, tree.central_used()
            )
            results[attr_set] = result
        return results

    def _build_predivided(
        self,
        partition: Partition,
        cluster: Cluster,
        demands: Dict[AttributeSet, Dict[NodeId, Dict[AttributeId, float]]],
        set_volumes: Dict[AttributeSet, int],
        msg_weights: Optional[Mapping[NodeId, float]],
    ) -> Dict[AttributeSet, TreeBuildResult]:
        participation: Dict[NodeId, List[AttributeSet]] = {}
        node_volumes: Dict[Tuple[NodeId, AttributeSet], int] = {}
        for attr_set in partition.sets:
            for node, demand in demands[attr_set].items():
                if demand:
                    participation.setdefault(node, []).append(attr_set)
                    node_volumes[(node, attr_set)] = len(demand)
        slices = preallocate(
            self.allocation,
            partition,
            participation,
            {node.node_id: node.capacity for node in cluster},
            set_volumes,
            node_volumes,
        )
        active_sets = [s for s in partition.sets if demands[s]] or list(partition.sets)
        if self.allocation is AllocationPolicy.UNIFORM:
            central_slices = {
                s: cluster.central_capacity / len(active_sets) for s in partition.sets
            }
        else:
            total_volume = sum(max(set_volumes.get(s, 0), 1) for s in active_sets)
            central_slices = {
                s: cluster.central_capacity
                * (max(set_volumes.get(s, 0), 1) / total_volume)
                if s in active_sets
                else 0.0
                for s in partition.sets
            }
        results: Dict[AttributeSet, TreeBuildResult] = {}
        for attr_set in partition.sets:
            request = TreeBuildRequest(
                attributes=attr_set,
                demands=demands[attr_set],
                capacities=slices.get(attr_set, {}),
                central_capacity=central_slices[attr_set],
                aggregation=self.aggregation,
                msg_weights=msg_weights,
            )
            results[attr_set] = self.tree_builder.build(request)
        return results
