"""Baseline partition schemes: SINGLETON-SET and ONE-SET (Section 3.1).

These are the two state-of-the-art approaches REMO is evaluated
against throughout Figs. 5, 6 and 8:

- the **singleton-set partition** (SP) builds one tree per attribute
  type, as PIER does per query -- best load balance across trees, but
  every node sends one message per attribute and drowns in per-message
  overhead;
- the **one-set partition** (OP) delivers all attributes in a single
  tree -- one message per node per period (minimal overhead), but
  messages grow with every hop, so the tree saturates early and cannot
  include many nodes.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Union

from repro.cluster.node import Cluster
from repro.core.attributes import NodeAttributePair, NodeId
from repro.core.allocation import AllocationPolicy
from repro.core.cost import AggregationMap, CostModel
from repro.core.forest import ForestBuilder, PairWeights
from repro.core.partition import Partition
from repro.core.plan import MonitoringPlan
from repro.core.tasks import MonitoringTask, TaskManager
from repro.trees.base import GreedyTreeBuilder

#: Planner inputs: a task list, a task manager, or raw pair sets.
TaskSource = Union[Iterable[MonitoringTask], TaskManager, Iterable[NodeAttributePair]]


def as_pair_set(source: TaskSource) -> frozenset:
    """Normalize any supported task source into a de-duplicated pair set."""
    if isinstance(source, TaskManager):
        return frozenset(source.pairs())
    items = list(source)
    if not items:
        return frozenset()
    if all(isinstance(item, MonitoringTask) for item in items):
        manager = TaskManager(items)
        return frozenset(manager.pairs())
    if all(isinstance(item, NodeAttributePair) for item in items):
        return frozenset(items)
    raise TypeError(
        "task source must be MonitoringTasks, NodeAttributePairs, or a TaskManager"
    )


def observable_pairs(source: TaskSource, cluster: Cluster) -> frozenset:
    """De-duplicated pairs clipped to what the cluster can observe.

    A task ``(A_t, N_t)`` expands to its full cross product, but only
    pairs ``(i, j)`` with ``j in A_i`` are collectable (Problem
    Statement 1); the rest are silently dropped, as the paper's task
    manager does.
    """
    return frozenset(
        p
        for p in as_pair_set(source)
        if p.node in cluster and cluster.node(p.node).observes(p.attribute)
    )


class FixedPartitionPlanner:
    """Common machinery for planners with a workload-derived fixed partition."""

    def __init__(
        self,
        cost_model: CostModel,
        tree_builder: Optional[GreedyTreeBuilder] = None,
        allocation: AllocationPolicy = AllocationPolicy.ORDERED,
        aggregation: Optional[AggregationMap] = None,
    ) -> None:
        self.forest = ForestBuilder(
            cost_model,
            tree_builder=tree_builder,
            allocation=allocation,
            aggregation=aggregation,
        )

    def partition_for(self, attributes: frozenset) -> Partition:
        raise NotImplementedError

    def plan(
        self,
        tasks: TaskSource,
        cluster: Cluster,
        pair_weights: Optional[PairWeights] = None,
        msg_weights: Optional[Mapping[NodeId, float]] = None,
    ) -> MonitoringPlan:
        """Build the scheme's forest for the given workload."""
        pairs = observable_pairs(tasks, cluster)
        if not pairs:
            raise ValueError("cannot plan for an empty workload")
        attributes = frozenset(p.attribute for p in pairs)
        partition = self.partition_for(attributes)
        return self.forest.build(
            partition,
            pairs,
            cluster,
            pair_weights=pair_weights,
            msg_weights=msg_weights,
        )


class SingletonSetPlanner(FixedPartitionPlanner):
    """One tree per attribute type (the SP baseline)."""

    def partition_for(self, attributes: frozenset) -> Partition:
        return Partition.singletons(attributes)


class OneSetPlanner(FixedPartitionPlanner):
    """A single tree for all attributes (the OP baseline)."""

    def partition_for(self, attributes: frozenset) -> Partition:
        return Partition.one_set(attributes)
