"""Runtime topology adaptation (Section 4).

Monitoring tasks come and go: ad hoc usage checks, attribute churn
while debugging, application re-deployments.  Re-planning the whole
forest on every change (REBUILD) wastes CPU and floods the system with
reconfiguration messages; blindly patching the existing forest
(DIRECT-APPLY) lets topology quality rot.  This module implements the
paper's spectrum of strategies:

- ``DIRECT_APPLY`` (D-A): apply the task delta with no partition
  change -- only trees whose attribute sets are touched are rebuilt;
- ``REBUILD``: run the full basic-REMO search from scratch;
- ``NO_THROTTLE``: take the D-A result as the *base topology*, then run
  a restricted local search whose merge/split candidates must involve
  at least one reconstructed tree (the set ``T``), ranked by estimated
  cost-effectiveness (gain per edge changed);
- ``ADAPTIVE``: NO_THROTTLE plus *cost-benefit throttling*: an
  operation is applied only when its reconfiguration message volume
  ``M_adapt`` stays below ``(T_cur - min T_adj) * benefit`` -- trees
  that were recently adjusted, or gains that are small, do not justify
  churn (Section 4.2).

One note on the throttling benefit term: the paper's formula uses the
per-unit-time traffic saving ``C_cur - C_adj``.  An operation that
*recovers previously uncollected pairs* necessarily increases traffic,
which would read as zero benefit; we therefore credit recovered pairs
at their payload cost ``a`` alongside any traffic saving, so
coverage-restoring adaptations are throttled on equal terms rather
than starved (see DESIGN.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.cluster.node import Cluster
from repro.obs import names, trace
from repro.obs.metrics import default_registry
from repro.core.attributes import AttributeId, NodeAttributePair, NodeId
from repro.core.allocation import AllocationPolicy
from repro.core.cost import AggregationMap, CostModel
from repro.core.forest import ForestBuilder
from repro.core.gain import GainContext, estimate_gain
from repro.core.partition import AttributeSet, MergeOp, Partition, PartitionOp
from repro.core.plan import MonitoringPlan
from repro.core.planner import RemoPlanner, _improves
from repro.core.tasks import MonitoringTask, TaskManager, TaskSetDelta
from repro.trees.base import GreedyTreeBuilder, TreeBuildResult
from repro.trees.model import MonitoringTree


class AdaptationStrategy(enum.Enum):
    """How the service reacts to task-set changes (Fig. 9 comparands)."""

    DIRECT_APPLY = "direct_apply"
    REBUILD = "rebuild"
    NO_THROTTLE = "no_throttle"
    ADAPTIVE = "adaptive"


#: A task mutation: ("add" | "remove" | "modify", task).
TaskOp = Tuple[str, MonitoringTask]


@dataclass
class AdaptationReport:
    """Outcome of one batch of task changes.

    ``adaptation_messages`` counts topology edges changed relative to
    the previous plan (the control messages that reconfigure nodes,
    the paper's ``M_adapt``); ``monitoring_volume`` is the new plan's
    per-period traffic (``C_cur``).
    """

    strategy: AdaptationStrategy
    planning_seconds: float
    adaptation_messages: int
    monitoring_volume: float
    collected_pairs: int
    requested_pairs: int
    applied_ops: List[str] = field(default_factory=list)
    #: The same operations as ``applied_ops`` but as live
    #: :data:`~repro.core.partition.PartitionOp` objects, so verifiers
    #: can replay them (``repro.checks.check_adaptation_step``).
    applied_partition_ops: List[PartitionOp] = field(default_factory=list)
    throttled_ops: int = 0

    @property
    def coverage(self) -> float:
        if self.requested_pairs == 0:
            return 1.0
        return self.collected_pairs / self.requested_pairs


class AdaptiveMonitoringService:
    """Long-running planner that keeps a forest in sync with live tasks.

    Parameters
    ----------
    cluster, cost_model:
        The deployment and cost model.
    strategy:
        Adaptation strategy (default ADAPTIVE).
    tree_builder, allocation, aggregation:
        Forwarded to the underlying forest builder.
    candidate_budget, max_ops_per_batch:
        Restricted-search effort caps: how many ranked candidates to
        evaluate per merge/split round, and how many operations one
        batch may apply.
    debug_checks:
        Run the static verifier (``repro.checks``) on the plan produced
        by every ``apply_changes`` batch, including a replay-differ
        over the restricted search's merge/split trail; raises
        ``PlanCheckError`` at the first violation.  Expensive; for
        tests and bug hunts.
    """

    def __init__(
        self,
        cluster: Cluster,
        cost_model: CostModel,
        strategy: AdaptationStrategy = AdaptationStrategy.ADAPTIVE,
        tree_builder: Optional[GreedyTreeBuilder] = None,
        allocation: AllocationPolicy = AllocationPolicy.ORDERED,
        aggregation: Optional[AggregationMap] = None,
        candidate_budget: int = 8,
        max_ops_per_batch: int = 16,
        debug_checks: bool = False,
    ) -> None:
        if not allocation.is_sequential:
            raise ValueError(
                "adaptation requires a sequential allocation policy (trees are "
                "rebuilt incrementally against leftover capacity)"
            )
        self.cluster = cluster
        self.cost = cost_model
        self.strategy = strategy
        self.forest = ForestBuilder(
            cost_model,
            tree_builder=tree_builder,
            allocation=allocation,
            aggregation=aggregation,
        )
        self.candidate_budget = candidate_budget
        self.max_ops_per_batch = max_ops_per_batch
        self.debug_checks = debug_checks
        self.tasks = TaskManager()
        self.plan: Optional[MonitoringPlan] = None
        self._tadj: Dict[AttributeSet, float] = {}
        self._rebuild_planner = RemoPlanner(
            cost_model,
            tree_builder=tree_builder,
            allocation=allocation,
            aggregation=aggregation,
            candidate_budget=candidate_budget,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def initialize(self, tasks: Iterable[MonitoringTask], now: float = 0.0) -> AdaptationReport:
        """Install the initial task set (full REMO planning)."""
        ops: List[TaskOp] = [("add", t) for t in tasks]
        return self.apply_changes(ops, now=now, force_rebuild=True)

    def apply_changes(
        self,
        ops: Iterable[TaskOp],
        now: float,
        force_rebuild: bool = False,
    ) -> AdaptationReport:
        """Apply a batch of task mutations and adapt the topology."""
        with trace.timer(
            names.SPAN_ADAPTATION_APPLY_CHANGES,
            lane=names.LANE_ADAPTATION,
            strategy=self.strategy.value,
        ) as batch_timer:
            report = self._apply_changes_timed(list(ops), now, force_rebuild)
        report.planning_seconds = batch_timer.elapsed
        registry = default_registry()
        registry.incr(
            names.ADAPTATION_OPS_APPLIED_TOTAL,
            len(report.applied_ops),
            strategy=self.strategy.value,
        )
        registry.incr(
            names.ADAPTATION_OPS_THROTTLED_TOTAL,
            report.throttled_ops,
            strategy=self.strategy.value,
        )
        registry.incr(
            names.ADAPTATION_MESSAGES_TOTAL,
            report.adaptation_messages,
            strategy=self.strategy.value,
        )
        return report

    def _apply_changes_timed(
        self,
        ops: List[TaskOp],
        now: float,
        force_rebuild: bool,
    ) -> AdaptationReport:
        """:meth:`apply_changes` body; ``planning_seconds`` is stamped by
        the caller's timer, so every return path reports 0.0 here."""
        previous_plan = self.plan
        # DIRECT-APPLY mutates trees in place and the previous plan
        # aliases the same objects, so capture its structure now.
        previous_edges = (
            previous_plan.edge_multiset() if previous_plan is not None else None
        )
        delta = self.tasks.apply(ops)
        pairs = frozenset(
            p
            for p in self.tasks.pairs()
            if p.node in self.cluster and self.cluster.node(p.node).observes(p.attribute)
        )

        applied: List[PartitionOp] = []
        throttled = 0
        if not pairs:
            self.plan = None
            self._tadj.clear()
            return AdaptationReport(
                strategy=self.strategy,
                planning_seconds=0.0,
                adaptation_messages=sum(previous_edges.values()) if previous_edges else 0,
                monitoring_volume=0.0,
                collected_pairs=0,
                requested_pairs=0,
            )

        base_partition: Optional[Partition] = None
        if force_rebuild or self.strategy is AdaptationStrategy.REBUILD or previous_plan is None:
            new_plan = self._rebuild_planner.plan(pairs, self.cluster)
            self._tadj = {s: now for s in new_plan.partition.sets}
        else:
            base_plan, dirty = self._direct_apply(previous_plan, pairs, delta, now)
            new_plan = base_plan
            if self.strategy in (
                AdaptationStrategy.NO_THROTTLE,
                AdaptationStrategy.ADAPTIVE,
            ):
                base_partition = base_plan.partition
                new_plan, applied, throttled = self._restricted_search(
                    base_plan, pairs, dirty, now
                )

        if self.debug_checks:
            self._verify_step(new_plan, base_partition, applied)
        self.plan = new_plan
        new_edges = new_plan.edge_multiset()
        adaptation_messages = (
            MonitoringPlan.edge_multiset_diff(previous_edges, new_edges)
            if previous_edges is not None
            else sum(new_edges.values())
        )
        return AdaptationReport(
            strategy=self.strategy,
            planning_seconds=0.0,
            adaptation_messages=adaptation_messages,
            monitoring_volume=new_plan.total_message_cost(),
            collected_pairs=new_plan.collected_pair_count(),
            requested_pairs=new_plan.requested_pair_count(),
            applied_ops=[op.describe() for op in applied],
            applied_partition_ops=applied,
            throttled_ops=throttled,
        )

    def _verify_step(
        self,
        new_plan: MonitoringPlan,
        base_partition: Optional[Partition],
        applied: List[PartitionOp],
    ) -> None:
        """``debug_checks`` hook: statically verify one batch's outcome."""
        # Imported lazily: ``repro.core.__init__`` imports this module,
        # and ``repro.checks.adaptation`` imports ``repro.core`` types,
        # so a top-level import here would close an import cycle.
        from repro.checks.adaptation import check_adaptation_step
        from repro.checks.runner import check_plan_for_cluster

        report = check_plan_for_cluster(new_plan, self.cluster)
        if base_partition is not None:
            check_adaptation_step(
                base_partition, new_plan.partition, applied, report
            )
        report.raise_if_errors(f"{self.strategy.value} adaptation step")

    # ------------------------------------------------------------------
    # DIRECT-APPLY base topology
    # ------------------------------------------------------------------
    def _direct_apply(
        self,
        previous: MonitoringPlan,
        pairs: FrozenSet[NodeAttributePair],
        delta: TaskSetDelta,
        now: float,
    ) -> Tuple[MonitoringPlan, Set[AttributeSet]]:
        """Patch the current topology with minimum changes (D-A).

        Existing trees are mutated in place -- removed pairs are
        stripped from their nodes (pruning branches that end up empty),
        added pairs are grafted onto the tree carrying their attribute's
        set -- so only the edges genuinely affected by the task delta
        change.  Attributes new to the system get singleton trees built
        from leftover capacity.  Returns the base plan plus the set
        ``T`` of modified partition sets (the restricted search's
        anchor).
        """
        live_attrs = {p.attribute for p in pairs}
        changed_attrs = {p.attribute for p in delta.added | delta.removed}

        trees: Dict[AttributeSet, TreeBuildResult] = {}
        new_sets: List[FrozenSet[AttributeId]] = []
        dirty: Set[AttributeSet] = set()
        covered: Set[AttributeId] = set()
        for old_set in previous.partition.sets:
            trimmed = frozenset(a for a in old_set if a in live_attrs)
            if not trimmed:
                continue
            new_sets.append(trimmed)
            covered |= trimmed
            trees[trimmed] = previous.trees[old_set]
            if trimmed != old_set or (trimmed & changed_attrs):
                dirty.add(trimmed)
        fresh_attrs = sorted(live_attrs - covered)
        for attr in fresh_attrs:
            singleton = frozenset({attr})
            new_sets.append(singleton)
            dirty.add(singleton)
        partition = Partition(new_sets)
        attr_to_set = {a: s for s in partition.sets for a in s}

        # Strip removed pairs (and entirely removed attributes) in place.
        removals_by_set: Dict[AttributeSet, Set[NodeAttributePair]] = {}
        for pair in delta.removed:
            target = attr_to_set.get(pair.attribute)
            if target is None:
                continue
            removals_by_set.setdefault(target, set()).add(pair)
        for attr_set, result in trees.items():
            tree = result.tree
            dead_attrs = set(tree.attributes) - live_attrs
            removed_here = removals_by_set.get(attr_set, set())
            if not dead_attrs and not removed_here:
                continue
            victims = {p.node for p in removed_here}
            if dead_attrs:
                victims |= set(tree.nodes)
            for node in victims:
                if node not in tree:
                    continue
                local = tree.local_demand(node)
                trimmed_local = {
                    a: w
                    for a, w in local.items()
                    if a not in dead_attrs
                    and NodeAttributePair(node, a) not in removed_here
                }
                if trimmed_local != local:
                    tree.update_local(node, trimmed_local, check=False)
            self._prune_empty_leaves(tree)

        # Graft added pairs onto their sets' trees.  The delta is raw
        # task-manager output: clip it to the observable pair set the
        # plan actually targets.
        additions_by_set: Dict[AttributeSet, List[NodeAttributePair]] = {}
        for pair in delta.added:
            if pair not in pairs:
                continue
            target = attr_to_set.get(pair.attribute)
            if target is not None and target in trees:
                additions_by_set.setdefault(target, []).append(pair)
        for attr_set, added in additions_by_set.items():
            tree = trees[attr_set].tree
            self._refresh_tree_capacity(tree, trees)
            by_node: Dict[NodeId, Dict[AttributeId, float]] = {}
            for pair in sorted(added):
                by_node.setdefault(pair.node, {})[pair.attribute] = 1.0
            for node, extra in sorted(by_node.items()):
                if node in tree:
                    merged = tree.local_demand(node)
                    merged.update(extra)
                    tree.update_local(node, merged)  # best effort
                else:
                    self._graft_node(tree, node, extra)

        # Attributes new to the system: build their singleton trees from
        # leftover capacity, keeping everything else untouched.
        if fresh_attrs:
            keep = dict(trees)
            plan = self.forest.build(partition, pairs, self.cluster, keep=keep)
        else:
            plan = MonitoringPlan(partition, trees, pairs, self.cost)

        # T_adj tracks when a tree was last *adjusted by the optimizer*
        # (merge/split), not when DIRECT-APPLY patched it -- otherwise
        # every tree in the restricted search's anchor would always show
        # zero stability and cost-benefit throttling would veto every
        # operation unconditionally.  Brand-new sets start at `now`:
        # they must survive one quiet interval before optimization
        # spends messages on them.
        for s in plan.partition.sets:
            if s not in self._tadj:
                self._tadj[s] = now
        self._tadj = {
            s: t for s, t in self._tadj.items() if s in set(plan.partition.sets)
        }
        return plan, dirty

    @staticmethod
    def _prune_empty_leaves(tree: MonitoringTree) -> None:
        """Drop leaves (cascading upward) that carry no local values."""
        changed = True
        while changed:
            changed = False
            for node in list(tree.nodes):
                if node not in tree:
                    continue
                if tree.degree(node) == 0 and not tree.local_demand(node):
                    if tree.parent(node) is None and len(tree) > 1:
                        continue  # relay root: children still need it
                    tree.remove_branch(node)
                    changed = True

    def _refresh_tree_capacity(
        self,
        tree: MonitoringTree,
        trees: Dict[AttributeSet, TreeBuildResult],
    ) -> None:
        """Point the tree's live capacity view at current global headroom.

        A tree's capacity snapshot dates from when it was built; before
        grafting growth onto it, recompute what each node can actually
        still afford: the node's full budget minus its usage across
        *all* current trees, plus whatever this tree itself already
        uses there.
        """
        total_used: Dict[NodeId, float] = {}
        central_used = 0.0
        for result in trees.values():
            t = result.tree
            for node in t.nodes:
                total_used[node] = total_used.get(node, 0.0) + t.used(node)
            central_used += t.central_used()
        capacities = {}
        for node in self.cluster:
            own = tree.used(node.node_id) if node.node_id in tree else 0.0
            free = node.capacity - total_used.get(node.node_id, 0.0)
            capacities[node.node_id] = own + max(free, 0.0)
        tree.capacities = capacities
        tree.central_capacity = tree.central_used() + max(
            self.cluster.central_capacity - central_used, 0.0
        )

    @staticmethod
    def _graft_node(
        tree: MonitoringTree, node: NodeId, demand: Dict[AttributeId, float]
    ) -> bool:
        """Attach a brand-new node to an existing tree, shallowest first."""
        if len(tree) == 0:
            return tree.add_node(node, None, demand)
        entry = tree.entry_cost(demand)
        candidates = sorted(
            (p for p in tree.nodes if tree.available(p) >= entry - 1e-9),
            key=lambda p: (tree.depth(p), -tree.available(p), p),
        )
        for parent in candidates:
            if tree.add_node(node, parent, demand):
                return True
        return False

    # ------------------------------------------------------------------
    # Restricted local search (Section 4.1) + throttling (Section 4.2)
    # ------------------------------------------------------------------
    def _restricted_search(
        self,
        base: MonitoringPlan,
        pairs: FrozenSet[NodeAttributePair],
        dirty: Set[AttributeSet],
        now: float,
    ) -> Tuple[MonitoringPlan, List[PartitionOp], int]:
        plan = base
        anchor = set(dirty) & set(plan.partition.sets)
        applied: List[PartitionOp] = []
        throttled = 0
        with trace.span(
            names.SPAN_ADAPTATION_RESTRICTED_SEARCH, lane=names.LANE_ADAPTATION, anchor=len(anchor)
        ) as search_span:
            for _ in range(self.max_ops_per_batch):
                if not anchor:
                    break
                candidate = self._find_operation(plan, pairs, anchor)
                if candidate is None:
                    break
                op, cand_plan = candidate
                if self.strategy is AdaptationStrategy.ADAPTIVE:
                    if not self._cost_effective(plan, cand_plan, op, now):
                        throttled += 1
                        # Once an operation fails the cost-benefit test the
                        # algorithm terminates immediately (Section 4.2).
                        break
                plan = cand_plan
                applied.append(op)
                touched = self._sets_created_by(op)
                anchor = (anchor & set(plan.partition.sets)) | touched
                for s in touched:
                    self._tadj[s] = now
                self._tadj = {
                    s: t for s, t in self._tadj.items() if s in set(plan.partition.sets)
                }
            search_span.set(applied=len(applied), throttled=throttled)
        return plan, applied, throttled

    def _find_operation(
        self,
        plan: MonitoringPlan,
        pairs: FrozenSet[NodeAttributePair],
        anchor: Set[AttributeSet],
    ) -> Optional[Tuple[PartitionOp, MonitoringPlan]]:
        """Best valid merge and best valid split; pick the better.

        Candidates are ranked by cost effectiveness: estimated gain
        divided by a lower bound on the edges the operation would
        rewire (the absorbed tree for a merge, the carved-out
        attribute's node set for a split).
        """
        partition = plan.partition
        ctx = GainContext.from_plan(plan, self.cost)

        def effectiveness(op: PartitionOp) -> float:
            gain = estimate_gain(op, ctx)
            if gain == float("-inf"):
                return float("-inf")
            if isinstance(op, MergeOp):
                edge_bound = max(
                    1, min(len(plan.trees[op.left].tree), len(plan.trees[op.right].tree))
                )
            else:
                edge_bound = max(1, ctx.node_masks.get(op.attribute, 0).bit_count())
            return gain / edge_bound

        merge_best = self._first_valid(
            plan, pairs, partition.merge_ops(restrict_to=anchor), effectiveness
        )
        split_best = self._first_valid(
            plan, pairs, partition.split_ops(restrict_to=anchor), effectiveness
        )
        candidates = [c for c in (merge_best, split_best) if c is not None]
        if not candidates:
            return None
        return max(candidates, key=lambda item: _plan_key(item[1]))

    def _first_valid(
        self,
        plan: MonitoringPlan,
        pairs: FrozenSet[NodeAttributePair],
        ops: Iterable[PartitionOp],
        effectiveness: Callable[[PartitionOp], float],
    ) -> Optional[Tuple[PartitionOp, MonitoringPlan]]:
        ranked = sorted(
            ((effectiveness(op), op) for op in ops),
            key=lambda item: -item[0],
        )
        evaluated = 0
        for score, op in ranked:
            if score == float("-inf") or evaluated >= self.candidate_budget:
                break
            evaluated += 1
            candidate = self._evaluate_op(plan, pairs, op)
            if _improves(candidate, plan):
                return op, candidate
        return None

    def _evaluate_op(
        self,
        plan: MonitoringPlan,
        pairs: FrozenSet[NodeAttributePair],
        op: PartitionOp,
    ) -> MonitoringPlan:
        """Apply ``op`` rebuilding only the trees it touches."""
        new_partition = plan.partition.apply(op)
        touched = self._sets_created_by(op)
        keep = {
            s: plan.trees[s]
            for s in new_partition.sets
            if s not in touched and s in plan.trees
        }
        return self.forest.build(new_partition, pairs, self.cluster, keep=keep)

    @staticmethod
    def _sets_created_by(op: PartitionOp) -> Set[AttributeSet]:
        if isinstance(op, MergeOp):
            return {op.left | op.right}
        return {op.source - {op.attribute}, frozenset({op.attribute})}

    def _cost_effective(
        self,
        current: MonitoringPlan,
        candidate: MonitoringPlan,
        op: PartitionOp,
        now: float,
    ) -> bool:
        """The Section 4.2 throttle: ``M_adapt < (T_cur - min T_adj) * benefit``."""
        m_adapt = candidate.adaptation_cost_from(current)
        involved = (
            [op.left, op.right] if isinstance(op, MergeOp) else [op.source]
        )
        last_adjusted = min(self._tadj.get(s, now) for s in involved)
        stability = max(now - last_adjusted, 0.0)
        traffic_saving = max(
            current.total_message_cost() - candidate.total_message_cost(), 0.0
        )
        recovered = max(
            candidate.collected_pair_count() - current.collected_pair_count(), 0
        )
        benefit = traffic_saving + self.cost.value_cost(recovered)
        verdict = m_adapt < stability * benefit
        trace.event(
            names.EVENT_ADAPTATION_COST_BENEFIT,
            lane=names.LANE_ADAPTATION,
            op=op.describe(),
            m_adapt=m_adapt,
            stability=stability,
            benefit=benefit,
            verdict="apply" if verdict else "throttle",
        )
        return verdict


def _plan_key(plan: MonitoringPlan) -> Tuple[int, float]:
    return (plan.collected_pair_count(), -plan.total_message_cost())
