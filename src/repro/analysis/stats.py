"""Small, dependency-free summary statistics."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty sequence")
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return data[low]
    frac = rank - low
    return data[low] * (1.0 - frac) + data[high] * frac


def relative_change(new: float, baseline: float) -> float:
    """``(new - baseline) / |baseline|`` with a zero-safe denominator."""
    if math.isclose(baseline, 0.0):
        return 0.0 if math.isclose(new, 0.0) else math.copysign(math.inf, new)
    return (new - baseline) / abs(baseline)
