"""Human-readable rendering of trees and plans.

Debugging a planner means staring at topologies; these helpers print
monitoring trees as indented ASCII outlines annotated with the numbers
that matter (depth, local pairs, outgoing values, capacity usage) and
whole plans as per-tree summaries.
"""

from __future__ import annotations

from typing import List

from repro.core.plan import MonitoringPlan
from repro.trees.model import MonitoringTree


def render_tree(tree: MonitoringTree, max_nodes: int = 200) -> str:
    """Indented outline of a monitoring tree.

    Each line shows ``node(local_pairs) y=outgoing used/capacity``; the
    collector is the implicit super-root.  Output is truncated after
    ``max_nodes`` lines to keep giant trees printable.
    """
    if len(tree) == 0:
        return "(empty tree)"
    lines: List[str] = [
        f"tree[{','.join(sorted(tree.attributes))}] "
        f"nodes={len(tree)} height={tree.height()} pairs={tree.pair_count()}"
    ]
    count = 0

    def visit(node, depth):
        nonlocal count
        if count >= max_nodes:
            return
        count += 1
        cap = tree.capacities.get(node, 0.0)
        lines.append(
            f"{'  ' * (depth + 1)}{node} "
            f"({len(tree.local_demand(node))} local) "
            f"y={tree.outgoing_values(node):.1f} "
            f"used={tree.used(node):.1f}/{cap:.1f}"
        )
        for child in sorted(tree.children(node)):
            visit(child, depth + 1)

    visit(tree.root, 0)
    if count >= max_nodes and len(tree) > max_nodes:
        lines.append(f"  ... ({len(tree) - max_nodes} more nodes)")
    return "\n".join(lines)


def render_plan(plan: MonitoringPlan, max_trees: int = 50) -> str:
    """One-line-per-tree overview of a monitoring plan."""
    lines = [
        f"plan: coverage={plan.coverage():.3f} "
        f"({plan.collected_pair_count()}/{plan.requested_pair_count()} pairs), "
        f"{plan.tree_count()} trees, traffic={plan.total_message_cost():.1f}/period, "
        f"collector={plan.central_usage():.1f}"
    ]
    ordered = sorted(plan.trees.items(), key=lambda kv: -kv[1].tree.pair_count())
    for attr_set, result in ordered[:max_trees]:
        tree = result.tree
        attrs = ",".join(sorted(attr_set)[:5]) + ("..." if len(attr_set) > 5 else "")
        lines.append(
            f"  [{attrs}] nodes={len(tree)} height={tree.height()} "
            f"pairs={tree.pair_count()} excluded={len(result.excluded)} "
            f"root={tree.root}"
        )
    if plan.tree_count() > max_trees:
        lines.append(f"  ... ({plan.tree_count() - max_trees} more trees)")
    return "\n".join(lines)
