"""Aligned-text reporting for benchmark output.

Every figure-reproduction benchmark prints the same rows/series the
paper plots, using these helpers so EXPERIMENTS.md can quote the
output verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Union

Number = Union[int, float]


@dataclass
class Series:
    """One plotted line: a name plus y-values over a shared x-axis."""

    name: str
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)


def _format_cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.4f}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    min_width: int = 10,
) -> str:
    """Render an aligned table with a title rule."""
    rows = [list(r) for r in rows]
    widths = []
    for i, col in enumerate(columns):
        cells = [col] + [
            f"{r[i]:.4f}" if isinstance(r[i], float) else str(r[i]) for r in rows
        ]
        widths.append(max(min_width, max(len(c) for c in cells)))
    lines = [f"== {title} =="]
    lines.append("  ".join(c.rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_format_cell(cell, w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    print()
    print(format_table(title, columns, rows))


def print_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Sequence[Series],
) -> None:
    """Print plotted lines as a table: one row per x, one column per line."""
    columns = [x_label] + [s.name for s in series]
    rows = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for s in series:
            row.append(s.values[i] if i < len(s.values) else float("nan"))
        rows.append(row)
    print_table(title, columns, rows)
