"""Reporting, rendering, and summary-statistics helpers."""

from repro.analysis.render import render_plan, render_tree
from repro.analysis.report import Series, format_table, print_series, print_table
from repro.analysis.stats import mean, percentile, relative_change

__all__ = [
    "Series",
    "format_table",
    "mean",
    "percentile",
    "print_series",
    "print_table",
    "relative_change",
    "render_plan",
    "render_tree",
]
