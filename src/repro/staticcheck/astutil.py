"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The bare name a call targets: ``f()`` -> ``f``, ``x.m()`` -> ``m``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def keyword_arg(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def walk_function_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body, not descending into nested defs.

    Comprehensions and lambdas that merely *read* state still count as
    part of the function (they run inline); nested ``def``/``async
    def`` bodies do not (they run later, in their own frame).
    """
    stack = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def is_upper_constant_ref(node: ast.expr) -> Optional[str]:
    """The symbol name when ``node`` reads an UPPER_CASE constant
    (``FOO`` or ``names.FOO``), else ``None``."""
    if isinstance(node, ast.Name) and node.id.isupper():
        return node.id
    if isinstance(node, ast.Attribute) and node.attr.isupper():
        return node.attr
    return None
