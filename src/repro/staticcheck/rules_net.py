"""REMO41x (continued): socket-hygiene rules for ``repro.net`` code.

A leaked :class:`asyncio.StreamWriter` or server keeps its socket (and
often a protocol task) alive until garbage collection, which on a busy
event loop can be arbitrarily far away -- long enough to exhaust file
descriptors in a soak run.  REMO415 requires every stream handle the
function *owns* to be released on a statically visible path: a
``close()``/``wait_closed()`` call, a ``with``/``async with`` block,
or an escape that hands ownership elsewhere (stored on an attribute,
passed to a call, returned).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.astutil import dotted_name
from repro.staticcheck.context import AnalysisContext, ModuleUnderAnalysis
from repro.staticcheck.diagnostics import LintDiagnostic
from repro.staticcheck.registry import Rule, rule

#: Dotted call targets that hand the caller a socket-owning handle.
#: ``open_connection`` yields ``(reader, writer)`` -- the *writer* owns
#: the transport; ``start_server`` yields the server object itself.
STREAM_TUPLE_FACTORIES = {"asyncio.open_connection"}
STREAM_FACTORIES = {"asyncio.start_server"}

#: Method calls that count as releasing the handle.
RELEASE_METHODS = {"close", "wait_closed", "abort", "aclose"}


def _alias_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin (same resolution as REMO411)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _resolved_dotted(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


def _unwrap_await(node: ast.expr) -> ast.expr:
    return node.value if isinstance(node, ast.Await) else node


def _function_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk the function body without descending into nested defs."""
    stack: List[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def _acquired_handles(
    func: ast.AST, aliases: Dict[str, str]
) -> Iterator[Tuple[str, int, int, str]]:
    """Yield ``(name, line, col, factory)`` for stream handles bound to
    bare names in ``func``.

    Handles landing anywhere other than a plain name (an attribute, a
    subscript) already escape to longer-lived state and are someone
    else's to close.
    """
    for node in _own_body(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        call = _unwrap_await(node.value)
        if not isinstance(call, ast.Call):
            continue
        dotted = _resolved_dotted(call.func, aliases)
        target = node.targets[0]
        if dotted in STREAM_TUPLE_FACTORIES:
            # reader, writer = await asyncio.open_connection(...)
            if isinstance(target, (ast.Tuple, ast.List)) and len(target.elts) == 2:
                writer = target.elts[1]
                if isinstance(writer, ast.Name):
                    yield writer.id, node.lineno, node.col_offset + 1, dotted
        elif dotted in STREAM_FACTORIES:
            if isinstance(target, ast.Name):
                yield target.id, node.lineno, node.col_offset + 1, dotted


def _released_names(func: ast.AST) -> Set[str]:
    """Names the function visibly closes, hands off, or scopes."""
    released: Set[str] = set()
    for node in _own_body(func):
        if isinstance(node, ast.Call):
            # writer.close() / await server.wait_closed()
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.attr in RELEASE_METHODS
            ):
                released.add(node.func.value.id)
            # Escape: the handle passed whole to any call.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name):
                    released.add(arg.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = _unwrap_await(item.context_expr)
                if isinstance(expr, ast.Name):
                    released.add(expr.id)
        elif isinstance(node, ast.Assign):
            # Escape: re-homed onto an attribute/subscript or another
            # binding that may itself be closed later.
            if isinstance(node.value, ast.Name):
                released.add(node.value.id)
        elif isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
            value = node.value
            elements = value.elts if isinstance(value, (ast.Tuple, ast.List)) else [value]
            for element in elements:
                if isinstance(element, ast.Name):
                    released.add(element.id)
    return released


@rule
class UnclosedStreamHandleRule(Rule):
    code = "REMO415"
    title = "stream writer/server never closed"
    family = "async-safety"
    hint = (
        "close the handle on every path: `async with`, a finally block "
        "calling close()/wait_closed(), or hand it to an owner that does"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        aliases = _alias_map(module.tree)
        for func in _function_nodes(module.tree):
            acquired = list(_acquired_handles(func, aliases))
            if not acquired:
                continue
            released = _released_names(func)
            for name, line, col, factory in acquired:
                if name in released:
                    continue
                yield self.diagnostic(
                    module,
                    line,
                    col,
                    f"{factory}() handle {name!r} is never closed in "
                    f"{func.name}(); the socket stays open until garbage "
                    "collection",
                )
