"""Suppression: ``# noqa: REMO4xx`` comments and the baseline file.

Two escape hatches with different intents:

- ``# noqa: REMO421 -- <why>`` on the offending line is a *permanent,
  reviewed* suppression.  It lives next to the code, travels with it
  in diffs, and documents the justification (the single-writer
  argument, the deliberately-blocking call).  A bare ``# noqa`` (no
  codes) suppresses every rule on that line, flake8-style.

- ``staticcheck-baseline.json`` is *temporary debt*: pre-existing
  findings grandfathered when a rule lands, budgeted by fingerprint
  count so new instances of an old problem still fail the gate.
  Fingerprints exclude line numbers (see
  :meth:`~repro.staticcheck.diagnostics.LintDiagnostic.fingerprint`),
  so edits above a baselined finding do not churn the file.  The
  intended trajectory is monotonically toward an empty baseline --
  which is what the repo ships.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.staticcheck.diagnostics import LintDiagnostic

BASELINE_VERSION = 1

#: Default baseline location, relative to the project root.
BASELINE_FILENAME = "staticcheck-baseline.json"

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+?))?\s*(?:--.*)?$",
    re.IGNORECASE,
)


def noqa_codes(line: str) -> Optional[frozenset]:
    """The codes suppressed by a ``# noqa`` comment on ``line``.

    Returns ``None`` when the line carries no noqa comment, an empty
    frozenset for a bare ``# noqa`` (suppress everything), and the
    parsed code set for ``# noqa: REMO411, REMO421``-style comments.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return frozenset()
    return frozenset(
        code.strip().upper() for code in codes.split(",") if code.strip()
    )


def is_suppressed_by_noqa(
    diag: LintDiagnostic, source_lines: Sequence[str]
) -> bool:
    """True when the physical line the finding anchors to suppresses it."""
    if not 1 <= diag.line <= len(source_lines):
        return False
    codes = noqa_codes(source_lines[diag.line - 1])
    if codes is None:
        return False
    return not codes or diag.code in codes


@dataclass
class Baseline:
    """Fingerprint -> budget of grandfathered findings."""

    budgets: Dict[str, int] = field(default_factory=dict)
    #: Human-readable context per fingerprint (not consulted by the
    #: matcher; keeps the JSON reviewable).
    notes: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: baseline must be a JSON object")
        version = payload.get("version", BASELINE_VERSION)
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        entries = payload.get("findings", {})
        budgets: Dict[str, int] = {}
        notes: Dict[str, str] = {}
        for fingerprint, entry in dict(entries).items():
            if isinstance(entry, int):
                budgets[fingerprint] = entry
            elif isinstance(entry, dict):
                budgets[fingerprint] = int(entry.get("count", 1))
                note = entry.get("note")
                if note:
                    notes[fingerprint] = str(note)
        return cls(budgets=budgets, notes=notes)

    def save(self, path: Path) -> None:
        findings: Dict[str, object] = {}
        for fingerprint in sorted(self.budgets):
            entry: Dict[str, object] = {"count": self.budgets[fingerprint]}
            if fingerprint in self.notes:
                entry["note"] = self.notes[fingerprint]
            findings[fingerprint] = entry
        payload = {"version": BASELINE_VERSION, "findings": findings}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_diagnostics(
        cls, diagnostics: Sequence[LintDiagnostic]
    ) -> "Baseline":
        baseline = cls()
        for diag in diagnostics:
            fp = diag.fingerprint()
            baseline.budgets[fp] = baseline.budgets.get(fp, 0) + 1
            baseline.notes.setdefault(
                fp, f"{diag.path}: {diag.code} {diag.message}"
            )
        return baseline

    def apply(
        self, diagnostics: Sequence[LintDiagnostic]
    ) -> tuple:
        """Split ``diagnostics`` into (surviving, suppressed).

        Each fingerprint's budget absorbs that many findings (in source
        order); findings beyond the budget survive -- a *new* instance
        of a baselined problem still fails the gate.
        """
        remaining = dict(self.budgets)
        surviving: List[LintDiagnostic] = []
        suppressed: List[LintDiagnostic] = []
        for diag in sorted(diagnostics, key=LintDiagnostic.sort_key):
            fp = diag.fingerprint()
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                suppressed.append(diag)
            else:
                surviving.append(diag)
        return surviving, suppressed
