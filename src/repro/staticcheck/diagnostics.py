"""Diagnostics for the static analysis framework.

Mirrors the runtime verifier's design (:mod:`repro.checks.diagnostics`):
every finding carries a stable ``REMO4xx`` code so tests, CI gates, and
baselines key on exact failure classes rather than message strings.
The numbering extends the existing registry:

- ``REMO1xx``-``REMO3xx`` -- *runtime* plan-invariant diagnostics,
  raised by :mod:`repro.checks` after a plan exists;
- ``REMO40x`` -- source conventions (cost-model discipline; the
  retired conventions linter's C00x rules, migrated);
- ``REMO41x`` -- async-safety (blocking calls in coroutines, dropped
  task handles, timeout-less transport awaits);
- ``REMO42x`` -- interleaving hazards (shared agent state
  read-modify-written across ``await`` points);
- ``REMO43x`` -- observability consistency (metric/span/lane names
  must come from the :mod:`repro.obs.names` manifest).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is.  All shipped rules default to ``ERROR``
    (the lint gate is binary); ``WARNING`` exists for downstream rule
    authors who want annotations without failing CI."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class LintDiagnostic:
    """One static-analysis finding, anchored to a source location."""

    path: str  # posix, repo-relative when the file is under the root
    line: int
    col: int  # 1-based, matching compiler convention
    code: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        """The text-output line: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for the baseline file.

        Deliberately excludes ``line``/``col`` so unrelated edits above
        a baselined finding do not churn the baseline; two findings of
        the same code with the same message in the same file share one
        fingerprint and are budgeted by count.
        """
        raw = f"{self.path}::{self.code}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code, self.message)
