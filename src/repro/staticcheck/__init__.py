"""AST-based static analysis for the REMO reproduction (``repro lint``).

The runtime verifier (:mod:`repro.checks`, REMO1xx-3xx) validates
*plans* after they exist; this package validates *source* before it
runs, under the REMO4xx code space:

========  =====================================================
REMO400   file does not parse (reserved; emitted by the runner)
REMO401   exact ==/!= against a float literal         (ex-C001)
REMO402   mutable default argument                    (ex-C002)
REMO403   raw arithmetic over CostModel attributes    (ex-C003)
REMO411   blocking call inside ``async def``
REMO412   coroutine called but never awaited
REMO413   ``create_task``/``ensure_future`` handle dropped
REMO414   transport ``recv`` awaited without a timeout guard
REMO415   stream writer/server acquired but never closed
REMO421   instance attr read-modify-written across an ``await``
REMO431   metric name not declared in ``repro/obs/names.py``
REMO432   span/event name not declared in the manifest
REMO433   trace lane not declared in the manifest
REMO434   ``trace.span``/``timer`` not used as a with-context
========  =====================================================

Typical use::

    from pathlib import Path
    from repro.staticcheck import Baseline, lint_paths, render

    result = lint_paths([Path("src")], root=Path.cwd(),
                        baseline=Baseline.load(Path("staticcheck-baseline.json")))
    print(render(result, "text"))
    raise SystemExit(0 if result.ok else 1)

Suppression: ``# noqa: REMO4xx -- why`` on the line, or a fingerprint
budget in ``staticcheck-baseline.json`` (see
:mod:`repro.staticcheck.baseline`).
"""

from repro.staticcheck.baseline import (
    BASELINE_FILENAME,
    Baseline,
    is_suppressed_by_noqa,
    noqa_codes,
)
from repro.staticcheck.context import (
    AnalysisContext,
    ModuleUnderAnalysis,
    ObsManifest,
    parse_obs_manifest,
)
from repro.staticcheck.diagnostics import LintDiagnostic, Severity
from repro.staticcheck.output import FORMATS, render
from repro.staticcheck.registry import (
    SYNTAX_ERROR_CODE,
    Rule,
    RuleInfo,
    all_rule_classes,
    describe_rules,
    rule,
    rules_for,
)
from repro.staticcheck.runner import LintResult, iter_python_files, lint_paths

__all__ = [
    "AnalysisContext",
    "BASELINE_FILENAME",
    "Baseline",
    "FORMATS",
    "LintDiagnostic",
    "LintResult",
    "ModuleUnderAnalysis",
    "ObsManifest",
    "Rule",
    "RuleInfo",
    "SYNTAX_ERROR_CODE",
    "Severity",
    "all_rule_classes",
    "describe_rules",
    "is_suppressed_by_noqa",
    "iter_python_files",
    "lint_paths",
    "noqa_codes",
    "parse_obs_manifest",
    "render",
    "rule",
    "rules_for",
]
