"""REMO43x: observability consistency against the name manifest.

Dashboards and exporters key on metric, span, and lane *strings*.  A
typo at one ``incr`` site does not fail any test -- it silently forks a
second time series.  The contract these rules enforce: every name used
at an instrumentation site is declared in ``repro/obs/names.py`` (the
manifest the analysis context statically extracts -- parsed, never
imported).

- REMO431: metric-registry calls (``incr``/``observe``/``counter``/...)
  must use a declared metric name;
- REMO432: ``trace.span``/``trace.timer``/``trace.event`` must use a
  declared span/event name;
- REMO433: ``lane=`` must be a declared lane, a declared-prefix
  f-string, or a manifest lane helper (``names.node_lane(...)``);
- REMO434: ``trace.span``/``trace.timer`` return context managers that
  record on *exit* -- calling one outside a ``with`` header produces a
  span that never closes;
- REMO435: ``log.emit`` must use a declared structured-log event name
  (the manifest's ``LOG_EVENTS`` set) -- ad-hoc event strings fragment
  the flight-recorder ring and every JSONL log pipeline keyed on them.

Dynamic names (a lowercase variable forwarded through a shim) are
deliberately skipped: the rules check what is statically checkable and
stay silent otherwise.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.staticcheck.astutil import call_name, is_upper_constant_ref, keyword_arg
from repro.staticcheck.context import AnalysisContext, ModuleUnderAnalysis
from repro.staticcheck.diagnostics import LintDiagnostic
from repro.staticcheck.registry import Rule, rule

#: Registry methods whose first positional argument is a metric name.
METRIC_CALL_NAMES = {
    "incr",
    "set_gauge",
    "observe",
    "counter",
    "gauge",
    "histogram",
    "bump",
}

#: ``trace.<attr>`` entry points whose first argument is a span name.
TRACE_CALL_NAMES = {"span", "timer", "event"}

#: The manifest itself declares the names; its own literals are exempt.
MANIFEST_SUFFIX = "repro/obs/names.py"


def _is_manifest(module: ModuleUnderAnalysis) -> bool:
    return module.path.as_posix().endswith(MANIFEST_SUFFIX)


def _is_trace_call(node: ast.Call) -> Optional[str]:
    """``"span"``/``"timer"``/``"event"`` when ``node`` is a
    ``trace.<attr>(...)`` call, else ``None``."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in TRACE_CALL_NAMES
        and isinstance(func.value, ast.Name)
        and func.value.id == "trace"
    ):
        return func.attr
    return None


def _is_log_emit(node: ast.Call) -> bool:
    """True for ``log.emit(...)`` -- the structured-logging entry point."""
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "emit"
        and isinstance(func.value, ast.Name)
        and func.value.id == "log"
    )


def _declared_name(node: ast.expr, ctx: AnalysisContext) -> Optional[str]:
    """The manifest-resolved string for a name argument.

    A string literal resolves to itself; an UPPER_CASE constant ref
    resolves through the manifest's symbol table.  Anything else
    (a lowercase variable, a call) returns ``None`` -- not statically
    checkable, so the rules skip it.
    """
    assert ctx.obs is not None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    symbol = is_upper_constant_ref(node)
    if symbol is not None:
        return ctx.obs.symbols.get(symbol, f"<undeclared symbol {symbol}>")
    return None


@rule
class UndeclaredMetricNameRule(Rule):
    code = "REMO431"
    title = "metric name not declared in the obs manifest"
    family = "obs-consistency"
    hint = (
        "declare the name in repro/obs/names.py (and its METRICS set) and "
        "reference the constant; ad-hoc strings silently fork time series"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        if ctx.obs is None or _is_manifest(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if _is_trace_call(node) is not None:
                continue  # REMO432's jurisdiction
            if call_name(node) not in METRIC_CALL_NAMES:
                continue
            name = _declared_name(node.args[0], ctx)
            if name is not None and name not in ctx.obs.metrics:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset + 1,
                    f"metric name {name!r} is not declared in "
                    "repro/obs/names.py (METRICS)",
                )


@rule
class UndeclaredSpanNameRule(Rule):
    code = "REMO432"
    title = "span/event name not declared in the obs manifest"
    family = "obs-consistency"
    hint = (
        "declare the name in repro/obs/names.py (and its SPANS set) and "
        "reference the constant"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        if ctx.obs is None or _is_manifest(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if _is_trace_call(node) is None:
                continue
            name = _declared_name(node.args[0], ctx)
            if name is not None and name not in ctx.obs.spans:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset + 1,
                    f"span name {name!r} is not declared in "
                    "repro/obs/names.py (SPANS)",
                )


@rule
class UndeclaredLaneRule(Rule):
    code = "REMO433"
    title = "trace lane not declared in the obs manifest"
    family = "obs-consistency"
    hint = (
        "use a LANE_* constant, a lane helper (names.node_lane/"
        "worker_lane), or an f-string starting with a declared prefix"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        if ctx.obs is None or _is_manifest(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_trace_call(node) is None:
                continue
            lane = keyword_arg(node, "lane")
            if lane is None:
                continue
            problem = self._lane_problem(lane, ctx)
            if problem is not None:
                yield self.diagnostic(
                    module, lane.lineno, lane.col_offset + 1, problem
                )

    def _lane_problem(self, lane: ast.expr, ctx: AnalysisContext) -> Optional[str]:
        assert ctx.obs is not None
        resolved = _declared_name(lane, ctx)
        if resolved is not None:
            if resolved in ctx.obs.lanes:
                return None
            if any(resolved.startswith(p) for p in ctx.obs.lane_prefixes):
                return None
            return (
                f"lane {resolved!r} is not declared in repro/obs/names.py "
                "(LANES / LANE_PREFIXES)"
            )
        if isinstance(lane, ast.JoinedStr):
            head = lane.values[0] if lane.values else None
            leading = (
                head.value
                if isinstance(head, ast.Constant) and isinstance(head.value, str)
                else ""
            )
            if any(leading.startswith(p) for p in ctx.obs.lane_prefixes):
                return None
            return (
                f"f-string lane starting with {leading!r} matches no declared "
                "lane prefix; add the prefix to repro/obs/names.py or use a "
                "lane helper"
            )
        if isinstance(lane, ast.Call):
            helper = call_name(lane)
            if helper is not None and helper in ctx.obs.lane_helpers:
                return None
            return (
                f"lane computed by {helper or 'an expression'}() which is not "
                "a manifest lane helper (node_lane/worker_lane)"
            )
        # A plain variable: dynamic, not statically checkable.
        return None


@rule
class UndeclaredLogEventRule(Rule):
    code = "REMO435"
    title = "log event name not declared in the obs manifest"
    family = "obs-consistency"
    hint = (
        "declare the event in repro/obs/names.py (and its LOG_EVENTS set) "
        "and reference the LOG_* constant; ad-hoc strings fragment the "
        "flight-recorder and JSONL log streams"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        if ctx.obs is None or _is_manifest(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if not _is_log_emit(node):
                continue
            name = _declared_name(node.args[0], ctx)
            if name is not None and name not in ctx.obs.log_events:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset + 1,
                    f"log event name {name!r} is not declared in "
                    "repro/obs/names.py (LOG_EVENTS)",
                )


@rule
class SpanNotContextManagedRule(Rule):
    code = "REMO434"
    title = "trace.span/timer call not used as a with-context"
    family = "obs-consistency"
    hint = (
        "spans record duration on context exit; write "
        "'with trace.span(...):' (trace.event is the fire-and-forget form)"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        # Obs manifest not required: this is a structural rule.
        if _is_manifest(module):
            return
        with_contexts: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _is_trace_call(node)
            if kind not in ("span", "timer"):
                continue
            if id(node) in with_contexts:
                continue
            yield self.diagnostic(
                module,
                node.lineno,
                node.col_offset + 1,
                f"trace.{kind}(...) is not the context expression of a with "
                "statement; the span will never close (use trace.event for "
                "fire-and-forget marks)",
            )
