"""The lint driver: discover files, build context, run rules, suppress.

:func:`lint_paths` is the one entry point everything else goes
through -- the ``repro lint`` CLI, CI, and the test suite.  Pipeline:

1. discover ``.py`` files under the targets (:func:`iter_python_files`);
2. build the project-wide :class:`AnalysisContext` (or reuse a hash-
   matched cache, for CI);
3. parse each file once and run every selected rule over it, emitting
   ``REMO400`` for files the parser rejects;
4. drop findings suppressed by ``# noqa`` comments, then findings
   absorbed by the baseline's fingerprint budgets.

The result keeps the suppressed findings visible (separately) so
formats and tests can report *why* the gate passed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.staticcheck.baseline import Baseline, is_suppressed_by_noqa
from repro.staticcheck.context import AnalysisContext, ModuleUnderAnalysis
from repro.staticcheck.diagnostics import LintDiagnostic
from repro.staticcheck.registry import SYNTAX_ERROR_CODE, Rule, rules_for

#: Directory names never descended into during discovery.
EXCLUDED_DIRS = {
    ".git",
    "__pycache__",
    ".venv",
    "venv",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
    "build",
    "dist",
}


def iter_python_files(targets: Sequence[Path]) -> List[Path]:
    """All ``.py`` files under ``targets``, sorted and de-duplicated.

    Raises :class:`FileNotFoundError` for a target that does not exist
    (the CLI maps this to exit code 2, a usage error distinct from
    "findings exist").
    """
    seen = set()
    files: List[Path] = []
    for target in targets:
        if not target.exists():
            raise FileNotFoundError(f"no such file or directory: {target}")
        if target.is_file():
            candidates = [target] if target.suffix == ".py" else []
        else:
            candidates = [
                path
                for path in sorted(target.rglob("*.py"))
                if not any(part in EXCLUDED_DIRS for part in path.parts)
            ]
        for path in candidates:
            key = path.resolve()
            if key not in seen:
                seen.add(key)
                files.append(path)
    return files


@dataclass
class LintResult:
    """Everything a caller needs to render or gate on a lint run."""

    findings: List[LintDiagnostic] = field(default_factory=list)
    checked_files: List[Path] = field(default_factory=list)
    suppressed_noqa: List[LintDiagnostic] = field(default_factory=list)
    suppressed_baseline: List[LintDiagnostic] = field(default_factory=list)
    context: Optional[AnalysisContext] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    #: All raw findings before baseline suppression (noqa already
    #: applied) -- what ``--write-baseline`` snapshots.
    @property
    def pre_baseline(self) -> List[LintDiagnostic]:
        return sorted(
            [*self.findings, *self.suppressed_baseline],
            key=LintDiagnostic.sort_key,
        )


def _load_module(path: Path, root: Path) -> "ModuleUnderAnalysis | LintDiagnostic":
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    try:
        source = path.read_bytes().decode("utf-8")
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        col = (getattr(exc, "offset", 1) or 1) if isinstance(exc, SyntaxError) else 1
        detail = exc.msg if isinstance(exc, SyntaxError) else "not valid UTF-8"
        return LintDiagnostic(
            path=rel,
            line=line,
            col=col,
            code=SYNTAX_ERROR_CODE,
            message=f"file does not parse: {detail}",
        )
    return ModuleUnderAnalysis(
        path=path, rel=rel, tree=tree, source_lines=source.splitlines()
    )


def lint_paths(
    targets: Sequence[Path],
    root: Optional[Path] = None,
    codes: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    context_cache: Optional[Path] = None,
) -> LintResult:
    """Run the selected rules (all, when ``codes`` is empty) over the
    python files under ``targets``."""
    root = (root or Path.cwd()).resolve()
    files = iter_python_files(targets)
    rules: List[Rule] = rules_for(list(codes or []))
    if context_cache is not None:
        ctx = AnalysisContext.load_or_build(context_cache, files, root)
    else:
        ctx = AnalysisContext.build(files, root)

    raw: List[LintDiagnostic] = []
    noqa_dropped: List[LintDiagnostic] = []
    result = LintResult(checked_files=list(files), context=ctx)
    for path in files:
        loaded = _load_module(path, root)
        if isinstance(loaded, LintDiagnostic):
            raw.append(loaded)
            continue
        for a_rule in rules:
            for diag in a_rule.check(loaded, ctx):
                if is_suppressed_by_noqa(diag, loaded.source_lines):
                    noqa_dropped.append(diag)
                else:
                    raw.append(diag)

    surviving, baselined = (baseline or Baseline()).apply(raw)
    result.findings = sorted(surviving, key=LintDiagnostic.sort_key)
    result.suppressed_noqa = sorted(noqa_dropped, key=LintDiagnostic.sort_key)
    result.suppressed_baseline = baselined
    return result
