"""REMO40x: source conventions and cost-model discipline.

These are the retired conventions linter's C001-C003 rules, migrated
into the framework under stable REMO codes (C001 -> REMO401,
C002 -> REMO402, C003 -> REMO403) and generalized: REMO403 now also
catches augmented assignments and unary negations over the raw cost
attributes -- the exact shapes the incremental delta paths in
``trees/model.py`` would use if someone hand-rolled ``C + a*x`` there
instead of going through :class:`~repro.core.cost.CostModel`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.context import AnalysisContext, ModuleUnderAnalysis
from repro.staticcheck.diagnostics import LintDiagnostic
from repro.staticcheck.registry import Rule, rule

#: The one module allowed to do raw per_message/per_value arithmetic.
COST_MODEL_ALLOWLIST = ("src/repro/core/cost.py",)

COST_ATTRS = {"per_message", "per_value"}

MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CALLS and not node.args and not node.keywords
    return False


def _cost_attr_in(node: ast.AST) -> str:
    """The first raw cost attribute read inside ``node``, or ``""``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr in COST_ATTRS
            and isinstance(sub.ctx, ast.Load)
        ):
            return sub.attr
    return ""


@rule
class FloatLiteralEqualityRule(Rule):
    code = "REMO401"
    title = "exact ==/!= against a float literal"
    family = "conventions"
    hint = (
        "plan costs are accumulated floats; use math.isclose or an explicit "
        "tolerance (integer-literal comparisons are fine)"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.diagnostic(
                        module,
                        node.lineno,
                        node.col_offset + 1,
                        "exact ==/!= against a float literal; use math.isclose "
                        "or an explicit tolerance",
                    )
                    break


@rule
class MutableDefaultRule(Rule):
    code = "REMO402"
    title = "mutable default argument"
    family = "conventions"
    hint = "default to None and build the container inside the body"

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for default in [*args.defaults, *args.kw_defaults]:
                if default is not None and _mutable_default(default):
                    yield self.diagnostic(
                        module,
                        default.lineno,
                        default.col_offset + 1,
                        f"mutable default argument in {node.name}(); default "
                        "to None and build inside the body",
                    )


@rule
class CostArithmeticRule(Rule):
    code = "REMO403"
    title = "raw arithmetic over CostModel attributes"
    family = "cost-model"
    hint = (
        "use a CostModel method (message_cost/value_cost/overhead_cost/"
        "weighted_message_cost/values_within_budget); hand-rolled C + a*x "
        "is how cached-vs-recomputed drift (REMO203) gets born"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        if module.path.as_posix().endswith(COST_MODEL_ALLOWLIST):
            return
        findings = []

        def visit(node: ast.AST) -> None:
            attr = ""
            if isinstance(node, (ast.BinOp, ast.UnaryOp)):
                attr = _cost_attr_in(node)
            elif isinstance(node, ast.AugAssign):
                # total += cost.per_value (no BinOp in sight) -- the
                # delta-path shape the generalized rule exists for.
                attr = _cost_attr_in(node.value) or _cost_attr_in(node.target)
            if attr:
                # Report the outermost arithmetic expression only;
                # nested sub-expressions are the same finding.
                findings.append((node.lineno, node.col_offset + 1, attr))
                return
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(module.tree)
        for line, col, attr in findings:
            yield self.diagnostic(
                module,
                line,
                col,
                f"raw arithmetic over .{attr}; use a CostModel method "
                "(message_cost/value_cost/overhead_cost/"
                "weighted_message_cost/values_within_budget)",
            )
