"""The shared analysis context: project-wide tables rules consult.

A single AST pass per file builds what the rules need to see *across*
module boundaries:

- the **import graph** (which module imports which), so tooling can
  reason about layering;
- the **known-async function table**: every ``async def`` name in the
  project, with ambiguity tracking -- a bare name defined both sync
  and async somewhere (``run`` is both ``MonitoringRuntime.run`` and
  ``NodeAgent.run``) is excluded from name-based coroutine matching,
  which is what keeps REMO412 free of false positives;
- **class attribute maps**: for every class, the instance attributes
  assigned via ``self.x = ...`` anywhere in its body, plus which
  methods are coroutines (REMO421's shared-state analysis);
- the **obs manifest**: metric/span/lane/log-event names statically
  extracted from ``repro/obs/names.py`` -- parsed, never imported, so
  linting a broken tree cannot execute it.

The context serializes to JSON keyed by per-file SHA-256, so CI caches
it across runs (:meth:`AnalysisContext.load_or_build`): when no source
file changed, the whole build is skipped.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

CONTEXT_CACHE_VERSION = 2

#: Where the obs manifest lives, relative to a project root.
MANIFEST_RELPATH = Path("src") / "repro" / "obs" / "names.py"


@dataclass
class ModuleUnderAnalysis:
    """One parsed file, handed to every rule."""

    path: Path
    rel: str  # posix, root-relative when under the root
    tree: ast.Module
    source_lines: List[str]


@dataclass(frozen=True)
class ObsManifest:
    """Names declared by ``repro/obs/names.py`` (statically extracted)."""

    metrics: frozenset
    spans: frozenset
    lanes: frozenset
    lane_prefixes: Tuple[str, ...]
    #: Every UPPER_CASE string constant the manifest defines, by symbol.
    symbols: Dict[str, str]
    #: Helper functions (``node_lane``, ``worker_lane``) whose return
    #: values are legal dynamic lanes.
    lane_helpers: frozenset
    #: Structured-log event names (the LOG_EVENTS set; REMO435).
    log_events: frozenset = frozenset()


def _resolve_str(node: ast.expr, symbols: Dict[str, str]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return symbols.get(node.id)
    return None


def parse_obs_manifest(tree: ast.Module) -> ObsManifest:
    """Extract the manifest's declarations from its AST.

    Understands exactly the shapes ``names.py`` commits to: module-level
    ``NAME = "literal"`` constants, ``frozenset({...})`` / tuple
    collections of those constants, and top-level ``def`` lane helpers.
    """
    symbols: Dict[str, str] = {}
    collections: Dict[str, List[str]] = {}
    helpers: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            helpers.add(node.name)
            continue
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        literal = _resolve_str(value, symbols)
        if literal is not None:
            symbols[target.id] = literal
            continue
        # frozenset({...}) / frozenset((...)) / bare set or tuple literals.
        elements: Optional[List[ast.expr]] = None
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
            and len(value.args) == 1
        ):
            inner = value.args[0]
            if isinstance(inner, (ast.Set, ast.Tuple, ast.List)):
                elements = list(inner.elts)
        elif isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            elements = list(value.elts)
        if elements is not None:
            resolved = [_resolve_str(el, symbols) for el in elements]
            collections[target.id] = [item for item in resolved if item is not None]
    return ObsManifest(
        metrics=frozenset(collections.get("METRICS", [])),
        spans=frozenset(collections.get("SPANS", [])),
        lanes=frozenset(collections.get("LANES", [])),
        lane_prefixes=tuple(collections.get("LANE_PREFIXES", [])),
        symbols=symbols,
        lane_helpers=frozenset(helpers),
        log_events=frozenset(collections.get("LOG_EVENTS", [])),
    )


class _ModuleScan(ast.NodeVisitor):
    """Single pass over one module collecting the context's raw facts."""

    def __init__(self) -> None:
        self.imports: Set[str] = set()
        self.async_qualnames: List[str] = []
        self.async_names: Set[str] = set()
        self.sync_names: Set[str] = set()
        self.class_attrs: Dict[str, Set[str]] = {}
        self.async_methods: Dict[str, Set[str]] = {}
        self._class_stack: List[str] = []

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports.add(alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            self.imports.add(node.module)

    # -- classes and functions -----------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = ".".join([*self._class_stack, node.name])
        self.class_attrs.setdefault(qual, set())
        self.async_methods.setdefault(qual, set())
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _handle_def(self, node: ast.AST, name: str, is_async: bool) -> None:
        if is_async:
            self.async_names.add(name)
            qual = ".".join([*self._class_stack, name]) if self._class_stack else name
            self.async_qualnames.append(qual)
            if self._class_stack:
                owner = ".".join(self._class_stack)
                self.async_methods.setdefault(owner, set()).add(name)
        else:
            self.sync_names.add(name)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_def(node, node.name, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_def(node, node.name, is_async=True)

    # -- instance attributes -------------------------------------------
    def _record_self_store(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class_stack
        ):
            owner = ".".join(self._class_stack)
            self.class_attrs.setdefault(owner, set()).add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_self_store(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_self_store(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_self_store(node.target)
        self.generic_visit(node)


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name for ``path`` (best effort outside src/)."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class AnalysisContext:
    """Project-wide tables shared by every rule, JSON-serializable."""

    root: str = "."
    file_hashes: Dict[str, str] = field(default_factory=dict)
    import_graph: Dict[str, List[str]] = field(default_factory=dict)
    async_functions: List[str] = field(default_factory=list)
    async_names: Set[str] = field(default_factory=set)
    sync_names: Set[str] = field(default_factory=set)
    class_attrs: Dict[str, List[str]] = field(default_factory=dict)
    async_methods: Dict[str, List[str]] = field(default_factory=dict)
    obs: Optional[ObsManifest] = None

    @property
    def ambiguous_names(self) -> Set[str]:
        """Bare names defined both sync and async somewhere: excluded
        from name-based coroutine matching (REMO412)."""
        return self.async_names & self.sync_names

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, files: Sequence[Path], root: Path) -> "AnalysisContext":
        ctx = cls(root=str(root))
        manifest_tree: Optional[ast.Module] = None
        manifest_path = (root / MANIFEST_RELPATH).resolve()
        for path in files:
            try:
                raw = path.read_bytes()
                tree = ast.parse(raw.decode("utf-8"), filename=str(path))
            except (OSError, SyntaxError, UnicodeDecodeError):
                continue  # the runner reports unreadable/unparsable files
            ctx.file_hashes[path.as_posix()] = hashlib.sha256(raw).hexdigest()
            scan = _ModuleScan()
            scan.visit(tree)
            module = module_name_for(path, root)
            ctx.import_graph[module] = sorted(scan.imports)
            ctx.async_functions.extend(
                f"{module}:{qual}" for qual in scan.async_qualnames
            )
            ctx.async_names |= scan.async_names
            ctx.sync_names |= scan.sync_names
            for owner, attrs in scan.class_attrs.items():
                key = f"{module}:{owner}"
                merged = set(ctx.class_attrs.get(key, [])) | attrs
                ctx.class_attrs[key] = sorted(merged)
            for owner, methods in scan.async_methods.items():
                key = f"{module}:{owner}"
                merged = set(ctx.async_methods.get(key, [])) | methods
                ctx.async_methods[key] = sorted(merged)
            if path.resolve() == manifest_path or path.as_posix().endswith(
                MANIFEST_RELPATH.as_posix()
            ):
                manifest_tree = tree
        if manifest_tree is None and manifest_path.exists():
            try:
                manifest_tree = ast.parse(
                    manifest_path.read_text(encoding="utf-8"),
                    filename=str(manifest_path),
                )
            except (OSError, SyntaxError):
                manifest_tree = None
        if manifest_tree is not None:
            ctx.obs = parse_obs_manifest(manifest_tree)
        ctx.async_functions.sort()
        return ctx

    # -- serialization (CI cache) --------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "version": CONTEXT_CACHE_VERSION,
            "root": self.root,
            "file_hashes": dict(sorted(self.file_hashes.items())),
            "import_graph": {k: v for k, v in sorted(self.import_graph.items())},
            "async_functions": list(self.async_functions),
            "async_names": sorted(self.async_names),
            "sync_names": sorted(self.sync_names),
            "class_attrs": {k: v for k, v in sorted(self.class_attrs.items())},
            "async_methods": {k: v for k, v in sorted(self.async_methods.items())},
        }
        if self.obs is not None:
            payload["obs"] = {
                "metrics": sorted(self.obs.metrics),
                "spans": sorted(self.obs.spans),
                "lanes": sorted(self.obs.lanes),
                "lane_prefixes": list(self.obs.lane_prefixes),
                "symbols": dict(sorted(self.obs.symbols.items())),
                "lane_helpers": sorted(self.obs.lane_helpers),
                "log_events": sorted(self.obs.log_events),
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AnalysisContext":
        obs_raw = payload.get("obs")
        obs = None
        if isinstance(obs_raw, dict):
            obs = ObsManifest(
                metrics=frozenset(obs_raw.get("metrics", [])),
                spans=frozenset(obs_raw.get("spans", [])),
                lanes=frozenset(obs_raw.get("lanes", [])),
                lane_prefixes=tuple(obs_raw.get("lane_prefixes", [])),
                symbols=dict(obs_raw.get("symbols", {})),
                lane_helpers=frozenset(obs_raw.get("lane_helpers", [])),
                log_events=frozenset(obs_raw.get("log_events", [])),
            )
        return cls(
            root=str(payload.get("root", ".")),
            file_hashes=dict(payload.get("file_hashes", {})),
            import_graph={
                k: list(v) for k, v in dict(payload.get("import_graph", {})).items()
            },
            async_functions=list(payload.get("async_functions", [])),
            async_names=set(payload.get("async_names", [])),
            sync_names=set(payload.get("sync_names", [])),
            class_attrs={
                k: list(v) for k, v in dict(payload.get("class_attrs", {})).items()
            },
            async_methods={
                k: list(v) for k, v in dict(payload.get("async_methods", {})).items()
            },
            obs=obs,
        )

    def save(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load_or_build(
        cls, cache_path: Path, files: Sequence[Path], root: Path
    ) -> "AnalysisContext":
        """Reuse a cached context when every file hash still matches."""
        current = {
            path.as_posix(): _sha256(path) for path in files if path.exists()
        }
        if cache_path.exists():
            try:
                payload = json.loads(cache_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                payload = None
            if (
                isinstance(payload, dict)
                and payload.get("version") == CONTEXT_CACHE_VERSION
                and payload.get("file_hashes") == current
            ):
                return cls.from_dict(payload)
        ctx = cls.build(files, root)
        ctx.save(cache_path)
        return ctx
