"""REMO41x: async-safety rules for the runtime's event-loop code.

The live runtime is one event loop running dozens of agent coroutines;
the classic ways to break it are all statically visible:

- a *blocking* call inside ``async def`` stalls every agent at once
  (REMO411);
- a coroutine called but never awaited silently does nothing -- Python
  only warns at garbage-collection time, long after the period that
  needed the send (REMO412);
- a task handle dropped on the floor can be garbage-collected
  mid-flight, cancelling the task (REMO413: asyncio only keeps weak
  references to tasks);
- an inbox ``recv`` with no timeout turns one lost peer into a hung
  agent once the transport is a real socket (REMO414).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.staticcheck.astutil import call_name, dotted_name, keyword_arg
from repro.staticcheck.context import AnalysisContext, ModuleUnderAnalysis
from repro.staticcheck.diagnostics import LintDiagnostic
from repro.staticcheck.registry import Rule, rule

#: Dotted call targets that block the event loop.
BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.wait",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "socket.getaddrinfo",
    "requests.get",
    "requests.post",
    "requests.put",
    "requests.delete",
    "requests.head",
    "requests.request",
    "urllib.request.urlopen",
    "open",
    "io.open",
}

#: Calls that return a Task the caller must retain.
TASK_FACTORY_NAMES = {"create_task", "ensure_future"}

#: Method names treated as transport/collector receive operations.
RECV_NAMES = {"recv"}


def _alias_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin, for every import in the module.

    ``import time as t`` maps ``t -> time``; ``from time import sleep``
    maps ``sleep -> time.sleep``, so both spellings of a blocking call
    resolve to the same dotted target.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _resolved_dotted(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


def _async_function_calls(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AsyncFunctionDef, ast.Call]]:
    """Every call lexically inside an ``async def`` (nested sync defs
    excluded -- they run in their own frame, maybe in an executor)."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        stack: List[ast.AST] = [*node.body]
        while stack:
            sub = stack.pop()
            if isinstance(sub, ast.Call):
                yield node, sub
            for child in ast.iter_child_nodes(sub):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.append(child)


@rule
class BlockingCallInAsyncRule(Rule):
    code = "REMO411"
    title = "blocking call inside async def"
    family = "async-safety"
    hint = (
        "a blocking call stalls every coroutine on the loop; use the asyncio "
        "equivalent (asyncio.sleep, loop.run_in_executor, asyncio streams)"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        aliases = _alias_map(module.tree)
        for func, call in _async_function_calls(module.tree):
            dotted = _resolved_dotted(call.func, aliases)
            if dotted in BLOCKING_CALLS:
                yield self.diagnostic(
                    module,
                    call.lineno,
                    call.col_offset + 1,
                    f"blocking call {dotted}() inside async def {func.name}(); "
                    "this stalls the whole event loop",
                )


@rule
class UnawaitedCoroutineRule(Rule):
    code = "REMO412"
    title = "coroutine called but never awaited"
    family = "async-safety"
    hint = (
        "calling an async def returns a coroutine object; await it, or hand "
        "it to asyncio.create_task/ensure_future and retain the handle"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        known_async = ctx.async_names - ctx.ambiguous_names
        if not known_async:
            return
        for node in ast.walk(module.tree):
            # Expression statements are the only place a coroutine can
            # be discarded outright; assignments at least keep the
            # object reachable for a later await.
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            name = call_name(node.value)
            if name is not None and name in known_async:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset + 1,
                    f"result of coroutine {name}() is discarded without await; "
                    "the coroutine never runs",
                )


@rule
class DroppedTaskHandleRule(Rule):
    code = "REMO413"
    title = "task handle dropped (GC can cancel the task)"
    family = "async-safety"
    hint = (
        "asyncio keeps only weak references to tasks: retain the handle "
        "(a set the done-callback discards from, or an attribute) or await it"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            name = call_name(node.value)
            if name in TASK_FACTORY_NAMES:
                yield self.diagnostic(
                    module,
                    node.lineno,
                    node.col_offset + 1,
                    f"{name}() handle is dropped; the event loop holds only a "
                    "weak reference, so the task can be garbage-collected "
                    "mid-flight",
                )


@rule
class TimeoutlessRecvRule(Rule):
    code = "REMO414"
    title = "transport receive awaited without a timeout guard"
    family = "async-safety"
    hint = (
        "pass timeout= to recv (or wrap in asyncio.wait_for); over a real "
        "socket transport a silent peer would otherwise hang the agent forever"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Await) or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            if not isinstance(call.func, ast.Attribute):
                continue
            if call.func.attr not in RECV_NAMES:
                continue
            if keyword_arg(call, "timeout") is not None or len(call.args) >= 2:
                continue
            yield self.diagnostic(
                module,
                node.lineno,
                node.col_offset + 1,
                f"await {call.func.attr}(...) has no timeout guard; a lost "
                "peer or dropped stop message hangs this coroutine forever",
            )
