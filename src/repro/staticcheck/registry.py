"""The rule registry: stable codes, one class per rule.

Rules self-register via the :func:`rule` decorator, exactly like the
runtime verifier's ``CODES`` table but with behaviour attached: a rule
is an object whose :meth:`Rule.check` walks one module's AST (with the
project-wide :class:`~repro.staticcheck.context.AnalysisContext`
available) and yields diagnostics.  Codes are append-only; never
renumber.
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Type

from repro.staticcheck.diagnostics import LintDiagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.staticcheck.context import AnalysisContext, ModuleUnderAnalysis

_CODE_RE = re.compile(r"^REMO4\d\d$")

#: Pseudo-code reserved for files the parser rejects; emitted by the
#: runner rather than a rule (a broken file cannot be rule-checked).
SYNTAX_ERROR_CODE = "REMO400"


@dataclass(frozen=True)
class RuleInfo:
    """Registry metadata for one diagnostic code."""

    code: str
    title: str
    family: str
    hint: str


class Rule(abc.ABC):
    """One static-analysis rule with a stable diagnostic code."""

    code: str = ""
    title: str = ""
    family: str = ""
    hint: str = ""

    @abc.abstractmethod
    def check(
        self, module: "ModuleUnderAnalysis", ctx: "AnalysisContext"
    ) -> Iterator[LintDiagnostic]:
        """Yield findings for one parsed module."""

    def diagnostic(
        self,
        module: "ModuleUnderAnalysis",
        line: int,
        col: int,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> LintDiagnostic:
        return LintDiagnostic(
            path=module.rel,
            line=line,
            col=col,
            code=self.code,
            message=message,
            severity=severity,
        )

    @classmethod
    def info(cls) -> RuleInfo:
        return RuleInfo(code=cls.code, title=cls.title, family=cls.family, hint=cls.hint)


_REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule under its ``REMO4xx`` code."""
    if not _CODE_RE.match(cls.code):
        raise ValueError(f"rule code must match REMO4xx, got {cls.code!r}")
    if cls.code == SYNTAX_ERROR_CODE:
        raise ValueError(f"{SYNTAX_ERROR_CODE} is reserved for syntax errors")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    if not (cls.title and cls.family and cls.hint):
        raise ValueError(f"rule {cls.code} needs title/family/hint metadata")
    _REGISTRY[cls.code] = cls
    return cls


def _ensure_rules_loaded() -> None:
    """Import the rule modules (registration happens at import time)."""
    import importlib

    for mod in ("rules_async", "rules_cost", "rules_interleave", "rules_net", "rules_obs"):
        importlib.import_module(f"repro.staticcheck.{mod}")


def all_rule_classes() -> List[Type[Rule]]:
    """Every registered rule class, sorted by code."""
    _ensure_rules_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rules_for(codes: List[str]) -> List[Rule]:
    """Instantiate the rules for ``codes`` (all registered when empty)."""
    classes = all_rule_classes()
    if codes:
        known = {cls.code: cls for cls in classes}
        unknown = [code for code in codes if code not in known]
        if unknown:
            raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        classes = [known[code] for code in sorted(set(codes))]
    return [cls() for cls in classes]


def describe_rules() -> List[RuleInfo]:
    """Registry listing for ``repro lint --codes`` (REMO400 included)."""
    infos = [
        RuleInfo(
            code=SYNTAX_ERROR_CODE,
            title="file does not parse",
            family="parse",
            hint="fix the syntax error; no other rule can run on this file",
        )
    ]
    infos.extend(cls.info() for cls in all_rule_classes())
    return sorted(infos, key=lambda info: info.code)
