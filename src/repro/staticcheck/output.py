"""Output formats for lint results: text, JSON, GitHub annotations.

- ``text`` is the human/terminal form: one ``path:line:col: CODE
  message`` line per finding (clickable in editors), plus a summary.
- ``json`` is the machine form: a stable schema with the findings,
  per-code counts, and suppression tallies.
- ``github`` emits ``::error`` workflow commands so findings surface
  as inline PR annotations in Actions, followed by the text summary on
  stderr-safe plain lines (Actions ignores non-command lines).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.staticcheck.diagnostics import LintDiagnostic, Severity
from repro.staticcheck.runner import LintResult

FORMATS = ("text", "json", "github")


def _summary_line(result: LintResult) -> str:
    verdict = "FAIL" if result.findings else "OK"
    parts = [
        f"{len(result.checked_files)} file(s) checked",
        f"{len(result.findings)} finding(s)",
    ]
    if result.suppressed_noqa:
        parts.append(f"{len(result.suppressed_noqa)} noqa-suppressed")
    if result.suppressed_baseline:
        parts.append(f"{len(result.suppressed_baseline)} baselined")
    return f"staticcheck: {verdict} ({', '.join(parts)})"


def render_text(result: LintResult) -> str:
    lines = [diag.format() for diag in result.findings]
    lines.append(_summary_line(result))
    return "\n".join(lines)


def _diag_dict(diag: LintDiagnostic) -> Dict[str, object]:
    return {
        "path": diag.path,
        "line": diag.line,
        "col": diag.col,
        "code": diag.code,
        "message": diag.message,
        "severity": diag.severity.value,
        "fingerprint": diag.fingerprint(),
    }


def render_json(result: LintResult) -> str:
    by_code: Dict[str, int] = {}
    for diag in result.findings:
        by_code[diag.code] = by_code.get(diag.code, 0) + 1
    payload = {
        "version": 1,
        "ok": not result.findings,
        "checked_files": [str(p) for p in result.checked_files],
        "findings": [_diag_dict(d) for d in result.findings],
        "counts": {
            "findings": len(result.findings),
            "by_code": {code: by_code[code] for code in sorted(by_code)},
            "suppressed_noqa": len(result.suppressed_noqa),
            "suppressed_baseline": len(result.suppressed_baseline),
        },
    }
    return json.dumps(payload, indent=2)


def _github_escape(value: str) -> str:
    """Escape per the workflow-command property grammar."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _github_escape_message(value: str) -> str:
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(result: LintResult) -> str:
    lines: List[str] = []
    for diag in result.findings:
        level = "error" if diag.severity is Severity.ERROR else "warning"
        props = (
            f"file={_github_escape(diag.path)},"
            f"line={diag.line},col={diag.col},"
            f"title={_github_escape(diag.code)}"
        )
        lines.append(
            f"::{level} {props}::{_github_escape_message(diag.message)}"
        )
    lines.append(_summary_line(result))
    return "\n".join(lines)


def render(result: LintResult, fmt: str) -> str:
    if fmt == "text":
        return render_text(result)
    if fmt == "json":
        return render_json(result)
    if fmt == "github":
        return render_github(result)
    raise ValueError(f"unknown output format {fmt!r} (choose from {FORMATS})")
