"""REMO42x: interleaving hazards across ``await`` points.

An asyncio coroutine can be preempted at every ``await`` -- and only
there.  That makes the hazardous pattern precise: *read* shared
instance state, ``await``, then *write* it back.  Whatever interleaved
during the await is silently overwritten (the textbook lost update,
minus threads).

The rule analyzes every class that has at least one coroutine method
(the analysis context's class tables say which).  Within each
coroutine it linearizes attribute events by source line: a ``self.x``
load is a READ, a ``self.x = ...`` / ``self.x += ...`` store is a
WRITE, and a mutating method call (``self.x.clear()``,
``self.x.append(...)``) or subscript store (``self.x[k] = v``) is
both.  A READ at line *r* and WRITE at line *w* with an ``await``
strictly between fires REMO421.

False positives have an escape hatch that doubles as documentation:
``# noqa: REMO421`` on the write line, with a comment explaining the
single-writer argument.  Holding a lock is recognized structurally --
anything inside ``async with`` is exempt, since the await points under
a lock are ordered by it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.staticcheck.context import AnalysisContext, ModuleUnderAnalysis
from repro.staticcheck.diagnostics import LintDiagnostic
from repro.staticcheck.registry import Rule, rule

#: Method names that mutate the container they are called on.
MUTATING_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}


def _attr_events(
    func: ast.AsyncFunctionDef, instance_attrs: Set[str]
) -> Tuple[Dict[str, List[Tuple[int, str]]], List[int]]:
    """Per-attribute (line, "read"/"write") events plus await lines.

    Nested ``def``/``async def`` bodies are skipped (they execute in
    their own frame); everything under ``async with`` is skipped too,
    because a held lock orders the await points it contains.
    """
    events: Dict[str, List[Tuple[int, str]]] = {}
    awaits: List[int] = []

    def record(attr: str, line: int, kind: str) -> None:
        if attr in instance_attrs:
            events.setdefault(attr, []).append((line, kind))

    def is_self_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.AsyncWith):
            # Locked region: analyze nothing inside it; the lock is the
            # justification the rule asks for.
            return
        if isinstance(node, ast.Await):
            awaits.append(node.lineno)
        elif isinstance(node, ast.Attribute) and is_self_attr(node):
            if isinstance(node.ctx, ast.Store):
                record(node.attr, node.lineno, "write")
            elif isinstance(node.ctx, ast.Del):
                record(node.attr, node.lineno, "write")
            else:
                record(node.attr, node.lineno, "read")
        elif isinstance(node, ast.AugAssign) and is_self_attr(node.target):
            target = node.target
            assert isinstance(target, ast.Attribute)
            record(target.attr, node.lineno, "read")
            record(target.attr, node.lineno, "write")
            visit(node.value)
            return
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in MUTATING_METHODS
                and is_self_attr(func_expr.value)
            ):
                inner = func_expr.value
                assert isinstance(inner, ast.Attribute)
                record(inner.attr, node.lineno, "read")
                record(inner.attr, node.lineno, "write")
                for arg in [*node.args, *node.keywords]:
                    visit(arg)
                return
        elif isinstance(node, ast.Subscript) and is_self_attr(node.value):
            inner = node.value
            assert isinstance(inner, ast.Attribute)
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                record(inner.attr, node.lineno, "read")
                record(inner.attr, node.lineno, "write")
            else:
                record(inner.attr, node.lineno, "read")
            visit(node.slice)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in func.body:
        visit(stmt)
    return events, awaits


@rule
class AwaitInterleavingRule(Rule):
    code = "REMO421"
    title = "instance attribute read-modify-written across an await"
    family = "interleaving"
    hint = (
        "whatever ran during the await is overwritten (lost update); hold an "
        "asyncio.Lock across the read-modify-write, restructure so the write "
        "precedes the await, or document the single-writer argument with "
        "'# noqa: REMO421 -- <why>'"
    )

    def check(
        self, module: ModuleUnderAnalysis, ctx: AnalysisContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            class_attrs = self._attrs_for(node, ctx)
            if not class_attrs:
                continue
            for item in node.body:
                if not isinstance(item, ast.AsyncFunctionDef):
                    continue
                yield from self._check_coroutine(module, node.name, item, class_attrs)

    def _attrs_for(self, node: ast.ClassDef, ctx: AnalysisContext) -> Set[str]:
        """Instance attrs of this class, from the context's class maps
        (any module's entry for this class name; the map is keyed
        ``module:Class`` and class names are unique enough here)."""
        attrs: Set[str] = set()
        suffix = f":{node.name}"
        for key, names in ctx.class_attrs.items():
            if key.endswith(suffix):
                attrs.update(names)
        return attrs

    def _check_coroutine(
        self,
        module: ModuleUnderAnalysis,
        class_name: str,
        func: ast.AsyncFunctionDef,
        instance_attrs: Set[str],
    ) -> Iterator[LintDiagnostic]:
        events, awaits = _attr_events(func, instance_attrs)
        if not awaits:
            return
        for attr, attr_events in sorted(events.items()):
            reads = [line for line, kind in attr_events if kind == "read"]
            writes = [line for line, kind in attr_events if kind == "write"]
            hit = None
            for r in reads:
                for w in writes:
                    if r < w and any(r < a < w for a in awaits):
                        hit = (r, w)
                        break
                if hit:
                    break
            if hit is None:
                continue
            r, w = hit
            yield self.diagnostic(
                module,
                w,
                1,
                f"{class_name}.{attr} is read (line {r}) and written "
                f"(line {w}) across an await point in {func.name}(); "
                "interleaved coroutines can be lost-updated",
            )
