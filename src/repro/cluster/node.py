"""Cluster nodes and the cluster container.

A :class:`SimNode` is a monitoring node: it owns a resource capacity
``b_i`` (cost units per unit time available for monitoring I/O, CPU
being the paper's primary resource) and a set of locally observable
attributes.  The :class:`Cluster` also models the *central node* (the
data collector), which has its own capacity -- the paper's Fig. 4(a)
"star collection" fails precisely because the central node's capacity
is finite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set

from repro.core.attributes import AttributeId, NodeAttributePair, NodeId

#: Conventional id for the central collector in topology descriptions.
CENTRAL_NODE_ID: NodeId = -1


@dataclass
class SimNode:
    """One monitoring node.

    Parameters
    ----------
    node_id:
        Unique non-negative integer id.
    capacity:
        ``b_i``: budget of cost units per unit time the node may spend
        sending and receiving monitoring messages.
    attributes:
        Attribute types observable at this node.
    """

    node_id: NodeId
    capacity: float
    attributes: FrozenSet[AttributeId] = frozenset()

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")
        if self.capacity <= 0:
            raise ValueError(
                f"node {self.node_id} capacity must be > 0, got {self.capacity}"
            )
        self.attributes = frozenset(self.attributes)

    def observes(self, attribute: AttributeId) -> bool:
        """Whether ``attribute`` is locally observable at this node."""
        return attribute in self.attributes


class Cluster:
    """A set of monitoring nodes plus the central data collector.

    The cluster is the planner's view of the deployment: ids,
    capacities and observability.  Dynamic state (metric values,
    failures) lives in the simulation layer.
    """

    def __init__(self, nodes: Iterable[SimNode], central_capacity: float) -> None:
        self._nodes: Dict[NodeId, SimNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise ValueError(f"duplicate node id {node.node_id}")
            self._nodes[node.node_id] = node
        if central_capacity <= 0:
            raise ValueError(f"central capacity must be > 0, got {central_capacity}")
        self.central_capacity = central_capacity

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[SimNode]:
        return iter(self._nodes.values())

    def node(self, node_id: NodeId) -> SimNode:
        """Return the node with ``node_id``."""
        return self._nodes[node_id]

    def capacity(self, node_id: NodeId) -> float:
        """Capacity ``b_i`` of ``node_id``."""
        return self._nodes[node_id].capacity

    @property
    def node_ids(self) -> List[NodeId]:
        """All node ids, ascending."""
        return sorted(self._nodes)

    def validate_pairs(self, pairs: Iterable[NodeAttributePair]) -> None:
        """Raise ``ValueError`` for pairs naming unknown nodes or
        attributes the node cannot observe."""
        for pair in pairs:
            if pair.node not in self._nodes:
                raise ValueError(f"pair {pair} names unknown node {pair.node}")
            if not self._nodes[pair.node].observes(pair.attribute):
                raise ValueError(
                    f"node {pair.node} does not observe attribute "
                    f"{pair.attribute!r} (pair {pair})"
                )

    def observable_pairs(self) -> Set[NodeAttributePair]:
        """Every (node, attribute) pair the cluster can produce."""
        return {
            NodeAttributePair(node.node_id, attr)
            for node in self._nodes.values()
            for attr in node.attributes
        }

    def total_capacity(self) -> float:
        """Sum of all monitoring-node capacities (excludes the collector)."""
        return sum(n.capacity for n in self._nodes.values())
