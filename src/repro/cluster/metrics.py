"""Time-varying metric value generators.

The real-system part of the paper's evaluation (Fig. 8) measures the
*average percentage error* between the collector's view of each
node-attribute pair and the ground-truth value at the same instant.
Error comes from staleness: values delayed by tree depth or dropped at
overloaded nodes leave the collector holding an old reading while the
true value keeps moving.  To reproduce that, the simulator needs
plausible continuously changing signals; this module provides the
generators (random walks, AR(1) processes, bursty regime-switching
rates, and noisy constants) plus a registry that owns one generator
per node-attribute pair.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Optional

from repro.core.attributes import NodeAttributePair


class MetricGenerator:
    """Base class: a scalar signal advanced in unit-time steps.

    Subclasses implement :meth:`_step`; :attr:`current` always holds the
    value at the present simulation instant.
    """

    def __init__(self, initial: float) -> None:
        self.current = float(initial)

    def advance(self, rng: random.Random) -> float:
        """Advance one unit of time and return the new current value."""
        self.current = self._step(rng)
        return self.current

    def _step(self, rng: random.Random) -> float:
        raise NotImplementedError


class RandomWalkMetric(MetricGenerator):
    """A bounded additive random walk (e.g. queue occupancy)."""

    def __init__(
        self,
        initial: float = 50.0,
        step: float = 2.0,
        low: float = 0.0,
        high: float = 100.0,
    ) -> None:
        if low >= high:
            raise ValueError(f"need low < high, got [{low}, {high}]")
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        super().__init__(min(max(initial, low), high))
        self.step_size = step
        self.low = low
        self.high = high

    def _step(self, rng: random.Random) -> float:
        value = self.current + rng.uniform(-self.step_size, self.step_size)
        return min(max(value, self.low), self.high)


class AR1Metric(MetricGenerator):
    """A mean-reverting AR(1) process (e.g. CPU utilization)."""

    def __init__(
        self,
        mean: float = 50.0,
        phi: float = 0.9,
        sigma: float = 3.0,
        initial: Optional[float] = None,
    ) -> None:
        if not 0.0 <= phi < 1.0:
            raise ValueError(f"phi must be in [0, 1), got {phi}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        super().__init__(mean if initial is None else initial)
        self.mean = mean
        self.phi = phi
        self.sigma = sigma

    def _step(self, rng: random.Random) -> float:
        return self.mean + self.phi * (self.current - self.mean) + rng.gauss(0.0, self.sigma)


class BurstyMetric(MetricGenerator):
    """A two-regime (calm/burst) rate signal.

    Stream processing workloads are "highly bursty" (Section 1); this
    generator switches between a calm level and a burst level with
    configurable transition probabilities, with multiplicative noise.
    """

    def __init__(
        self,
        calm_level: float = 100.0,
        burst_level: float = 1000.0,
        p_enter_burst: float = 0.05,
        p_exit_burst: float = 0.3,
        noise: float = 0.1,
    ) -> None:
        if calm_level <= 0 or burst_level <= 0:
            raise ValueError("levels must be > 0")
        if not (0 <= p_enter_burst <= 1 and 0 <= p_exit_burst <= 1):
            raise ValueError("transition probabilities must be in [0, 1]")
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        super().__init__(calm_level)
        self.calm_level = calm_level
        self.burst_level = burst_level
        self.p_enter_burst = p_enter_burst
        self.p_exit_burst = p_exit_burst
        self.noise = noise
        self._bursting = False

    def _step(self, rng: random.Random) -> float:
        if self._bursting:
            if rng.random() < self.p_exit_burst:
                self._bursting = False
        else:
            if rng.random() < self.p_enter_burst:
                self._bursting = True
        level = self.burst_level if self._bursting else self.calm_level
        return level * (1.0 + rng.uniform(-self.noise, self.noise))


class ConstantNoiseMetric(MetricGenerator):
    """A constant plus small Gaussian noise (e.g. a config-derived gauge)."""

    def __init__(self, level: float = 10.0, sigma: float = 0.5) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        super().__init__(level)
        self.level = level
        self.sigma = sigma

    def _step(self, rng: random.Random) -> float:
        return self.level + rng.gauss(0.0, self.sigma)


#: Factory signature used by :class:`MetricRegistry`.
MetricFactory = Callable[[NodeAttributePair, random.Random], MetricGenerator]


def default_metric_factory(pair: NodeAttributePair, rng: random.Random) -> MetricGenerator:
    """Mixed-population default: walks, AR(1), bursty, and gauges."""
    choice = rng.random()
    if choice < 0.4:
        return AR1Metric(mean=rng.uniform(20, 80), phi=0.9, sigma=rng.uniform(1, 5))
    if choice < 0.7:
        return RandomWalkMetric(initial=rng.uniform(10, 90), step=rng.uniform(1, 4))
    if choice < 0.85:
        return BurstyMetric(calm_level=rng.uniform(50, 200), burst_level=rng.uniform(500, 2000))
    return ConstantNoiseMetric(level=rng.uniform(5, 50), sigma=rng.uniform(0.1, 1.0))


class MetricRegistry:
    """Ground-truth signal store: one generator per node-attribute pair.

    The simulator advances all generators each unit of time; the
    collector's view is compared against :meth:`value` snapshots to
    compute percentage error.
    """

    def __init__(
        self,
        pairs: Iterable[NodeAttributePair],
        factory: MetricFactory = default_metric_factory,
        seed: Optional[int] = None,
    ) -> None:
        self._rng = random.Random(seed)
        self._generators: Dict[NodeAttributePair, MetricGenerator] = {
            pair: factory(pair, self._rng) for pair in pairs
        }

    def __len__(self) -> int:
        return len(self._generators)

    def __contains__(self, pair: NodeAttributePair) -> bool:
        return pair in self._generators

    def pairs(self) -> Iterable[NodeAttributePair]:
        return self._generators.keys()

    def value(self, pair: NodeAttributePair) -> float:
        """Ground-truth value of ``pair`` at the current instant."""
        return self._generators[pair].current

    def advance_all(self) -> None:
        """Advance every signal by one unit of time."""
        for gen in self._generators.values():
            gen.advance(self._rng)

    def ensure(self, pair: NodeAttributePair, factory: Optional[MetricFactory] = None) -> None:
        """Register ``pair`` lazily (used when tasks add new pairs at runtime)."""
        if pair not in self._generators:
            make = factory if factory is not None else default_metric_factory
            self._generators[pair] = make(pair, self._rng)
