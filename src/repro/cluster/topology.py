"""Cluster generators.

Builders for the synthetic deployments used throughout the paper's
evaluation: clusters of ``n`` nodes, each observing a random subset of
an attribute pool, with uniform or heterogeneous capacities, plus a
central collector.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.cluster.node import Cluster, SimNode
from repro.core.attributes import AttributeId


def default_attribute_pool(n_attributes: int) -> List[AttributeId]:
    """Attribute names ``attr00 .. attrNN`` used by synthetic workloads."""
    if n_attributes <= 0:
        raise ValueError(f"n_attributes must be > 0, got {n_attributes}")
    width = max(2, len(str(n_attributes - 1)))
    return [f"attr{i:0{width}d}" for i in range(n_attributes)]


def make_uniform_cluster(
    n_nodes: int,
    capacity: float,
    attrs_per_node: int = 10,
    attribute_pool: Optional[Sequence[AttributeId]] = None,
    central_capacity: Optional[float] = None,
    seed: Optional[int] = None,
) -> Cluster:
    """A cluster of ``n_nodes`` identical-capacity nodes.

    Each node observes ``attrs_per_node`` attributes sampled uniformly
    without replacement from ``attribute_pool`` (default: a pool of
    ``2 * attrs_per_node`` generated names, so attribute sets overlap
    across nodes as in the paper's synthetic experiments).

    ``central_capacity`` defaults to 4x a node's capacity: the collector
    is better provisioned, but still finite -- the premise of the whole
    planning problem.
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be > 0, got {n_nodes}")
    if attrs_per_node <= 0:
        raise ValueError(f"attrs_per_node must be > 0, got {attrs_per_node}")
    rng = random.Random(seed)
    pool = list(attribute_pool) if attribute_pool is not None else default_attribute_pool(
        2 * attrs_per_node
    )
    if attrs_per_node > len(pool):
        raise ValueError(
            f"attrs_per_node={attrs_per_node} exceeds pool size {len(pool)}"
        )
    nodes = [
        SimNode(
            node_id=i,
            capacity=capacity,
            attributes=frozenset(rng.sample(pool, attrs_per_node)),
        )
        for i in range(n_nodes)
    ]
    return Cluster(
        nodes,
        central_capacity=central_capacity if central_capacity is not None else 4.0 * capacity,
    )


def make_heterogeneous_cluster(
    n_nodes: int,
    capacity_low: float,
    capacity_high: float,
    attrs_per_node: int = 10,
    attribute_pool: Optional[Sequence[AttributeId]] = None,
    central_capacity: Optional[float] = None,
    seed: Optional[int] = None,
) -> Cluster:
    """A cluster whose node capacities are uniform in ``[low, high]``.

    Used to exercise the planner's load-balancing behaviour when nodes
    are not interchangeable (e.g. co-located application load leaves
    different headroom on different hosts).
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be > 0, got {n_nodes}")
    if not 0 < capacity_low <= capacity_high:
        raise ValueError(
            f"need 0 < capacity_low <= capacity_high, got "
            f"[{capacity_low}, {capacity_high}]"
        )
    rng = random.Random(seed)
    pool = list(attribute_pool) if attribute_pool is not None else default_attribute_pool(
        2 * attrs_per_node
    )
    if attrs_per_node > len(pool):
        raise ValueError(
            f"attrs_per_node={attrs_per_node} exceeds pool size {len(pool)}"
        )
    nodes = [
        SimNode(
            node_id=i,
            capacity=rng.uniform(capacity_low, capacity_high),
            attributes=frozenset(rng.sample(pool, attrs_per_node)),
        )
        for i in range(n_nodes)
    ]
    if central_capacity is None:
        central_capacity = 4.0 * capacity_high
    return Cluster(nodes, central_capacity=central_capacity)
