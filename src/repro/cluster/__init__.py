"""Simulated cluster substrate.

REMO targets datacenter-like environments where any two nodes can
communicate at similar cost (the BlueGene/P torus of the paper's
deployment behaves as a fully connected network for all practical
purposes).  The cluster substrate therefore models nodes -- not links
-- as the constrained resource: every node carries a CPU capacity
budget for sending and receiving monitoring messages, plus the set of
attributes it can observe locally and generators producing those
attributes' time-varying values.
"""

from repro.cluster.node import Cluster, SimNode
from repro.cluster.topology import (
    make_heterogeneous_cluster,
    make_uniform_cluster,
)
from repro.cluster.metrics import (
    AR1Metric,
    BurstyMetric,
    ConstantNoiseMetric,
    MetricGenerator,
    MetricRegistry,
    RandomWalkMetric,
)

__all__ = [
    "AR1Metric",
    "BurstyMetric",
    "Cluster",
    "ConstantNoiseMetric",
    "MetricGenerator",
    "MetricRegistry",
    "RandomWalkMetric",
    "SimNode",
    "make_heterogeneous_cluster",
    "make_uniform_cluster",
]
