"""REMO: REsource-aware application state MOnitoring (reproduction).

This package reproduces the system described in "Resource-Aware
Application State Monitoring" (Meng, Kashyap, Venkatramani, Liu; ICDCS
2009 / IEEE TPDS 2012).  It plans monitoring overlays -- forests of
collection trees -- for large sets of application state monitoring
tasks, under per-node resource constraints and a message cost model
with explicit per-message overhead.

Public API overview
-------------------
- :mod:`repro.core` -- tasks, cost model, partitions, planners.
- :mod:`repro.trees` -- capacity-constrained collection tree builders.
- :mod:`repro.cluster` -- simulated cluster substrate.
- :mod:`repro.simulation` -- discrete-event monitoring simulator.
- :mod:`repro.streams` -- System S-like distributed stream substrate.
- :mod:`repro.ext` -- in-network aggregation, reliability, frequencies.
- :mod:`repro.workloads` -- synthetic task/update generators.
- :mod:`repro.checks` -- static plan-invariant verifier (REMOxxx codes).

Quickstart::

    from repro import CostModel, MonitoringTask, RemoPlanner, make_uniform_cluster

    cluster = make_uniform_cluster(n_nodes=64, capacity=200.0, seed=7)
    tasks = [MonitoringTask("t0", ("cpu", "mem"), tuple(range(32)))]
    planner = RemoPlanner(cost_model=CostModel(per_message=2.0, per_value=1.0))
    plan = planner.plan(tasks, cluster)
    print(plan.coverage())
"""

from repro.checks import (
    DiagnosticReport,
    PlanCheckError,
    assert_plan_valid,
    check_plan,
    check_plan_for_cluster,
)
from repro.core.attributes import NodeAttributePair
from repro.core.cost import AggregationKind, AggregationSpec, CostModel
from repro.core.tasks import MonitoringTask, TaskManager, TaskSetDelta
from repro.core.partition import Partition
from repro.core.plan import MonitoringPlan
from repro.core.allocation import AllocationPolicy
from repro.core.schemes import OneSetPlanner, SingletonSetPlanner
from repro.core.planner import RemoPlanner
from repro.core.adaptation import (
    AdaptationStrategy,
    AdaptiveMonitoringService,
)
from repro.cluster import Cluster, SimNode, make_uniform_cluster
from repro.cluster.topology import make_heterogeneous_cluster
from repro.trees import TreeBuilderKind

__all__ = [
    "AdaptationStrategy",
    "AdaptiveMonitoringService",
    "AggregationKind",
    "AggregationSpec",
    "AllocationPolicy",
    "Cluster",
    "CostModel",
    "DiagnosticReport",
    "MonitoringPlan",
    "MonitoringTask",
    "NodeAttributePair",
    "OneSetPlanner",
    "Partition",
    "PlanCheckError",
    "RemoPlanner",
    "SimNode",
    "SingletonSetPlanner",
    "TaskManager",
    "TaskSetDelta",
    "TreeBuilderKind",
    "assert_plan_valid",
    "check_plan",
    "check_plan_for_cluster",
    "make_heterogeneous_cluster",
    "make_uniform_cluster",
]

__version__ = "1.0.0"
