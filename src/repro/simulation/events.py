"""A minimal deterministic discrete-event queue.

Events are ordered by time, then by a monotone sequence number so
same-time events fire in scheduling order -- determinism matters more
here than raw speed, because every experiment must be reproducible
from its seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """One scheduled occurrence.

    ``action`` is called with the event's time when it fires.
    Cancelled events stay in the heap but are skipped on pop.
    """

    time: float
    seq: int
    action: Callable[[float], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap event queue."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently fired event."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, action: Callable[[float], None]) -> Event:
        """Schedule ``action`` at ``time`` (must not be in the past)."""
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def run_until(self, deadline: float) -> int:
        """Fire every event with ``time <= deadline``; return count fired."""
        fired = 0
        while self._heap and self._heap[0].time <= deadline + 1e-12:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.action(event.time)
            fired += 1
        self._now = max(self._now, deadline)
        return fired

    def run_all(self, max_events: Optional[int] = None) -> int:
        """Fire events until the queue drains (or ``max_events``)."""
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.action(event.time)
            fired += 1
        return fired
