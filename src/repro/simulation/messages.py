"""Monitoring update messages.

A message carries readings for a set of node-attribute pairs and is
charged ``C + a * len(payload)`` against both the sender's and the
receiver's per-period budget -- the same model the planner uses, so a
plan that respects capacities runs drop-free in the simulator (absent
failures), and an overloaded plan sheds exactly the traffic the model
predicts it cannot afford.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.attributes import NodeAttributePair, NodeId
from repro.core.cost import CostModel
from repro.core.partition import AttributeSet


@dataclass(frozen=True)
class Reading:
    """One attribute observation: the value and when it was sampled."""

    value: float
    sampled_at: float


@dataclass
class Message:
    """An update message travelling one hop up a monitoring tree.

    ``receiver`` is ``-1`` when the destination is the central
    collector.
    """

    sender: NodeId
    receiver: NodeId
    tree: AttributeSet
    period: int
    payload: Dict[NodeAttributePair, Reading] = field(default_factory=dict)

    def cost(self, model: CostModel) -> float:
        """Processing cost on each endpoint under ``model``."""
        return model.message_cost(len(self.payload))

    def merge_into(self, buffer: Dict[NodeAttributePair, Reading]) -> None:
        """Fold this message's readings into a relay buffer, keeping the
        freshest reading per pair."""
        for pair, reading in self.payload.items():
            existing = buffer.get(pair)
            if existing is None or reading.sampled_at >= existing.sampled_at:
                buffer[pair] = reading
