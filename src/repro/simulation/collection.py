"""Collector-side state and run statistics.

The central collector keeps the last reading it received for every
node-attribute pair.  At the end of each collection period the
simulation samples the paper's quality metrics:

- **percentage error** per requested pair: ``|truth - seen| /
  max(|truth|, floor)``, capped at 100% (a pair the collector has
  never seen counts as 100% error -- it is exactly as useless as an
  arbitrarily wrong value);
- **freshness coverage**: the fraction of requested pairs whose
  reading was sampled in the current period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.attributes import NodeAttributePair
from repro.simulation.messages import Reading

#: Denominator floor: avoids dividing by near-zero truths.
_ERROR_FLOOR = 1.0


class CollectorState:
    """Last-received reading per node-attribute pair."""

    def __init__(self) -> None:
        self._readings: Dict[NodeAttributePair, Reading] = {}

    def __len__(self) -> int:
        return len(self._readings)

    def __contains__(self, pair: NodeAttributePair) -> bool:
        return pair in self._readings

    def record(self, pair: NodeAttributePair, reading: Reading) -> None:
        existing = self._readings.get(pair)
        if existing is None or reading.sampled_at >= existing.sampled_at:
            self._readings[pair] = reading

    def reading(self, pair: NodeAttributePair) -> Optional[Reading]:
        return self._readings.get(pair)

    def percentage_error(self, pair: NodeAttributePair, truth: float) -> float:
        """Capped percentage error of the collector's view of ``pair``."""
        reading = self._readings.get(pair)
        if reading is None:
            return 1.0
        denom = max(abs(truth), _ERROR_FLOOR)
        return min(abs(truth - reading.value) / denom, 1.0)


@dataclass
class PeriodSample:
    """Quality metrics measured at the end of one period."""

    period: int
    mean_error: float
    fresh_fraction: float
    received_fraction: float


@dataclass
class CollectionStats:
    """Aggregated outcome of one simulation run."""

    requested_pairs: int = 0
    periods: List[PeriodSample] = field(default_factory=list)
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped_capacity: int = 0
    messages_dropped_failure: int = 0
    values_trimmed: int = 0
    cost_units_spent: float = 0.0

    def record_period(self, sample: PeriodSample) -> None:
        self.periods.append(sample)

    @property
    def mean_percentage_error(self) -> float:
        """Run-wide average percentage error (the Fig. 8 metric)."""
        if not self.periods:
            return 0.0
        return sum(p.mean_error for p in self.periods) / len(self.periods)

    @property
    def mean_fresh_coverage(self) -> float:
        """Average fraction of pairs fresh at each period's deadline."""
        if not self.periods:
            return 0.0
        return sum(p.fresh_fraction for p in self.periods) / len(self.periods)

    @property
    def delivery_ratio(self) -> float:
        if self.messages_sent == 0:
            return 1.0
        return self.messages_delivered / self.messages_sent

    def summary(self) -> str:
        return (
            f"pairs={self.requested_pairs} periods={len(self.periods)} "
            f"error={self.mean_percentage_error:.4f} "
            f"fresh={self.mean_fresh_coverage:.4f} "
            f"sent={self.messages_sent} delivered={self.messages_delivered} "
            f"dropped(cap)={self.messages_dropped_capacity} "
            f"dropped(fail)={self.messages_dropped_failure}"
        )
