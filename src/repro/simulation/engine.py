"""The monitoring simulation engine.

Runs a :class:`~repro.core.plan.MonitoringPlan` over discrete
collection periods.  Within each period:

1. ground-truth metric values advance (one unit of time);
2. every member node of every tree sends one update message, phased
   bottom-up: a node at depth ``d`` of a height-``H`` tree sends at
   ``(H - d) * hop_latency`` after the period start, so children's
   messages arrive (half a hop later) before the parent merges and
   forwards;
3. each message costs ``C + a*x`` against the sender's and receiver's
   per-period budget; with capacity enforcement on, unaffordable
   messages are dropped whole (this is the overload behaviour the
   paper's resource-awareness exists to avoid);
4. at the period deadline the collector's view is scored against the
   ground truth (percentage error, freshness).

Deep trees whose bottom-up wave ``(H+1) * hop_latency`` spills past
the period deadline deliver one period late -- the latency-induced
staleness that makes bushier trees more accurate in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.metrics import MetricRegistry
from repro.cluster.node import Cluster
from repro.core.attributes import NodeAttributePair, NodeId
from repro.core.partition import AttributeSet
from repro.core.plan import MonitoringPlan
from repro.obs import names, trace
from repro.obs.metrics import default_registry
from repro.simulation.collection import CollectionStats, CollectorState, PeriodSample
from repro.simulation.events import EventQueue
from repro.simulation.failures import FailureInjector
from repro.simulation.messages import Message, Reading


@dataclass
class SimulationConfig:
    """Tunable knobs of one simulation run."""

    period: float = 1.0
    hop_latency: float = 0.02
    enforce_capacity: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.hop_latency <= 0:
            raise ValueError(f"hop_latency must be > 0, got {self.hop_latency}")


class MonitoringSimulation:
    """Discrete-event execution of one monitoring plan."""

    def __init__(
        self,
        plan: MonitoringPlan,
        cluster: Cluster,
        registry: Optional[MetricRegistry] = None,
        config: Optional[SimulationConfig] = None,
        failures: Optional[FailureInjector] = None,
    ) -> None:
        self.plan = plan
        self.cluster = cluster
        self.config = config if config is not None else SimulationConfig()
        self.failures = failures if failures is not None else FailureInjector()
        self.registry = (
            registry
            if registry is not None
            else MetricRegistry(plan.pairs, seed=self.config.seed)
        )
        for pair in plan.pairs:
            self.registry.ensure(pair)

        self.queue = EventQueue()
        self.collector = CollectorState()
        self.stats = CollectionStats(requested_pairs=len(plan.pairs))
        #: Registry-mirrored counter values as of the last ``run`` end.
        self._mirrored: Dict[str, float] = {}
        self._budget: Dict[NodeId, float] = {}
        self._central_budget = 0.0
        # Relay buffers: readings received by (node, tree), pending merge.
        self._buffers: Dict[Tuple[NodeId, AttributeSet], Dict[NodeAttributePair, Reading]] = {}
        # Per-tree static structure snapshots.
        self._tree_info: List[Tuple[AttributeSet, Dict[NodeId, Optional[NodeId]], Dict[NodeId, int], int, Dict[NodeId, List[NodeAttributePair]]]] = []
        for attr_set, result in plan.trees.items():
            tree = result.tree
            parents: Dict[NodeId, Optional[NodeId]] = {}
            depths: Dict[NodeId, int] = {}
            locals_: Dict[NodeId, List[NodeAttributePair]] = {}
            for node in tree.nodes:
                parents[node] = tree.parent(node)
                depths[node] = tree.depth(node)
                locals_[node] = [
                    NodeAttributePair(node, attr) for attr in tree.local_demand(node)
                ]
            self._tree_info.append((attr_set, parents, depths, tree.height(), locals_))

    # ------------------------------------------------------------------
    def run(self, n_periods: int) -> CollectionStats:
        """Run ``n_periods`` collection periods and return the stats."""
        if n_periods <= 0:
            raise ValueError(f"n_periods must be > 0, got {n_periods}")
        for k in range(n_periods):
            with trace.span(names.SPAN_SIMULATION_PERIOD, lane=names.LANE_SIMULATOR, period=k):
                t0 = k * self.config.period
                self.queue.schedule(t0, self._begin_period)
                for attr_set, parents, depths, height, locals_ in self._tree_info:
                    for node, depth in depths.items():
                        phase = (height - depth) * self.config.hop_latency
                        self.queue.schedule(
                            t0 + phase,
                            self._make_send(
                                node, attr_set, parents[node], locals_[node], k
                            ),
                        )
                deadline = t0 + self.config.period - 1e-9
                self.queue.schedule(deadline, self._make_measure(k))
                self.queue.run_until(deadline)
        # Drain any stragglers scheduled past the last deadline so late
        # arrivals are at least accounted in message statistics.
        self.queue.run_all()
        self._mirror_stats()
        return self.stats

    def _mirror_stats(self) -> None:
        """Mirror :class:`CollectionStats` tallies into the ambient
        metrics registry so ``--metrics`` snapshots cover simulation
        runs too.  Deltas since the last mirror, so repeated ``run``
        calls on one simulation do not double-count."""
        registry = default_registry()
        tallies = {
            names.SIM_MESSAGES_SENT: float(self.stats.messages_sent),
            names.SIM_MESSAGES_DELIVERED: float(self.stats.messages_delivered),
            names.SIM_MESSAGES_DROPPED_CAPACITY: float(
                self.stats.messages_dropped_capacity
            ),
            names.SIM_MESSAGES_DROPPED_FAILURE: float(self.stats.messages_dropped_failure),
            names.SIM_VALUES_TRIMMED: float(self.stats.values_trimmed),
            names.SIM_COST_UNITS_SPENT: float(self.stats.cost_units_spent),
            names.SIM_PERIODS: float(len(self.stats.periods)),
        }
        for name, total in tallies.items():
            delta = total - self._mirrored.get(name, 0.0)
            if delta:
                registry.incr(name, delta)
            self._mirrored[name] = total

    # ------------------------------------------------------------------
    # Event actions
    # ------------------------------------------------------------------
    def _begin_period(self, _time: float) -> None:
        self.registry.advance_all()
        self._budget = {node.node_id: node.capacity for node in self.cluster}
        self._central_budget = self.cluster.central_capacity

    def _make_send(self, node, attr_set, parent, local_pairs, period):
        def action(now: float) -> None:
            payload: Dict[NodeAttributePair, Reading] = {}
            buffered = self._buffers.pop((node, attr_set), None)
            if buffered:
                payload.update(buffered)
            for pair in local_pairs:
                payload[pair] = Reading(self.registry.value(pair), sampled_at=now)
            if not payload:
                return
            receiver = parent if parent is not None else -1
            if self.config.enforce_capacity:
                # Graceful degradation: a node short on budget sheds
                # *values* (keeping as many as it can afford) before it
                # sheds the whole message -- monitoring agents trim
                # payload rather than go silent.
                budget = self._budget.get(node, 0.0)
                if budget < self.plan.cost.overhead_cost() - 1e-9:
                    self.stats.messages_dropped_capacity += 1
                    return
                affordable = int(self.plan.cost.values_within_budget(budget) + 1e-9)
                if affordable <= 0:
                    self.stats.messages_dropped_capacity += 1
                    return
                if affordable < len(payload):
                    keep = sorted(payload)[:affordable]
                    self.stats.values_trimmed += len(payload) - len(keep)
                    payload = {pair: payload[pair] for pair in keep}
            message = Message(
                sender=node,
                receiver=receiver,
                tree=attr_set,
                period=period,
                payload=payload,
            )
            cost = message.cost(self.plan.cost)
            if self.config.enforce_capacity:
                self._budget[node] = self._budget.get(node, 0.0) - cost
            self.stats.messages_sent += 1
            self.stats.cost_units_spent += cost
            if self.failures.blocks(node, receiver, attr_set, now):
                self.stats.messages_dropped_failure += 1
                return
            arrival = now + 0.5 * self.config.hop_latency
            self.queue.schedule(arrival, self._make_arrive(message))

        return action

    def _make_arrive(self, message: Message):
        def action(_now: float) -> None:
            cost = message.cost(self.plan.cost)
            if message.receiver == -1:
                if self.config.enforce_capacity:
                    if self._central_budget < cost - 1e-9:
                        self.stats.messages_dropped_capacity += 1
                        return
                    self._central_budget -= cost
                for pair, reading in message.payload.items():
                    self.collector.record(pair, reading)
                self.stats.messages_delivered += 1
                self.stats.cost_units_spent += cost
                return
            if self.config.enforce_capacity:
                if self._budget.get(message.receiver, 0.0) < cost - 1e-9:
                    self.stats.messages_dropped_capacity += 1
                    return
                self._budget[message.receiver] = (
                    self._budget.get(message.receiver, 0.0) - cost
                )
            buffer = self._buffers.setdefault((message.receiver, message.tree), {})
            message.merge_into(buffer)
            self.stats.messages_delivered += 1
            self.stats.cost_units_spent += cost

        return action

    def _make_measure(self, period: int):
        def action(now: float) -> None:
            pairs = self.plan.pairs
            if not pairs:
                self.stats.record_period(PeriodSample(period, 0.0, 1.0, 1.0))
                return
            period_start = period * self.config.period
            total_error = 0.0
            fresh = 0
            received = 0
            for pair in pairs:
                truth = self.registry.value(pair)
                total_error += self.collector.percentage_error(pair, truth)
                reading = self.collector.reading(pair)
                if reading is not None:
                    received += 1
                    if reading.sampled_at >= period_start - 1e-9:
                        fresh += 1
            n = len(pairs)
            self.stats.record_period(
                PeriodSample(
                    period=period,
                    mean_error=total_error / n,
                    fresh_fraction=fresh / n,
                    received_fraction=received / n,
                )
            )

        return action
