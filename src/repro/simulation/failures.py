"""Failure injection for reliability experiments (Section 6.2).

Outages are declared as time windows: a link outage silences one
child->parent edge of one tree (messages in flight during the window
are lost); a node outage silences every message the node would send or
receive.  The reliability extension's SSDP/DSDP replication is
validated against these: values duplicated onto disjoint trees survive
outages that sever a single path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.attributes import NodeId
from repro.core.partition import AttributeSet


@dataclass(frozen=True)
class LinkOutage:
    """The ``child -> parent`` edge of ``tree`` is down in [start, end)."""

    child: NodeId
    tree: AttributeSet
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"outage window must have end > start, got [{self.start}, {self.end})")


@dataclass(frozen=True)
class NodeOutage:
    """Node ``node`` neither sends nor receives in [start, end)."""

    node: NodeId
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"outage window must have end > start, got [{self.start}, {self.end})")


class FailureInjector:
    """Queryable outage schedule."""

    def __init__(
        self,
        link_outages: Iterable[LinkOutage] = (),
        node_outages: Iterable[NodeOutage] = (),
    ) -> None:
        self.link_outages: List[LinkOutage] = list(link_outages)
        self.node_outages: List[NodeOutage] = list(node_outages)

    def link_down(self, child: NodeId, tree: AttributeSet, time: float) -> bool:
        return any(
            o.child == child and o.tree == tree and o.start <= time < o.end
            for o in self.link_outages
        )

    def node_down(self, node: NodeId, time: float) -> bool:
        return any(o.node == node and o.start <= time < o.end for o in self.node_outages)

    def blocks(self, sender: NodeId, receiver: NodeId, tree: AttributeSet, time: float) -> bool:
        """Whether a message on this edge at ``time`` is lost."""
        if self.link_down(sender, tree, time):
            return True
        if self.node_down(sender, time):
            return True
        if receiver >= 0 and self.node_down(receiver, time):
            return True
        return False

    @classmethod
    def random_link_outages(
        cls,
        edges: Iterable[Tuple[NodeId, AttributeSet]],
        outage_probability: float,
        duration: float,
        horizon: float,
        seed: Optional[int] = None,
    ) -> "FailureInjector":
        """Each edge independently suffers one outage of ``duration`` at a
        uniform start time with probability ``outage_probability``."""
        if not 0.0 <= outage_probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {outage_probability}")
        rng = random.Random(seed)
        outages = []
        for child, tree in edges:
            if rng.random() < outage_probability:
                start = rng.uniform(0.0, max(horizon - duration, 0.0))
                outages.append(LinkOutage(child, tree, start, start + duration))
        return cls(link_outages=outages)
