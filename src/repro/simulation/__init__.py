"""Discrete-event simulation of a deployed monitoring forest.

The planner reasons about capacity analytically; this package runs a
plan, delivering periodic update messages hop by hop, enforcing
per-period node budgets, injecting link/node failures, and measuring
what the paper's real-system experiments measure (Fig. 8): the
*average percentage error* between the collector's view of every
requested node-attribute pair and the ground-truth value at the same
instant, along with coverage and traffic statistics.
"""

from repro.simulation.events import Event, EventQueue
from repro.simulation.messages import Message, Reading
from repro.simulation.collection import CollectionStats, CollectorState
from repro.simulation.failures import FailureInjector, LinkOutage, NodeOutage
from repro.simulation.engine import MonitoringSimulation, SimulationConfig

__all__ = [
    "CollectionStats",
    "CollectorState",
    "Event",
    "EventQueue",
    "FailureInjector",
    "LinkOutage",
    "Message",
    "MonitoringSimulation",
    "NodeOutage",
    "Reading",
    "SimulationConfig",
]
