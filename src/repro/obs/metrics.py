"""The process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` is the single bookkeeping surface shared
by the planner, the adaptive service, the simulator, and the live
runtime.  Instruments are created on first touch and identified by a
name plus an optional label set (``node``, ``tree``, ``phase``, ...),
exactly like Prometheus series -- ``messages_sent{node="3"}`` and
``messages_sent{node="7"}`` are distinct series that aggregate to one
``messages_sent`` total.

Higher layers read the registry two ways:

- *totals* (:meth:`MetricsRegistry.counter_totals`): label sets summed
  per base name -- the stable, small view behind
  :class:`~repro.runtime.report.RuntimeReport` and ``--json`` output;
- *series* (:meth:`MetricsRegistry.counters`): every labeled series,
  the full-resolution view behind the Prometheus exporter
  (:func:`repro.obs.export.prometheus_text`).

A module-level *default registry* carries recordings from code that is
not handed an explicit registry (the planner's search counters, the
simulator's tallies).  The CLI swaps in a fresh one per invocation via
:func:`use_registry` so ``--metrics`` snapshots exactly one command.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]

#: Canonical label encoding: sorted ``(key, value)`` pairs, values
#: stringified so label identity never depends on value types.
LabelItems = Tuple[Tuple[str, str], ...]

#: One series: base name plus its canonical labels.
MetricKey = Tuple[str, LabelItems]


def labels_key(labels: Mapping[str, object]) -> LabelItems:
    """Canonicalize a label mapping into a hashable series key."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: LabelItems) -> str:
    """Prometheus-style series name: ``name{k="v",...}`` (or bare name)."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


class Histogram:
    """A histogram that is exact while small and a sketch once large.

    Below ``sketch_threshold`` observations every value is retained and
    quantiles are exact (linear interpolation over the sorted values).
    Past the threshold the histogram switches to a bounded-memory
    reservoir sketch (Vitter's algorithm R over ``reservoir_size``
    slots, seeded so runs are reproducible): count, sum, mean, min and
    max stay exact via running accumulators, while quantiles become
    estimates read from the uniform sample.  The switch is one-way and
    automatic, so runs with millions of observations cannot grow
    memory without bound.
    """

    def __init__(
        self,
        sketch_threshold: int = 4096,
        reservoir_size: int = 1024,
        seed: int = 0x5EED,
    ) -> None:
        if reservoir_size <= 0:
            raise ValueError(f"reservoir_size must be > 0, got {reservoir_size}")
        if sketch_threshold < reservoir_size:
            raise ValueError(
                "sketch_threshold must be >= reservoir_size "
                f"({sketch_threshold} < {reservoir_size})"
            )
        self.sketch_threshold = sketch_threshold
        self.reservoir_size = reservoir_size
        self._values: List[float] = []
        self._sketching = False
        self._rng = random.Random(seed)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording -----------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if not self._sketching:
            self._values.append(value)
            if len(self._values) > self.sketch_threshold:
                # One-way switch: downsample the exact values into the
                # reservoir, then keep a uniform sample from here on.
                self._values = self._rng.sample(self._values, self.reservoir_size)
                self._sketching = True
            return
        # Algorithm R: the n-th observation replaces a random slot with
        # probability reservoir_size / n, keeping the sample uniform.
        slot = self._rng.randrange(self._count)
        if slot < self.reservoir_size:
            self._values[slot] = value

    # -- reading -------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def is_exact(self) -> bool:
        """Whether quantiles are still computed from every observation."""
        return not self._sketching

    def quantile(self, q: float) -> float:
        """q-quantile (exact, or estimated from the reservoir); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        position = q * (len(ordered) - 1)
        lower = math.floor(position)
        upper = math.ceil(position)
        if lower == upper:
            return ordered[lower]
        weight = position - lower
        return ordered[lower] * (1.0 - weight) + ordered[upper] * weight

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "max": self.max,
        }

    # -- cross-process merge (``repro deploy`` report aggregation) -----
    def dump(self) -> Dict[str, object]:
        """JSON-safe full state, for merging in another process."""
        if self._count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "values": [], "exact": True}
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "values": list(self._values),
            "exact": not self._sketching,
        }

    def absorb(self, data: Mapping[str, object]) -> None:
        """Fold a :meth:`dump` from another histogram into this one.

        Count, sum, min and max merge exactly.  Quantiles stay exact
        while the combined retained values fit under the sketch
        threshold; beyond that the merge downsamples into the
        reservoir, so quantiles degrade to estimates exactly as they
        would have had every observation arrived here directly.
        """
        count = int(data["count"])  # type: ignore[arg-type]
        if count == 0:
            return
        self._count += count
        self._sum += float(data["sum"])  # type: ignore[arg-type]
        self._min = min(self._min, float(data["min"]))  # type: ignore[arg-type]
        self._max = max(self._max, float(data["max"]))  # type: ignore[arg-type]
        incoming = [float(v) for v in data["values"]]  # type: ignore[union-attr]
        both_exact = not self._sketching and bool(data.get("exact", True))
        if both_exact and len(self._values) + len(incoming) <= self.sketch_threshold:
            self._values.extend(incoming)
            return
        merged = self._values + incoming
        if len(merged) > self.reservoir_size:
            merged = self._rng.sample(merged, self.reservoir_size)
        self._values = merged
        self._sketching = True


class MetricsRegistry:
    """Named counters, gauges, and histograms with label support."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # -- recording -----------------------------------------------------
    def incr(self, name: str, amount: Number = 1, **labels: object) -> None:
        key = (name, labels_key(labels))
        self._counters[key] = self._counters.get(key, 0.0) + float(amount)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        self._gauges[(name, labels_key(labels))] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.histogram(name, **labels).observe(value)

    # -- reading -------------------------------------------------------
    def counter(self, name: str, **labels: object) -> float:
        """The value of one exact series (0.0 when never touched)."""
        return self._counters.get((name, labels_key(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        """The sum of every series sharing ``name``, labels collapsed."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge(self, name: str, **labels: object) -> float:
        return self._gauges.get((name, labels_key(labels)), 0.0)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """Get-or-create the histogram for one series."""
        key = (name, labels_key(labels))
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram()
        return found

    def counters(self) -> Dict[str, float]:
        """Every counter series, keyed by formatted series name."""
        return {
            format_series(name, labels): value
            for (name, labels), value in sorted(self._counters.items())
        }

    def gauges(self) -> Dict[str, float]:
        return {
            format_series(name, labels): value
            for (name, labels), value in sorted(self._gauges.items())
        }

    def histograms(self) -> Dict[str, Histogram]:
        return {
            format_series(name, labels): hist
            for (name, labels), hist in sorted(self._histograms.items())
        }

    def counter_totals(self) -> Dict[str, float]:
        """Counters aggregated to base names (the compact report view)."""
        totals: Dict[str, float] = {}
        for (name, _labels), value in self._counters.items():
            totals[name] = totals.get(name, 0.0) + value
        return dict(sorted(totals.items()))

    def counter_value(self, key: MetricKey) -> float:
        """Series value by canonical key (exporter access path)."""
        return self._counters.get(key, 0.0)

    def gauge_value(self, key: MetricKey) -> float:
        return self._gauges.get(key, 0.0)

    def histogram_value(self, key: MetricKey) -> Histogram:
        return self._histograms[key]

    def series(self) -> Iterator[Tuple[str, MetricKey]]:
        """(kind, key) for every live series, in stable order."""
        for key in sorted(self._counters):
            yield "counter", key
        for key in sorted(self._gauges):
            yield "gauge", key
        for key in sorted(self._histograms):
            yield "histogram", key

    def as_dict(self) -> Dict[str, object]:
        """Full-resolution machine-readable snapshot."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: hist.summary() for name, hist in self.histograms().items()
            },
        }

    # -- cross-process merge (``repro deploy`` report aggregation) -----
    def dump(self) -> Dict[str, object]:
        """JSON-safe full-resolution state, labels preserved.

        Unlike :meth:`as_dict` (a human/CI summary), this is lossless
        enough to reconstruct totals and histogram quantile state in a
        different process -- workers dump, the supervisor absorbs.
        """
        return {
            "counters": [
                [name, [list(item) for item in labels], value]
                for (name, labels), value in sorted(self._counters.items())
            ],
            "gauges": [
                [name, [list(item) for item in labels], value]
                for (name, labels), value in sorted(self._gauges.items())
            ],
            "histograms": [
                [name, [list(item) for item in labels], hist.dump()]
                for (name, labels), hist in sorted(self._histograms.items())
            ],
        }

    def absorb(self, data: Mapping[str, object]) -> None:
        """Merge a :meth:`dump` into this registry.

        Counters add, gauges take the incoming value (last write wins),
        histograms merge via :meth:`Histogram.absorb`.  Label sets are
        preserved, so per-worker series stay distinguishable when they
        carry distinguishing labels and aggregate when they do not.
        """

        def _key(name: object, labels: object) -> MetricKey:
            return (
                str(name),
                tuple((str(k), str(v)) for k, v in labels),  # type: ignore[union-attr]
            )

        for name, labels, value in data.get("counters", []):  # type: ignore[union-attr]
            key = _key(name, labels)
            self._counters[key] = self._counters.get(key, 0.0) + float(value)
        for name, labels, value in data.get("gauges", []):  # type: ignore[union-attr]
            self._gauges[_key(name, labels)] = float(value)
        for name, labels, hist_dump in data.get("histograms", []):  # type: ignore[union-attr]
            key = _key(name, labels)
            found = self._histograms.get(key)
            if found is None:
                found = self._histograms[key] = Histogram()
            found.absorb(hist_dump)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The ambient registry used by code not handed an explicit one.
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The current ambient registry (swap with :func:`use_registry`)."""
    return _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the ambient one; returns the previous."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the ambient default (the CLI's per-command
    isolation: two ``repro run`` invocations in one process must not
    bleed counters into each other's ``--metrics`` snapshot)."""
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
