"""Unified telemetry for the REMO reproduction.

One cross-cutting layer shared by planning, simulation, and the live
runtime (see DESIGN.md, "Telemetry architecture"):

- :mod:`repro.obs.metrics` -- the process-wide
  :class:`MetricsRegistry` of labeled counters, gauges, and
  histograms; :class:`~repro.runtime.metrics.RuntimeMetrics` and
  :class:`~repro.core.planner.PlanningStats` are snapshots of it;
- :mod:`repro.obs.trace` -- lightweight span tracing
  (``with trace.span("partition.merge_iteration", candidates=k):``)
  with asyncio-task and forked-worker context propagation;
- :mod:`repro.obs.export` -- pluggable exporters: JSONL event log,
  Prometheus text-format snapshot, and Chrome trace-event JSON for
  ``about:tracing`` / Perfetto.

Wired through the CLI as ``--trace PATH`` / ``--metrics PATH`` on
``plan``/``simulate``/``adapt``/``run`` plus the ``repro metrics``
render subcommand.
"""

from repro.obs import trace
from repro.obs.export import (
    check_prometheus_text,
    parse_prometheus_text,
    prometheus_text,
    read_jsonl_spans,
    write_chrome_trace,
    write_jsonl_spans,
    write_prometheus,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "check_prometheus_text",
    "default_registry",
    "parse_prometheus_text",
    "prometheus_text",
    "read_jsonl_spans",
    "set_default_registry",
    "trace",
    "use_registry",
    "write_chrome_trace",
    "write_jsonl_spans",
    "write_prometheus",
]
