"""Unified telemetry for the REMO reproduction.

One cross-cutting layer shared by planning, simulation, and the live
runtime (see DESIGN.md, "Telemetry architecture"):

- :mod:`repro.obs.metrics` -- the process-wide
  :class:`MetricsRegistry` of labeled counters, gauges, and
  histograms; :class:`~repro.runtime.metrics.RuntimeMetrics` and
  :class:`~repro.core.planner.PlanningStats` are snapshots of it;
- :mod:`repro.obs.trace` -- lightweight span tracing
  (``with trace.span("partition.merge_iteration", candidates=k):``)
  with asyncio-task and forked-worker context propagation, plus
  :class:`~repro.obs.trace.TraceContext` for cross-process trace
  identity (runtime envelopes, ``traceparent`` HTTP headers);
- :mod:`repro.obs.log` -- structured JSONL events with lane/severity/
  trace correlation and the bounded flight-recorder ring dumped on
  crashes;
- :mod:`repro.obs.export` -- pluggable exporters: JSONL event log,
  Prometheus text-format snapshot, and Chrome trace-event JSON for
  ``about:tracing`` / Perfetto.

Wired through the CLI as ``--trace PATH`` / ``--metrics PATH`` on
``plan``/``simulate``/``adapt``/``run``/``deploy``/``serve`` plus the
``repro metrics`` and ``repro trace`` render subcommands.
"""

from repro.obs import log, trace
from repro.obs.export import (
    check_prometheus_text,
    parse_prometheus_text,
    prometheus_text,
    read_jsonl_spans,
    write_chrome_trace,
    write_jsonl_spans,
    write_prometheus,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.trace import Span, TraceContext, Tracer

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "check_prometheus_text",
    "default_registry",
    "log",
    "parse_prometheus_text",
    "prometheus_text",
    "read_jsonl_spans",
    "set_default_registry",
    "trace",
    "use_registry",
    "write_chrome_trace",
    "write_jsonl_spans",
    "write_prometheus",
]
