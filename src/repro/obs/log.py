"""Structured logging with trace correlation, plus a flight recorder.

Ad-hoc ``print`` diagnostics do not survive multi-process deploys: a
worker's stdout is interleaved with its siblings', carries no trace
identity, and vanishes when the process is SIGKILLed.  This module
replaces them with structured events:

- :func:`emit` records one event -- a manifest-declared name
  (``obs/names.py`` ``LOG_*`` constants, enforced by ``repro lint``
  REMO435), a lane, a severity, free-form fields, and the ambient
  :class:`~repro.obs.trace.TraceContext` so log lines correlate with
  spans in the merged trace;
- every event always lands in a bounded in-process ring buffer (the
  **flight recorder**), so the last moments before a crash are
  recoverable even when no sink was configured;
- optionally, :func:`install_sink` tees events to a JSONL file
  (one object per line) for post-run analysis, and :func:`console`
  echoes human-readable lines to a stream for interactive use.

:func:`dump_flight` snapshots the ring plus the tail of the installed
tracer's spans to a JSON artifact.  ``repro deploy`` triggers it on
worker crash, on chaos-kill restart (from the supervisor -- a
SIGKILLed child cannot dump its own), and on REMO check failure; the
artifact path is referenced from the merged deploy report.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, IO, Iterator, List, Optional

from . import names
from .trace import active_tracer, current_context

#: Events retained in the per-process flight-recorder ring.
DEFAULT_RING_EVENTS = 256

#: Spans captured from the installed tracer's tail on a flight dump.
DEFAULT_FLIGHT_SPANS = 128

SEVERITIES = ("debug", "info", "warning", "error")

_RING: Deque[Dict[str, object]] = deque(maxlen=DEFAULT_RING_EVENTS)
_SINK: Optional[IO[str]] = None
_CONSOLE: Optional[IO[str]] = None


def emit(
    name: str,
    lane: Optional[str] = None,
    severity: str = "info",
    **fields: object,
) -> Dict[str, object]:
    """Record one structured event; returns the event dict.

    Always lands in the flight-recorder ring; additionally written as
    one JSONL line when a sink is installed, and echoed human-readably
    when a console stream is set.
    """
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}, expected {SEVERITIES}")
    event: Dict[str, object] = {
        "event": name,
        "wall": time.time(),
        "monotonic": time.perf_counter(),
        "pid": os.getpid(),
        "severity": severity,
    }
    if lane is not None:
        event["lane"] = lane
    ctx = current_context()
    if ctx is not None:
        event["trace_id"] = ctx.trace_id
        event["span_id"] = ctx.span_id
    if fields:
        event["fields"] = fields
    _RING.append(event)
    if _SINK is not None:
        _SINK.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        _SINK.flush()
    if _CONSOLE is not None:
        detail = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
        _CONSOLE.write(f"[{severity}] {name}{' ' + detail if detail else ''}\n")
        _CONSOLE.flush()
    return event


def recent() -> List[Dict[str, object]]:
    """The flight-recorder ring, oldest first (copies, safe to mutate)."""
    return [dict(event) for event in _RING]


def clear() -> None:
    """Empty the ring (test isolation)."""
    _RING.clear()


def install_sink(path: str) -> None:
    """Tee subsequent events to ``path`` as JSONL (append mode)."""
    global _SINK
    uninstall_sink()
    _SINK = open(path, "a", encoding="utf-8")


def uninstall_sink() -> None:
    global _SINK
    if _SINK is not None:
        _SINK.close()
        _SINK = None


@contextmanager
def sink(path: str) -> Iterator[None]:
    """Scope a JSONL sink: install on entry, close on exit."""
    install_sink(path)
    try:
        yield
    finally:
        uninstall_sink()


def set_console(stream: Optional[IO[str]]) -> None:
    """Echo events human-readably to ``stream`` (``None`` disables)."""
    global _CONSOLE
    _CONSOLE = stream


def flight_record(
    reason: str, max_spans: int = DEFAULT_FLIGHT_SPANS
) -> Dict[str, object]:
    """Snapshot the ring plus the tracer's span tail for a crash dump."""
    from .export import span_to_dict  # local: export imports nothing back

    tracer = active_tracer()
    spans: List[Dict[str, object]] = []
    if tracer is not None:
        spans = [span_to_dict(s) for s in tracer.spans()[-max_spans:]]
    return {
        "flight_record": 1,
        "reason": reason,
        "pid": os.getpid(),
        "wall": time.time(),
        "events": recent(),
        "spans": spans,
    }


def dump_flight(
    path: str, reason: str, max_spans: int = DEFAULT_FLIGHT_SPANS
) -> str:
    """Write a flight record to ``path`` (atomic rename); returns path."""
    record = flight_record(reason, max_spans=max_spans)
    emit(names.LOG_FLIGHT_DUMP, severity="warning", reason=reason, path=path)
    record["events"] = recent()  # include the dump event itself
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    os.replace(tmp, path)
    return path
