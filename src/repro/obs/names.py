"""The one manifest of metric, span, and lane names.

Every counter, gauge, histogram, span, and trace lane the planner,
adaptive service, simulator, and live runtime emit is declared here --
instrumentation sites import these constants instead of repeating
string literals.  The point is that a typo'd series name becomes an
import error (or a ``repro lint`` REMO431/432/433 finding) instead of
a silent dead series that dashboards quietly stop seeing.

The static analyzer (:mod:`repro.staticcheck`) parses this module
*without importing it*: declarations must stay simple enough for that
-- module-level ``UPPER_CASE = "literal"`` assignments, the
``METRICS`` / ``SPANS`` / ``LOG_EVENTS`` / ``LANES`` /
``LANE_PREFIXES`` collections of those constants, and the two lane
helper functions.  Keep it that way; anything dynamic belongs
elsewhere.

Naming conventions:

- counters owned by the runtime are bare nouns (``messages_sent``);
  the simulator mirrors them under a ``sim_`` prefix so one registry
  can hold both engines' tallies without collision;
- planner/adaptation counters end in ``_total`` (Prometheus idiom for
  monotonic series shared across components);
- span names are ``actor.action`` (``agent.wave``,
  ``collector.close_period``);
- lanes name the logical actor row trace viewers draw; per-instance
  lanes (one per node agent, one per planner worker) are derived from
  a declared prefix via :func:`node_lane` / :func:`worker_lane`.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Metric names -- runtime agents and collector
# ---------------------------------------------------------------------------
MESSAGES_SENT = "messages_sent"
MESSAGES_DELIVERED = "messages_delivered"
MESSAGES_DROPPED_CAPACITY = "messages_dropped_capacity"
MESSAGES_DROPPED_FAILURE = "messages_dropped_failure"
COST_UNITS_SPENT = "cost_units_spent"
HEARTBEATS_SENT = "heartbeats_sent"
CHILD_WAIT_TIMEOUTS = "child_wait_timeouts"
VALUES_TRIMMED = "values_trimmed"
VALUES_DEFERRED = "values_deferred"
AGENT_DOWN_PERIODS = "agent_down_periods"
FAILURE_DETECTIONS = "failure_detections"
FAILURE_RECOVERIES = "failure_recoveries"

# Transport-layer counters (every Transport implementation reports
# through these, so in-process and TCP runs share one health row).
TRANSPORT_ENVELOPES_SENT = "transport_envelopes_sent"
TRANSPORT_ENVELOPES_DELIVERED = "transport_envelopes_delivered"

# Deployment supervisor counters (``repro deploy``).
DEPLOY_WORKER_RESTARTS = "deploy_worker_restarts"

# Observability self-accounting: spans discarded once a bounded
# Tracer hits its cap (soak runs must not OOM the tracer).
TRACE_SPANS_DROPPED = "trace_spans_dropped"

# Wire-level counters (repro.net only; zero on the in-process path).
NET_FRAMES_SENT = "net_frames_sent"
NET_FRAMES_RECEIVED = "net_frames_received"
NET_FRAMES_DROPPED = "net_frames_dropped"
NET_BYTES_SENT = "net_bytes_sent"
NET_BYTES_RECEIVED = "net_bytes_received"
NET_RECONNECTS = "net_reconnects"

# Runtime histograms.
COLLECTION_LATENCY_S = "collection_latency_s"
STALENESS_PERIODS = "staleness_periods"
PERIOD_COVERAGE = "period_coverage"
PAYLOAD_VALUES = "payload_values"
NET_DIAL_LATENCY_S = "net_dial_latency_s"

# Planner search counters (PlanningStats reads the same names back).
PLANNER_ITERATIONS_TOTAL = "planner_iterations_total"
PLANNER_CANDIDATES_RANKED_TOTAL = "planner_candidates_ranked_total"
PLANNER_CANDIDATES_EVALUATED_TOTAL = "planner_candidates_evaluated_total"
PLANNER_MEMO_HITS_TOTAL = "planner_memo_hits_total"
PLANNER_MEMO_MISSES_TOTAL = "planner_memo_misses_total"

# Planner phase histogram: wall seconds per phase (labels:
# phase=partition|tree_construction|adjustment).  The adjustment phase
# runs inside tree construction, so its time is a subset, not additive.
PLANNER_PHASE_SECONDS = "planner_phase_seconds"

# Adaptive-service counters.
ADAPTATION_OPS_APPLIED_TOTAL = "adaptation_ops_applied_total"
ADAPTATION_OPS_THROTTLED_TOTAL = "adaptation_ops_throttled_total"
ADAPTATION_MESSAGES_TOTAL = "adaptation_messages_total"

# Control-plane service counters/histograms (``repro serve``).
SERVE_REQUESTS_TOTAL = "serve_requests_total"
SERVE_ERRORS_TOTAL = "serve_errors_total"
SERVE_CONNECTIONS_TOTAL = "serve_connections_total"
SERVE_REQUEST_SECONDS = "serve_request_seconds"
CONTROLPLANE_TASK_OPS_TOTAL = "controlplane_task_ops_total"
CONTROLPLANE_ADAPTATIONS_TOTAL = "controlplane_adaptations_total"
CONTROLPLANE_RUNS_TOTAL = "controlplane_runs_total"
CONTROLPLANE_REPLAN_SECONDS = "controlplane_replan_seconds"

# Control-plane gauges (current state, not monotonic).
CONTROLPLANE_TENANTS = "controlplane_tenants"
CONTROLPLANE_TASKS = "controlplane_tasks"
CONTROLPLANE_PAIRS = "controlplane_pairs"
CONTROLPLANE_COLLECTOR_SHARDS = "controlplane_collector_shards"

# Simulator mirrors (deltas of CollectionStats, ``sim_`` prefixed).
SIM_MESSAGES_SENT = "sim_messages_sent"
SIM_MESSAGES_DELIVERED = "sim_messages_delivered"
SIM_MESSAGES_DROPPED_CAPACITY = "sim_messages_dropped_capacity"
SIM_MESSAGES_DROPPED_FAILURE = "sim_messages_dropped_failure"
SIM_VALUES_TRIMMED = "sim_values_trimmed"
SIM_COST_UNITS_SPENT = "sim_cost_units_spent"
SIM_PERIODS = "sim_periods"

METRICS = frozenset(
    {
        MESSAGES_SENT,
        MESSAGES_DELIVERED,
        MESSAGES_DROPPED_CAPACITY,
        MESSAGES_DROPPED_FAILURE,
        COST_UNITS_SPENT,
        HEARTBEATS_SENT,
        CHILD_WAIT_TIMEOUTS,
        VALUES_TRIMMED,
        VALUES_DEFERRED,
        AGENT_DOWN_PERIODS,
        FAILURE_DETECTIONS,
        FAILURE_RECOVERIES,
        TRANSPORT_ENVELOPES_SENT,
        TRANSPORT_ENVELOPES_DELIVERED,
        DEPLOY_WORKER_RESTARTS,
        TRACE_SPANS_DROPPED,
        NET_FRAMES_SENT,
        NET_FRAMES_RECEIVED,
        NET_FRAMES_DROPPED,
        NET_BYTES_SENT,
        NET_BYTES_RECEIVED,
        NET_RECONNECTS,
        COLLECTION_LATENCY_S,
        STALENESS_PERIODS,
        PERIOD_COVERAGE,
        PAYLOAD_VALUES,
        NET_DIAL_LATENCY_S,
        PLANNER_ITERATIONS_TOTAL,
        PLANNER_CANDIDATES_RANKED_TOTAL,
        PLANNER_CANDIDATES_EVALUATED_TOTAL,
        PLANNER_MEMO_HITS_TOTAL,
        PLANNER_MEMO_MISSES_TOTAL,
        PLANNER_PHASE_SECONDS,
        ADAPTATION_OPS_APPLIED_TOTAL,
        ADAPTATION_OPS_THROTTLED_TOTAL,
        ADAPTATION_MESSAGES_TOTAL,
        SERVE_REQUESTS_TOTAL,
        SERVE_ERRORS_TOTAL,
        SERVE_CONNECTIONS_TOTAL,
        SERVE_REQUEST_SECONDS,
        CONTROLPLANE_TASK_OPS_TOTAL,
        CONTROLPLANE_ADAPTATIONS_TOTAL,
        CONTROLPLANE_RUNS_TOTAL,
        CONTROLPLANE_REPLAN_SECONDS,
        CONTROLPLANE_TENANTS,
        CONTROLPLANE_TASKS,
        CONTROLPLANE_PAIRS,
        CONTROLPLANE_COLLECTOR_SHARDS,
        SIM_MESSAGES_SENT,
        SIM_MESSAGES_DELIVERED,
        SIM_MESSAGES_DROPPED_CAPACITY,
        SIM_MESSAGES_DROPPED_FAILURE,
        SIM_VALUES_TRIMMED,
        SIM_COST_UNITS_SPENT,
        SIM_PERIODS,
    }
)

# ---------------------------------------------------------------------------
# Span and instant-event names
# ---------------------------------------------------------------------------
SPAN_PLANNER_PLAN = "planner.plan"
SPAN_PLANNER_SEED_EVAL = "planner.seed_eval"
SPAN_PLANNER_EVALUATE_CANDIDATE = "planner.evaluate_candidate"
SPAN_PLANNER_FINAL_REBUILD = "planner.final_rebuild"
EVENT_PLANNER_ACCEPT = "planner.accept"
SPAN_PARTITION_MERGE_ITERATION = "partition.merge_iteration"

SPAN_ADAPTATION_APPLY_CHANGES = "adaptation.apply_changes"
SPAN_ADAPTATION_RESTRICTED_SEARCH = "adaptation.restricted_search"
EVENT_ADAPTATION_COST_BENEFIT = "adaptation.cost_benefit"

SPAN_SIMULATION_PERIOD = "simulation.period"

SPAN_RUNTIME_PERIOD = "runtime.period"
SPAN_RUNTIME_SETTLE = "runtime.settle"
SPAN_AGENT_WAVE = "agent.wave"
SPAN_AGENT_CHILD_WAIT = "agent.child_wait"
# Instant events marking an update's arrival, linked to the *sender's*
# wave span via the envelope's trace context -- the reverse-direction
# cross-process edge in a merged trace.
EVENT_AGENT_RECV = "agent.recv"
EVENT_COLLECTOR_RECV = "collector.recv"
SPAN_COLLECTOR_CLOSE_PERIOD = "collector.close_period"

SPAN_SERVE_REQUEST = "serve.request"
SPAN_CONTROLPLANE_ADAPT = "controlplane.adapt"
SPAN_CONTROLPLANE_RUN = "controlplane.run"

SPANS = frozenset(
    {
        SPAN_PLANNER_PLAN,
        SPAN_PLANNER_SEED_EVAL,
        SPAN_PLANNER_EVALUATE_CANDIDATE,
        SPAN_PLANNER_FINAL_REBUILD,
        EVENT_PLANNER_ACCEPT,
        SPAN_PARTITION_MERGE_ITERATION,
        SPAN_ADAPTATION_APPLY_CHANGES,
        SPAN_ADAPTATION_RESTRICTED_SEARCH,
        EVENT_ADAPTATION_COST_BENEFIT,
        SPAN_SIMULATION_PERIOD,
        SPAN_RUNTIME_PERIOD,
        SPAN_RUNTIME_SETTLE,
        SPAN_AGENT_WAVE,
        SPAN_AGENT_CHILD_WAIT,
        EVENT_AGENT_RECV,
        EVENT_COLLECTOR_RECV,
        SPAN_COLLECTOR_CLOSE_PERIOD,
        SPAN_SERVE_REQUEST,
        SPAN_CONTROLPLANE_ADAPT,
        SPAN_CONTROLPLANE_RUN,
    }
)

# ---------------------------------------------------------------------------
# Structured-log event names (``repro.obs.log`` -- same manifest
# contract as metrics/spans; ``repro lint`` REMO435 enforces it)
# ---------------------------------------------------------------------------
LOG_SERVE_READY = "serve.ready"
LOG_SERVE_STOPPED = "serve.stopped"
LOG_DEPLOY_WORKER_START = "deploy.worker_start"
LOG_DEPLOY_WORKER_EXIT = "deploy.worker_exit"
LOG_DEPLOY_WORKER_CRASH = "deploy.worker_crash"
LOG_DEPLOY_WORKER_RESTART = "deploy.worker_restart"
LOG_DEPLOY_CHAOS_KILL = "deploy.chaos_kill"
LOG_DEPLOY_CHECK_FAILED = "deploy.check_failed"
LOG_NET_RECONNECT = "net.reconnect"
LOG_NET_FRAME_DROPPED = "net.frame_dropped"
LOG_FLIGHT_DUMP = "obs.flight_dump"

LOG_EVENTS = frozenset(
    {
        LOG_SERVE_READY,
        LOG_SERVE_STOPPED,
        LOG_DEPLOY_WORKER_START,
        LOG_DEPLOY_WORKER_EXIT,
        LOG_DEPLOY_WORKER_CRASH,
        LOG_DEPLOY_WORKER_RESTART,
        LOG_DEPLOY_CHAOS_KILL,
        LOG_DEPLOY_CHECK_FAILED,
        LOG_NET_RECONNECT,
        LOG_NET_FRAME_DROPPED,
        LOG_FLIGHT_DUMP,
    }
)

# ---------------------------------------------------------------------------
# Trace lanes (logical actor rows in the Chrome-trace exporter)
# ---------------------------------------------------------------------------
LANE_PLANNER = "planner"
LANE_ADAPTATION = "adaptation"
LANE_SIMULATOR = "simulator"
LANE_ENGINE = "engine"
LANE_COLLECTOR = "collector"
LANE_TRANSPORT = "transport"
LANE_SERVE = "serve"
LANE_CONTROLPLANE = "controlplane"
LANE_DEPLOY = "deploy"

#: Prefixes of the per-instance lanes built by the helpers below.
NODE_LANE_PREFIX = "node-"
WORKER_LANE_PREFIX = "planner-worker-"

LANES = frozenset(
    {
        LANE_PLANNER,
        LANE_ADAPTATION,
        LANE_SIMULATOR,
        LANE_ENGINE,
        LANE_COLLECTOR,
        LANE_TRANSPORT,
        LANE_SERVE,
        LANE_CONTROLPLANE,
        LANE_DEPLOY,
    }
)

LANE_PREFIXES = (NODE_LANE_PREFIX, WORKER_LANE_PREFIX)


def node_lane(node_id: object) -> str:
    """The trace lane of one node agent (``node-<id>``)."""
    return f"{NODE_LANE_PREFIX}{node_id}"


def worker_lane(rank: object) -> str:
    """The trace lane of one forked planner worker (``planner-worker-<rank>``)."""
    return f"{WORKER_LANE_PREFIX}{rank}"
