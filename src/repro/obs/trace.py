"""Lightweight span tracing for the planner, simulator, and runtime.

A :class:`Span` is one timed region -- the planner evaluating a ranked
candidate, a node agent's per-period wave, the collector scoring a
period -- carrying a name, wall-clock start/duration (from
``time.perf_counter``), free-form attributes, and enough identity
(pid, thread, optional *lane*) for the Chrome trace-event exporter to
draw one row per logical actor in Perfetto.

Tracing is off by default and costs one ``None`` check per
instrumentation site: ``span(...)`` returns a shared no-op context
manager until a :class:`Tracer` is installed (:func:`install` /
:func:`installed`).  The overhead guard in
``benchmarks/bench_telemetry_overhead.py`` holds the *enabled* path to
<5% of planning wall-clock, so instrumentation can stay on in CI.

Context propagation:

- **asyncio**: the current span lives in a ``contextvars.ContextVar``,
  which asyncio snapshots per task -- concurrent agent tasks each see
  their own span stack;
- **forked planner workers**: a worker inherits the installed tracer
  through ``fork``, records spans locally (attributed by candidate
  rank), and ships them back to the parent alongside its results via
  :func:`drain_local` / :func:`ingest`;
- **across processes**: a :class:`TraceContext` (128-bit trace id plus
  the sender's span id) travels on runtime envelopes and in W3C
  ``traceparent`` HTTP headers.  :func:`attach` adopts a received
  context so locally recorded spans join the remote trace, with their
  ``parent_id`` pointing at the remote span.  Span ids are minted from
  a per-process random base so ids stay unique after merging
  per-worker span artifacts into one trace.

``timer(...)`` is the span helper for code that needs the elapsed time
itself (``PlanningStats.elapsed_seconds``,
``AdaptationReport.planning_seconds``): it always measures, and
additionally records a span when tracing is enabled -- one helper in
place of the hand-rolled ``time.perf_counter()`` pairs it replaced.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Union

#: Parent span id for the calling context (asyncio-task scoped).
_CURRENT_SPAN: ContextVar[Optional[int]] = ContextVar("repro_obs_span", default=None)

#: Trace id for the calling context; spans recorded while set carry it.
_CURRENT_TRACE: ContextVar[Optional[str]] = ContextVar(
    "repro_obs_trace", default=None
)

#: Default cap on stored spans per tracer (satellite: soak runs must
#: not OOM the tracer).  Overflow drops the incoming span and bumps the
#: ``trace_spans_dropped`` counter on the ambient metrics registry.
DEFAULT_MAX_SPANS = 100_000


@dataclass(frozen=True)
class TraceContext:
    """W3C-traceparent-style context: 128-bit trace id + parent span id.

    ``trace_id`` is 32 lowercase hex characters; ``span_id`` is the
    integer id of the span that was current when the context was
    captured (0 means "root of the trace, no parent span").
    """

    trace_id: str
    span_id: int = 0


def new_trace_id() -> str:
    """A fresh random 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def new_root_context() -> TraceContext:
    """Mint a context starting a brand-new trace (no parent span)."""
    return TraceContext(trace_id=new_trace_id(), span_id=0)


def format_traceparent(ctx: TraceContext) -> str:
    """Render a context as a W3C ``traceparent`` header value."""
    return f"00-{ctx.trace_id}-{ctx.span_id & 0xFFFFFFFFFFFFFFFF:016x}-01"


def parse_traceparent(value: str) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; ``None`` on anything malformed."""
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_hex, _flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_hex) != 16:
        return None
    try:
        int(version, 16)
        int(trace_id, 16)
        span_id = int(span_hex, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32:
        return None
    return TraceContext(trace_id=trace_id.lower(), span_id=span_id)


def current_context() -> Optional[TraceContext]:
    """The context a child process/request should inherit, or ``None``.

    Captures the ambient trace id plus the *current* span id, so a
    context taken inside ``with span(...)`` links remote children to
    that span.
    """
    trace_id = _CURRENT_TRACE.get()
    if trace_id is None:
        return None
    return TraceContext(trace_id=trace_id, span_id=_CURRENT_SPAN.get() or 0)


@contextmanager
def attach(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Adopt a received context: spans recorded inside join its trace.

    ``attach(None)`` is a cheap no-op so call sites can pass an
    envelope's (possibly absent) context unconditionally.
    """
    if ctx is None:
        yield
        return
    trace_token = _CURRENT_TRACE.set(ctx.trace_id)
    span_token = _CURRENT_SPAN.set(ctx.span_id or None)
    try:
        yield
    finally:
        _CURRENT_SPAN.reset(span_token)
        _CURRENT_TRACE.reset(trace_token)


@dataclass
class Span:
    """One finished timed region (or instant event, ``duration == 0``)."""

    name: str
    start: float  # time.perf_counter() at entry, seconds
    duration: float  # seconds; 0.0 for instant events
    attrs: Dict[str, object] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0
    span_id: int = 0
    parent_id: Optional[int] = None
    kind: str = "span"  # "span" | "instant"
    lane: Optional[str] = None  # logical actor row for trace viewers
    trace_id: Optional[str] = None  # 32-hex distributed trace id


def _span_id_base() -> int:
    """A per-process random base keeping span ids unique across workers.

    32 random bits shifted left 32: each process can mint ~4 billion
    sequential ids before touching another base's range, and two
    processes collide only on a 2^-32 birthday event -- good enough for
    a deploy's handful of workers whose spans get merged into one
    Chrome trace.
    """
    return int.from_bytes(os.urandom(4), "big") << 32


class Tracer:
    """Collects finished spans; one per process (workers inherit a copy).

    Storage is bounded by ``max_spans``: once full, incoming spans are
    dropped (keep-first, so a trace's early structure survives) and
    counted both locally (:attr:`dropped`) and on the ambient metrics
    registry as ``trace_spans_dropped``.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self._spans: List[Span] = []
        self._ids = itertools.count(_span_id_base() + 1)
        self.max_spans = max_spans
        #: Spans discarded because the cap was hit.
        self.dropped = 0
        #: perf_counter at creation: exporters rebase timestamps on it.
        self.epoch = time.perf_counter()

    def next_id(self) -> int:
        return next(self._ids)

    def record(self, span: Span) -> None:
        if len(self._spans) >= self.max_spans:
            self._drop(1)
            return
        self._spans.append(span)

    def _drop(self, count: int) -> None:
        self.dropped += count
        from .metrics import default_registry
        from . import names

        default_registry().incr(names.TRACE_SPANS_DROPPED, count)

    def ingest(self, spans: Iterable[Span]) -> None:
        """Merge spans shipped back from a forked worker (cap applies)."""
        room = self.max_spans - len(self._spans)
        incoming = list(spans)
        if len(incoming) > room:
            kept, lost = incoming[:room], len(incoming) - room
            self._spans.extend(kept)
            self._drop(lost)
        else:
            self._spans.extend(incoming)

    def spans(self) -> List[Span]:
        return list(self._spans)

    def drain(self) -> List[Span]:
        drained, self._spans = self._spans, []
        return drained

    def __len__(self) -> int:
        return len(self._spans)


#: The installed tracer; ``None`` keeps every span() call a no-op.
_TRACER: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    return _TRACER


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Enable tracing process-wide; returns the installed tracer."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was active."""
    global _TRACER
    previous = _TRACER
    _TRACER = None
    return previous


@contextmanager
def installed(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope a tracer: install on entry, restore the previous on exit."""
    global _TRACER
    previous = _TRACER
    active = install(tracer)
    try:
        yield active
    finally:
        _TRACER = previous


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()

    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: object) -> None:
        return None

    def context(self) -> Optional[TraceContext]:
        return current_context()


_NULL_SPAN = _NullSpan()


class _PlainTimer:
    """timer() fallback while tracing is disabled: measures, records nothing."""

    __slots__ = ("elapsed", "_start")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "_PlainTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start
        return None

    def set(self, **attrs: object) -> None:
        return None

    def context(self) -> Optional[TraceContext]:
        return current_context()


class _LiveSpan:
    """Context manager recording one span into the installed tracer."""

    __slots__ = ("elapsed", "_tracer", "_name", "_attrs", "_lane", "_start",
                 "_span_id", "_parent_id", "_trace_id", "_token")

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        attrs: Dict[str, object],
        lane: Optional[str],
    ) -> None:
        self.elapsed = 0.0
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._lane = lane

    def __enter__(self) -> "_LiveSpan":
        self._parent_id = _CURRENT_SPAN.get()
        self._trace_id = _CURRENT_TRACE.get()
        self._span_id = self._tracer.next_id()
        self._token = _CURRENT_SPAN.set(self._span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter()
        self.elapsed = end - self._start
        _CURRENT_SPAN.reset(self._token)
        self._tracer.record(
            Span(
                name=self._name,
                start=self._start,
                duration=self.elapsed,
                attrs=self._attrs,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=self._span_id,
                parent_id=self._parent_id,
                kind="span",
                lane=self._lane,
                trace_id=self._trace_id,
            )
        )
        return None

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered mid-span (e.g. a verdict)."""
        self._attrs.update(attrs)

    def context(self) -> Optional[TraceContext]:
        """A context pointing at *this* span, for stamping on envelopes."""
        if self._trace_id is None:
            return None
        return TraceContext(trace_id=self._trace_id, span_id=self._span_id)


#: What instrumentation sites receive: a context manager exposing
#: ``elapsed`` (seconds, after exit) and ``set(**attrs)``.
SpanHandle = Union["_NullSpan", "_PlainTimer", "_LiveSpan"]


def span(name: str, lane: Optional[str] = None, **attrs: object) -> SpanHandle:
    """A timed region; a shared no-op unless a tracer is installed.

    ``lane`` names the logical actor row (``node-3``, ``collector``,
    ``engine``) for the Chrome trace exporter; it is not an attribute.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return _LiveSpan(tracer, name, attrs, lane)


def timer(name: str, lane: Optional[str] = None, **attrs: object) -> SpanHandle:
    """Like :func:`span`, but the handle's ``elapsed`` is always measured."""
    tracer = _TRACER
    if tracer is None:
        return _PlainTimer()
    return _LiveSpan(tracer, name, attrs, lane)


def event(name: str, lane: Optional[str] = None, **attrs: object) -> None:
    """Record an instant event (a decision, not a duration)."""
    tracer = _TRACER
    if tracer is None:
        return
    tracer.record(
        Span(
            name=name,
            start=time.perf_counter(),
            duration=0.0,
            attrs=dict(attrs),
            pid=os.getpid(),
            tid=threading.get_ident(),
            span_id=tracer.next_id(),
            parent_id=_CURRENT_SPAN.get(),
            kind="instant",
            lane=lane,
            trace_id=_CURRENT_TRACE.get(),
        )
    )


def drain_local() -> List[Span]:
    """Drain the process-local tracer (forked workers ship these back)."""
    tracer = _TRACER
    if tracer is None:
        return []
    return tracer.drain()


def ingest(spans: Iterable[Span]) -> None:
    """Merge worker spans into the parent's tracer (no-op when disabled)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.ingest(spans)
