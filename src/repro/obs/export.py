"""Pluggable exporters for spans and metric snapshots.

Three output formats, one per consumer:

- **JSONL** (:func:`write_jsonl_spans` / :func:`read_jsonl_spans`) --
  one span per line, lossless round-trip back into :class:`Span`
  objects for programmatic analysis;
- **Chrome trace-event JSON** (:func:`write_chrome_trace`) -- opens
  directly in ``about:tracing`` / Perfetto; spans become complete
  (``ph: "X"``) events, instants become ``ph: "i"``, and lanes become
  named thread rows via metadata events;
- **Prometheus text format** (:func:`prometheus_text` /
  :func:`write_prometheus`) -- a scrape-shaped snapshot of a
  :class:`MetricsRegistry`: counters and gauges as-is, histograms as
  summaries (``quantile`` series plus ``_sum`` / ``_count``).

:func:`parse_prometheus_text` and :func:`check_prometheus_text` close
the loop: the ``repro metrics`` subcommand renders a snapshot file
back into tables, and the format checker keeps exporter output honest
in tests.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry, format_series
from repro.obs.trace import Span

#: Quantiles exported for every histogram summary.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


# ----------------------------------------------------------------------
# JSONL span log
# ----------------------------------------------------------------------
def span_to_dict(span: Span) -> Dict[str, object]:
    return {
        "name": span.name,
        "start": span.start,
        "duration": span.duration,
        "attrs": dict(span.attrs),
        "pid": span.pid,
        "tid": span.tid,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "kind": span.kind,
        "lane": span.lane,
        "trace_id": span.trace_id,
    }


def span_from_dict(payload: Dict[str, object]) -> Span:
    return Span(
        name=str(payload["name"]),
        start=float(payload["start"]),  # type: ignore[arg-type]
        duration=float(payload["duration"]),  # type: ignore[arg-type]
        attrs=dict(payload.get("attrs") or {}),  # type: ignore[call-overload]
        pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
        tid=int(payload.get("tid", 0)),  # type: ignore[arg-type]
        span_id=int(payload.get("span_id", 0)),  # type: ignore[arg-type]
        parent_id=(
            None if payload.get("parent_id") is None else int(payload["parent_id"])  # type: ignore[arg-type]
        ),
        kind=str(payload.get("kind", "span")),
        lane=(None if payload.get("lane") is None else str(payload["lane"])),
        trace_id=(
            None if payload.get("trace_id") is None else str(payload["trace_id"])
        ),
    )


def write_jsonl_spans(spans: Sequence[Span], path: str) -> None:
    """One JSON object per line; lossless against :func:`read_jsonl_spans`."""
    with open(path, "w") as fh:
        for span in spans:
            fh.write(json.dumps(span_to_dict(span), sort_keys=True))
            fh.write("\n")


def read_jsonl_spans(path: str) -> List[Span]:
    spans: List[Span] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Chrome trace-event JSON (about:tracing / Perfetto)
# ----------------------------------------------------------------------
def chrome_trace_events(
    spans: Sequence[Span], epoch: Optional[float] = None
) -> List[Dict[str, object]]:
    """Spans as trace-event dicts, timestamps rebased to ``epoch``.

    Lanes become synthetic thread ids with ``thread_name`` metadata so
    each logical actor (node agent, collector, engine) renders as its
    own labeled row.  Events are sorted by timestamp, which also makes
    ``ts`` monotonic within every (pid, tid) track.
    """
    if epoch is None:
        epoch = min((s.start for s in spans), default=0.0)
    lane_ids: Dict[Tuple[int, str], int] = {}
    keyed: List[Tuple[float, int, int, Dict[str, object]]] = []
    for span in spans:
        if span.lane is not None:
            lane_key = (span.pid, span.lane)
            tid = lane_ids.setdefault(lane_key, len(lane_ids) + 1)
        else:
            tid = span.tid
        ts = max(span.start - epoch, 0.0) * 1e6
        args = dict(span.attrs)
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
        base: Dict[str, object] = {
            "name": span.name,
            "cat": "remo",
            "ts": ts,
            "pid": span.pid,
            "tid": tid,
            "args": args,
        }
        if span.kind == "instant":
            base["ph"] = "i"
            base["s"] = "t"
        else:
            base["ph"] = "X"
            base["dur"] = span.duration * 1e6
        keyed.append((ts, span.pid, tid, base))
    keyed.sort(key=lambda item: item[:3])
    events = [base for _ts, _pid, _tid, base in keyed]
    metadata: List[Dict[str, object]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": lane},
        }
        for (pid, lane), tid in sorted(lane_ids.items(), key=lambda kv: kv[1])
    ]
    return metadata + events


def write_chrome_trace(
    spans: Sequence[Span], path: str, epoch: Optional[float] = None
) -> None:
    payload = {
        "traceEvents": chrome_trace_events(spans, epoch=epoch),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
        fh.write("\n")


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")

#: One sample line: ``name{labels} value`` with an optional label block.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\")*\})?"
    r" (?P<value>[-+]?(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][-+]?\d+)?|[-+]?Inf|NaN)$"
)


def _metric_name(name: str) -> str:
    sanitized = _NAME_SANITIZER.sub("_", name)
    if not re.match(r"[a-zA-Z_:]", sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _sample(name: str, labels: Sequence[Tuple[str, str]], value: float) -> str:
    return f"{format_series(_metric_name(name), tuple(labels))} {_format_value(value)}"


def _histogram_lines(
    name: str, labels: Sequence[Tuple[str, str]], hist: Histogram
) -> List[str]:
    lines = []
    for q in SUMMARY_QUANTILES:
        q_labels = list(labels) + [("quantile", str(q))]
        lines.append(_sample(name, q_labels, hist.quantile(q)))
    lines.append(_sample(name + "_sum", labels, hist.sum))
    lines.append(_sample(name + "_count", labels, float(hist.count)))
    return lines


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry as a Prometheus text-format exposition."""
    by_name: Dict[str, List[str]] = {}
    types: Dict[str, str] = {}
    for kind, (name, labels) in registry.series():
        metric = _metric_name(name)
        key = (name, labels)
        if kind == "counter":
            types.setdefault(metric, "counter")
            by_name.setdefault(metric, []).append(
                _sample(name, labels, registry.counter_value(key))
            )
        elif kind == "gauge":
            types.setdefault(metric, "gauge")
            by_name.setdefault(metric, []).append(
                _sample(name, labels, registry.gauge_value(key))
            )
        else:
            types.setdefault(metric, "summary")
            by_name.setdefault(metric, []).extend(
                _histogram_lines(name, labels, registry.histogram_value(key))
            )
    lines: List[str] = []
    for metric in sorted(by_name):
        lines.append(f"# TYPE {metric} {types[metric]}")
        lines.extend(by_name[metric])
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(prometheus_text(registry))


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Sample lines back into ``{formatted series name: value}``."""
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed Prometheus sample line: {line!r}")
        labels = match.group("labels") or ""
        samples[match.group("name") + labels] = float(match.group("value"))
    return samples


def check_prometheus_text(text: str) -> List[str]:
    """Line-format violations (empty when the exposition is well-formed)."""
    problems: List[str] = []
    seen_sample = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            if not re.match(r"^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* ", line):
                problems.append(f"line {lineno}: malformed comment: {line!r}")
            continue
        if _SAMPLE_LINE.match(line) is None:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
        else:
            seen_sample = True
    if not seen_sample and text.strip():
        problems.append("no sample lines found")
    return problems
