"""Stream operators.

Each operator is a node in a dataflow graph with simple but
serviceable dynamics: its output rate is its input rate scaled by a
*selectivity* (sources are driven by bursty rate generators instead),
and a finite *service rate* induces queue growth under burst -- the
"perceived bottleneck" scenario the paper's diagnosis tasks monitor
for.  Every operator exposes four monitorable metrics: ``rate_in``,
``rate_out``, ``queue``, and ``cpu``.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List

#: Metric name suffixes every operator exposes.
OPERATOR_METRICS = ("rate_in", "rate_out", "queue", "cpu")


class OperatorKind(enum.Enum):
    """Operator roles in an analytic dataflow."""

    SOURCE = "source"
    FUNCTOR = "functor"  # parse / filter / transform
    AGGREGATE = "aggregate"
    JOIN = "join"
    SINK = "sink"


@dataclass
class Operator:
    """One analytic operator.

    Parameters
    ----------
    op_id:
        Unique name, e.g. ``"parse07"``.
    kind:
        Role in the dataflow.
    selectivity:
        Output tuples per input tuple (ignored for sources).
    service_rate:
        Tuples per unit time the operator can process; the excess
        queues up.
    burst_calm / burst_peak:
        Source rate regime levels (sources only).
    """

    op_id: str
    kind: OperatorKind
    selectivity: float = 1.0
    service_rate: float = 2000.0
    burst_calm: float = 100.0
    burst_peak: float = 1000.0

    # Dynamic state (updated by StreamApp.step()).
    rate_in: float = 0.0
    rate_out: float = 0.0
    queue: float = 0.0
    cpu: float = 0.0
    _bursting: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.selectivity < 0:
            raise ValueError(f"{self.op_id}: selectivity must be >= 0")
        if self.service_rate <= 0:
            raise ValueError(f"{self.op_id}: service_rate must be > 0")

    # ------------------------------------------------------------------
    def source_rate(self, rng: random.Random) -> float:
        """Advance and return a bursty source rate (sources only)."""
        if self.kind is not OperatorKind.SOURCE:
            raise ValueError(f"{self.op_id} is not a source")
        if self._bursting:
            if rng.random() < 0.3:
                self._bursting = False
        elif rng.random() < 0.05:
            self._bursting = True
        level = self.burst_peak if self._bursting else self.burst_calm
        return level * (1.0 + rng.uniform(-0.1, 0.1))

    def update(self, rate_in: float) -> None:
        """Advance one unit of time given the incoming tuple rate."""
        self.rate_in = rate_in
        served = min(rate_in + self.queue, self.service_rate)
        self.queue = max(self.queue + rate_in - served, 0.0)
        self.rate_out = served * self.selectivity if self.kind is not OperatorKind.SINK else 0.0
        self.cpu = min(served / self.service_rate, 1.0)

    def metric(self, name: str) -> float:
        """Current value of one of :data:`OPERATOR_METRICS`."""
        if name == "rate_in":
            return self.rate_in
        if name == "rate_out":
            return self.rate_out
        if name == "queue":
            return self.queue
        if name == "cpu":
            return self.cpu * 100.0
        raise KeyError(f"unknown operator metric {name!r}")

    def metric_names(self) -> List[str]:
        """Fully qualified metric attribute names for this operator."""
        return [f"{self.op_id}.{m}" for m in OPERATOR_METRICS]
