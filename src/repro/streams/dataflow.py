"""Dataflow graphs of stream operators.

A thin, validated wrapper around a :mod:`networkx` DiGraph: vertices
are :class:`~repro.streams.operators.Operator` instances, edges are
stream connections.  The graph must be a DAG with sources at the top;
rate propagation walks it in topological order once per unit time.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import networkx as nx

from repro.streams.operators import Operator, OperatorKind


class DataflowGraph:
    """A DAG of stream operators connected by data streams."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._operators: Dict[str, Operator] = {}

    # ------------------------------------------------------------------
    def add_operator(self, operator: Operator) -> Operator:
        if operator.op_id in self._operators:
            raise ValueError(f"duplicate operator id {operator.op_id!r}")
        self._operators[operator.op_id] = operator
        self._graph.add_node(operator.op_id)
        return operator

    def connect(self, upstream: str, downstream: str) -> None:
        """Add a stream from ``upstream`` to ``downstream``."""
        for op_id in (upstream, downstream):
            if op_id not in self._operators:
                raise ValueError(f"unknown operator {op_id!r}")
        if self._operators[upstream].kind is OperatorKind.SINK:
            raise ValueError(f"sink {upstream!r} cannot produce a stream")
        if self._operators[downstream].kind is OperatorKind.SOURCE:
            raise ValueError(f"source {downstream!r} cannot consume a stream")
        self._graph.add_edge(upstream, downstream)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(upstream, downstream)
            raise ValueError(
                f"edge {upstream!r} -> {downstream!r} would create a cycle"
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._operators)

    def __contains__(self, op_id: str) -> bool:
        return op_id in self._operators

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._operators.values())

    def operator(self, op_id: str) -> Operator:
        return self._operators[op_id]

    def upstream_of(self, op_id: str) -> List[Operator]:
        return [self._operators[u] for u in self._graph.predecessors(op_id)]

    def downstream_of(self, op_id: str) -> List[Operator]:
        return [self._operators[d] for d in self._graph.successors(op_id)]

    def sources(self) -> List[Operator]:
        return [op for op in self if op.kind is OperatorKind.SOURCE]

    def sinks(self) -> List[Operator]:
        return [op for op in self if op.kind is OperatorKind.SINK]

    def topological_order(self) -> List[Operator]:
        """Operators in a valid processing order."""
        return [self._operators[op_id] for op_id in nx.topological_sort(self._graph)]

    def validate(self) -> None:
        """Structural sanity: DAG, sources have no in-edges, every
        non-source has at least one upstream."""
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError("dataflow graph contains a cycle")
        for op in self:
            in_degree = self._graph.in_degree(op.op_id)
            if op.kind is OperatorKind.SOURCE and in_degree:
                raise ValueError(f"source {op.op_id!r} has incoming streams")
            if op.kind is not OperatorKind.SOURCE and in_degree == 0:
                raise ValueError(f"operator {op.op_id!r} is disconnected from sources")
