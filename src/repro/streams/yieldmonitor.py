"""A YieldMonitor-like chip-manufacturing-test analytics application.

The paper's real-system experiments deploy *YieldMonitor* [18]: a
System S application that ingests chip test-line data and uses
statistical stream processing to predict per-chip yield, consisting of
over 200 processes across 200 BlueGene/P nodes with 30-50 monitorable
attributes per node.  This module synthesizes an application with that
published shape:

- ``n_lines`` test-line *sources* (bursty tuple rates), each feeding a
  parse -> filter -> per-test statistical-predictor pipeline;
- per-wafer *aggregate* operators fan the predictor outputs in;
- a final yield-model join + sink.

Operators are placed round-robin across the requested nodes; with the
default shape every node hosts enough operators that its attribute
count (4 metrics per operator + 6 OS gauges) lands in the paper's
30-50 range.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.attributes import NodeId
from repro.core.tasks import MonitoringTask
from repro.streams.app import OS_METRICS, StreamApp
from repro.streams.dataflow import DataflowGraph
from repro.streams.operators import Operator, OperatorKind


def make_yieldmonitor(
    n_nodes: int = 200,
    n_lines: int = 50,
    predictors_per_line: int = 4,
    seed: Optional[int] = None,
) -> StreamApp:
    """Build and place the synthetic YieldMonitor application.

    With the defaults the graph holds ``50 * (2 + 4) + 50/5 + 2 = 312``
    operators over 200 nodes (>200 processes, as published) and every
    node exposes between 30 and 50 attributes.
    """
    if n_nodes <= 0 or n_lines <= 0 or predictors_per_line <= 0:
        raise ValueError("application shape parameters must be positive")
    rng = random.Random(seed)
    graph = DataflowGraph()

    aggregates: List[Operator] = []
    for w in range(max(1, n_lines // 5)):
        aggregates.append(
            graph.add_operator(
                Operator(
                    f"wafer_agg{w:02d}",
                    OperatorKind.AGGREGATE,
                    selectivity=0.05,
                    service_rate=rng.uniform(3000, 6000),
                )
            )
        )

    for line in range(n_lines):
        source = graph.add_operator(
            Operator(
                f"line{line:03d}.src",
                OperatorKind.SOURCE,
                burst_calm=rng.uniform(80, 150),
                burst_peak=rng.uniform(600, 1500),
                service_rate=rng.uniform(2000, 4000),
            )
        )
        parse = graph.add_operator(
            Operator(
                f"line{line:03d}.parse",
                OperatorKind.FUNCTOR,
                selectivity=rng.uniform(0.9, 1.0),
                service_rate=rng.uniform(1500, 3000),
            )
        )
        graph.connect(source.op_id, parse.op_id)
        for p in range(predictors_per_line):
            predictor = graph.add_operator(
                Operator(
                    f"line{line:03d}.pred{p}",
                    OperatorKind.FUNCTOR,
                    selectivity=rng.uniform(0.2, 0.6),
                    service_rate=rng.uniform(800, 2000),
                )
            )
            graph.connect(parse.op_id, predictor.op_id)
            graph.connect(predictor.op_id, aggregates[line % len(aggregates)].op_id)

    yield_model = graph.add_operator(
        Operator(
            "yield_model",
            OperatorKind.JOIN,
            selectivity=0.5,
            service_rate=8000,
        )
    )
    sink = graph.add_operator(
        Operator("yield_sink", OperatorKind.SINK, service_rate=10000)
    )
    for agg in aggregates:
        graph.connect(agg.op_id, yield_model.op_id)
    graph.connect(yield_model.op_id, sink.op_id)

    # Round-robin placement over all nodes; deterministic given the seed.
    op_ids = [op.op_id for op in graph]
    rng.shuffle(op_ids)
    placement: Dict[str, NodeId] = {
        op_id: i % n_nodes for i, op_id in enumerate(op_ids)
    }
    return StreamApp(graph, placement, seed=seed)


def yieldmonitor_tasks(
    app: StreamApp,
    count: int,
    seed: Optional[int] = None,
    nodes_per_task: Tuple[int, int] = (10, 60),
) -> List[MonitoringTask]:
    """Synthesize monitoring tasks against the application.

    Mirrors the workload mix the paper describes: dashboards collecting
    OS gauges from many nodes, diagnosis tasks collecting rate/queue
    metrics from a pipeline's operators, and provisioning tasks
    watching CPU across the deployment.
    """
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    rng = random.Random(seed)
    nodes = app.nodes()
    tasks: List[MonitoringTask] = []
    attempts = 0
    while len(tasks) < count and attempts < count * 20:
        attempts += 1
        tid = f"ym{len(tasks):04d}"
        lo, hi = nodes_per_task
        target_nodes = rng.sample(nodes, min(rng.randint(lo, hi), len(nodes)))
        style = rng.random()
        if style < 0.4:
            # Dashboard: a couple of OS gauges on many nodes.
            attrs = rng.sample(OS_METRICS, rng.randint(1, 3))
            tasks.append(MonitoringTask(tid, attrs, target_nodes))
            continue
        # Diagnosis: operator metrics observed on those nodes.
        observable = set()
        for node in target_nodes:
            for op in app.operators_on(node):
                observable.update(op.metric_names())
        if not observable:
            continue
        metric_kind = rng.choice(["rate_in", "rate_out", "queue", "cpu"])
        attrs = sorted(a for a in observable if a.endswith(metric_kind))
        if not attrs:
            continue
        attrs = rng.sample(attrs, min(rng.randint(2, 8), len(attrs)))
        keep_nodes = [
            n
            for n in target_nodes
            if any(app.observes(n, a) for a in attrs)
        ]
        if keep_nodes:
            tasks.append(MonitoringTask(tid, attrs, keep_nodes))
    if len(tasks) < count:
        raise RuntimeError(f"could only synthesize {len(tasks)} of {count} tasks")
    return tasks
