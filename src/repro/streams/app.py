"""A running stream application: dataflow + placement + live metrics.

:class:`StreamApp` owns the dataflow graph, the operator->node
placement, per-node OS-level gauges, and the per-tick rate
propagation.  :class:`StreamMetricRegistry` adapts the application's
live metric surface to the monitoring simulator's registry interface,
so the same discrete-event engine measures percentage error against
*application-generated* ground truth (the Fig. 8 setting).
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional

from repro.cluster.metrics import MetricRegistry
from repro.cluster.node import Cluster, SimNode
from repro.core.attributes import AttributeId, NodeAttributePair, NodeId
from repro.streams.dataflow import DataflowGraph
from repro.streams.operators import Operator, OperatorKind

#: OS-level gauges every node exposes alongside its operators' metrics.
OS_METRICS = ("os.cpu", "os.mem", "os.net_in", "os.net_out", "os.disk", "os.load")


class StreamApp:
    """A placed, running stream-processing application."""

    def __init__(
        self,
        graph: DataflowGraph,
        placement: Mapping[str, NodeId],
        seed: Optional[int] = None,
    ) -> None:
        graph.validate()
        missing = {op.op_id for op in graph} - set(placement)
        if missing:
            raise ValueError(f"operators without placement: {sorted(missing)[:5]}")
        self.graph = graph
        self.placement: Dict[str, NodeId] = dict(placement)
        self.rng = random.Random(seed)
        self._order = graph.topological_order()
        self._os_state: Dict[NodeId, Dict[str, float]] = {}
        for node in self.nodes():
            self._os_state[node] = {
                "os.cpu": 20.0,
                "os.mem": 40.0,
                "os.net_in": 0.0,
                "os.net_out": 0.0,
                "os.disk": 50.0,
                "os.load": 1.0,
            }
        # Prime dynamic state so metrics are meaningful before step().
        self.step()

    # ------------------------------------------------------------------
    def nodes(self) -> List[NodeId]:
        return sorted(set(self.placement.values()))

    def operators_on(self, node: NodeId) -> List[Operator]:
        return [
            self.graph.operator(op_id)
            for op_id, placed in self.placement.items()
            if placed == node
        ]

    def node_attributes(self, node: NodeId) -> List[AttributeId]:
        """All monitorable attribute names exposed by ``node``."""
        attrs: List[AttributeId] = list(OS_METRICS)
        for op in self.operators_on(node):
            attrs.extend(op.metric_names())
        return attrs

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the application by one unit of time."""
        rates_in: Dict[str, float] = {}
        for op in self._order:
            if op.kind is OperatorKind.SOURCE:
                rate = op.source_rate(self.rng)
            else:
                rate = sum(u.rate_out for u in self.graph.upstream_of(op.op_id))
            op.update(rate)
        self._update_os_metrics()

    def _update_os_metrics(self) -> None:
        for node, state in self._os_state.items():
            ops = self.operators_on(node)
            op_cpu = sum(op.cpu for op in ops)
            net_in = sum(op.rate_in for op in ops)
            net_out = sum(op.rate_out for op in ops)
            state["os.cpu"] = min(100.0, 5.0 + 95.0 * op_cpu / max(len(ops), 1)) * (
                1.0 + self.rng.uniform(-0.05, 0.05)
            )
            state["os.mem"] = min(
                100.0, 30.0 + 0.01 * sum(op.queue for op in ops)
            ) * (1.0 + self.rng.uniform(-0.02, 0.02))
            state["os.net_in"] = net_in
            state["os.net_out"] = net_out
            state["os.disk"] = max(
                0.0, state["os.disk"] + self.rng.uniform(-0.1, 0.12)
            )
            state["os.load"] = max(0.0, op_cpu + self.rng.uniform(-0.1, 0.1))

    # ------------------------------------------------------------------
    def metric_value(self, node: NodeId, attribute: AttributeId) -> float:
        """Current value of ``attribute`` at ``node``."""
        if attribute.startswith("os."):
            return self._os_state[node][attribute]
        op_id, _, metric = attribute.rpartition(".")
        op = self.graph.operator(op_id)
        if self.placement[op_id] != node:
            raise KeyError(f"operator {op_id!r} is not placed on node {node}")
        return op.metric(metric)

    def observes(self, node: NodeId, attribute: AttributeId) -> bool:
        if attribute.startswith("os."):
            return node in self._os_state
        op_id, _, metric = attribute.rpartition(".")
        return (
            op_id in self.graph
            and self.placement.get(op_id) == node
            and metric in ("rate_in", "rate_out", "queue", "cpu")
        )


class StreamMetricRegistry(MetricRegistry):
    """Registry view over a live :class:`StreamApp`.

    ``advance_all`` steps the application; ``value`` reads the current
    operator/OS metric -- the simulator needs no special casing.
    """

    def __init__(self, app: StreamApp) -> None:
        # State lives in the app; deliberately skip the base initializer.
        self._app = app

    def __len__(self) -> int:
        return sum(len(self._app.node_attributes(n)) for n in self._app.nodes())

    def __contains__(self, pair: NodeAttributePair) -> bool:
        return self._app.observes(pair.node, pair.attribute)

    def pairs(self):
        for node in self._app.nodes():
            for attr in self._app.node_attributes(node):
                yield NodeAttributePair(node, attr)

    def value(self, pair: NodeAttributePair) -> float:
        return self._app.metric_value(pair.node, pair.attribute)

    def advance_all(self) -> None:
        self._app.step()

    def ensure(self, pair: NodeAttributePair, factory=None) -> None:
        if not self._app.observes(pair.node, pair.attribute):
            raise KeyError(f"application does not expose {pair}")


def build_stream_cluster(
    app: StreamApp,
    capacity: float,
    central_capacity: Optional[float] = None,
) -> Cluster:
    """A monitoring cluster whose nodes expose the app's attributes."""
    nodes = [
        SimNode(
            node_id=node,
            capacity=capacity,
            attributes=frozenset(app.node_attributes(node)),
        )
        for node in app.nodes()
    ]
    return Cluster(
        nodes,
        central_capacity=central_capacity if central_capacity is not None else 8.0 * capacity,
    )
