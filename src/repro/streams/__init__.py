"""System S-like distributed stream-processing substrate.

The paper's real-system evaluation deploys REMO on IBM System S: a
dataflow of analytic operators placed across hosts, every host
exposing 30-50 monitorable attributes (operator-level rates and
queues, middleware and OS gauges).  This package provides a synthetic
equivalent: operator graphs with rate propagation and queueing, a
placement layer mapping operators to cluster nodes, a metric registry
bridging operator state into the monitoring simulator, and a
YieldMonitor-like chip-manufacturing-test analytics application with
the published deployment shape (~200 processes over 200 nodes).
"""

from repro.streams.operators import Operator, OperatorKind
from repro.streams.dataflow import DataflowGraph
from repro.streams.app import StreamApp, StreamMetricRegistry, build_stream_cluster
from repro.streams.yieldmonitor import make_yieldmonitor, yieldmonitor_tasks

__all__ = [
    "DataflowGraph",
    "Operator",
    "OperatorKind",
    "StreamApp",
    "StreamMetricRegistry",
    "build_stream_cluster",
    "make_yieldmonitor",
    "yieldmonitor_tasks",
]
