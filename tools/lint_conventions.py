#!/usr/bin/env python3
"""Repo-convention linter: AST checks ruff/mypy don't cover.

Rules (codes are stable, like the runtime verifier's REMO codes):

- ``C001`` -- no ``==`` / ``!=`` against float literals.  Plan costs
  are accumulated floats; exact comparison is how silent drift slips
  in.  Use ``math.isclose`` (or an explicit tolerance); comparisons
  against integer literals (``x == 0``) are fine.
- ``C002`` -- no mutable default arguments (list/dict/set/bytearray
  literals or constructors).
- ``C003`` -- cost arithmetic only through :class:`CostModel` methods:
  outside ``src/repro/core/cost.py``, the ``per_message`` /
  ``per_value`` attributes must not appear inside arithmetic
  expressions.  Hand-rolled ``C + a*x`` formulas are exactly how the
  cached-vs-recomputed drift the verifier hunts (REMO203) gets born.

Usage::

    python tools/lint_conventions.py src/ [more paths...]

Exits 1 if any finding is reported.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: The one module allowed to do raw per_message/per_value arithmetic.
COST_MODEL_ALLOWLIST = ("src/repro/core/cost.py",)

COST_ATTRS = {"per_message", "per_value"}

MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

Finding = Tuple[Path, int, int, str, str]


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CALLS and not node.args and not node.keywords
    return False


class ConventionVisitor(ast.NodeVisitor):
    def __init__(self, path: Path) -> None:
        self.path = path
        self.findings: List[Finding] = []
        self.allow_cost_arith = str(path.as_posix()).endswith(COST_MODEL_ALLOWLIST)

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            (self.path, node.lineno, node.col_offset + 1, code, message)
        )

    # -- C001 ----------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                self._report(
                    node,
                    "C001",
                    "exact ==/!= against a float literal; use math.isclose "
                    "or an explicit tolerance",
                )
                break
        self.generic_visit(node)

    # -- C002 ----------------------------------------------------------
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and _mutable_default(default):
                self._report(
                    default,
                    "C002",
                    f"mutable default argument in {node.name}(); default to "
                    "None and build inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- C003 ----------------------------------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if not self.allow_cost_arith:
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr in COST_ATTRS
                    and isinstance(sub.ctx, ast.Load)
                ):
                    self._report(
                        node,
                        "C003",
                        f"raw arithmetic over .{sub.attr}; use a CostModel "
                        "method (message_cost/value_cost/overhead_cost/"
                        "weighted_message_cost/values_within_budget)",
                    )
                    break
        self.generic_visit(node)


def lint_file(path: Path) -> List[Finding]:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, exc.offset or 0, "C000", f"syntax error: {exc.msg}")]
    visitor = ConventionVisitor(path)
    visitor.visit(tree)
    return visitor.findings


def iter_python_files(targets: List[str]) -> Iterator[Path]:
    for target in targets:
        path = Path(target)
        if not path.exists():
            raise FileNotFoundError(target)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def main(argv: List[str]) -> int:
    targets = argv or ["src/"]
    findings: List[Finding] = []
    checked = 0
    try:
        for path in iter_python_files(targets):
            checked += 1
            findings.extend(lint_file(path))
    except FileNotFoundError as exc:
        print(f"lint_conventions: ERROR (no such file or directory: {exc})")
        return 2
    for path, line, col, code, message in findings:
        print(f"{path}:{line}:{col}: {code} {message}")
    summary = f"{checked} file(s) checked, {len(findings)} finding(s)"
    if findings:
        print(f"lint_conventions: FAIL ({summary})")
        return 1
    print(f"lint_conventions: OK ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
