#!/usr/bin/env python3
"""DEPRECATED shim over :mod:`repro.staticcheck` (the C00x linter).

The convention rules moved into the package-level static analysis
framework under stable REMO codes::

    C000 (syntax error)          -> REMO400
    C001 (float ==/!=)           -> REMO401
    C002 (mutable default)       -> REMO402
    C003 (raw cost arithmetic)   -> REMO403

Prefer the framework CLI, which runs these plus the async-safety,
interleaving, and obs-consistency rule families::

    python -m repro lint src/ [more paths...]

This script remains for muscle memory and old CI configs: it delegates
to the framework's REMO40x rules, maps codes back to C00x, and keeps
the historical output format and exit codes (0 clean, 1 findings,
2 bad target).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

_REPO_ROOT = Path(__file__).resolve().parent.parent
try:  # pragma: no cover - depends on the caller's sys.path
    import repro.staticcheck  # noqa: F401
except ImportError:  # script invoked without src/ on sys.path
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.staticcheck.context import AnalysisContext, ModuleUnderAnalysis
from repro.staticcheck.registry import rules_for

#: Kept for backward compatibility; the framework owns the real list
#: (``repro.staticcheck.rules_cost.COST_MODEL_ALLOWLIST``).
COST_MODEL_ALLOWLIST = ("src/repro/core/cost.py",)

#: REMO -> legacy code mapping (append-only, like the codes themselves).
LEGACY_CODES = {
    "REMO400": "C000",
    "REMO401": "C001",
    "REMO402": "C002",
    "REMO403": "C003",
}

Finding = Tuple[Path, int, int, str, str]


def lint_file(path: Path) -> List[Finding]:
    """Run the migrated C00x rules over one file, in legacy tuple form."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, exc.offset or 0, "C000", f"syntax error: {exc.msg}")]
    module = ModuleUnderAnalysis(
        path=path, rel=path.as_posix(), tree=tree, source_lines=source.splitlines()
    )
    ctx = AnalysisContext()  # cost rules consult no project-wide tables
    findings: List[Finding] = []
    for a_rule in rules_for(sorted(code for code in LEGACY_CODES if code != "REMO400")):
        for diag in a_rule.check(module, ctx):
            findings.append(
                (path, diag.line, diag.col, LEGACY_CODES[diag.code], diag.message)
            )
    findings.sort(key=lambda f: (f[1], f[2], f[3]))
    return findings


def iter_python_files(targets: List[str]) -> Iterator[Path]:
    for target in targets:
        path = Path(target)
        if not path.exists():
            raise FileNotFoundError(target)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def main(argv: List[str]) -> int:
    print(
        "lint_conventions: deprecated; use 'python -m repro lint' "
        "(C00x rules now run as REMO40x)",
        file=sys.stderr,
    )
    targets = argv or ["src/"]
    findings: List[Finding] = []
    checked = 0
    try:
        for path in iter_python_files(targets):
            checked += 1
            findings.extend(lint_file(path))
    except FileNotFoundError as exc:
        print(f"lint_conventions: ERROR (no such file or directory: {exc})")
        return 2
    for path, line, col, code, message in findings:
        print(f"{path}:{line}:{col}: {code} {message}")
    summary = f"{checked} file(s) checked, {len(findings)} finding(s)"
    if findings:
        print(f"lint_conventions: FAIL ({summary})")
        return 1
    print(f"lint_conventions: OK ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
