#!/usr/bin/env python3
"""In-network aggregation and DISTINCT cardinality estimation.

Two monitoring tasks over the same cluster: a MAX watermark (classic
in-network aggregation -- every relay forwards a single partial
result) and a DISTINCT census whose result size is data-dependent.
The planner is run three ways:

1. oblivious (holistic cost estimates everywhere);
2. aggregation-aware with the paper's conservative DISTINCT upper
   bound (holistic);
3. aggregation-aware with a sampling-based DISTINCT estimate (the
   paper's stated future work, implemented via a k-minimum-values
   sketch in ``repro.ext.distinct``).

Run:  python examples/aggregation_monitoring.py
"""

import random

from repro import CostModel, MonitoringTask, RemoPlanner, make_uniform_cluster
from repro.core.cost import AggregationKind, AggregationSpec
from repro.ext.distinct import DistinctEstimator


def main() -> None:
    cluster = make_uniform_cluster(
        n_nodes=60,
        capacity=150.0,
        attrs_per_node=4,
        attribute_pool=["watermark", "tenant_id", "cpu", "queue"],
        central_capacity=450.0,
        seed=13,
    )
    cost = CostModel(per_message=15.0, per_value=1.0)
    tasks = [
        MonitoringTask("max-watermark", ["watermark"], range(60)),
        MonitoringTask("tenant-census", ["tenant_id"], range(60)),
        MonitoringTask("cpu-dashboard", ["cpu"], range(60)),
    ]

    # Sample the tenant_id stream: only ~8 distinct tenants exist, so
    # a DISTINCT relay forwards at most ~8 values -- far below the
    # holistic worst case of "one per node".
    estimator = DistinctEstimator(k=64)
    rng = random.Random(99)
    estimator.observe_many("tenant_id", [float(rng.randint(1, 8)) for _ in range(500)])
    print(f"estimated distinct tenants: {estimator.cardinality('tenant_id'):.1f}\n")

    base_agg = {
        "watermark": AggregationSpec(AggregationKind.MAX),
        "tenant_id": AggregationSpec(AggregationKind.DISTINCT),
    }
    variants = {
        "oblivious": None,
        "aware (DISTINCT=holistic)": base_agg,
        "aware (DISTINCT sampled)": estimator.refine(base_agg),
    }
    print(f"{'planner variant':<28} {'coverage':>9} {'trees':>6} {'traffic':>9}")
    for name, aggregation in variants.items():
        planner = RemoPlanner(cost, aggregation=aggregation)
        plan = planner.plan(tasks, cluster)
        print(
            f"{name:<28} {plan.coverage():>9.3f} {plan.tree_count():>6} "
            f"{plan.total_message_cost():>9.1f}"
        )

    print(
        "\nKnowing that MAX collapses to one value (and DISTINCT to ~8) "
        "lets the planner merge attributes into shared trees without "
        "fearing relay blow-up -- the Fig. 12a effect, sharpened by the "
        "sampling-based DISTINCT bound."
    )


if __name__ == "__main__":
    main()
