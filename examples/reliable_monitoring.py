#!/usr/bin/env python3
"""Reliable monitoring with SSDP replication under link failures.

Mission-critical tasks can ask REMO for same-source/different-paths
(SSDP) delivery: every attribute is duplicated under an alias, and the
planner is constrained to route alias and original through *different*
monitoring trees.  This example plans a replicated workload, then
injects link outages into the simulator and shows that the collector
keeps receiving values through the surviving path.

Run:  python examples/reliable_monitoring.py
"""

from repro import CostModel, MonitoringTask, RemoPlanner, make_uniform_cluster
from repro.cluster.metrics import MetricRegistry
from repro.ext.reliability import (
    ReplicatedRegistry,
    alias_cluster,
    replica_plan_coverage,
    rewrite_ssdp,
)
from repro.simulation import (
    FailureInjector,
    LinkOutage,
    MonitoringSimulation,
    SimulationConfig,
)


def main() -> None:
    cluster = make_uniform_cluster(
        n_nodes=24, capacity=300.0, attrs_per_node=8, central_capacity=900.0, seed=3
    )
    cost = CostModel(per_message=15.0, per_value=1.0)
    pool = sorted({a for node in cluster for a in node.attributes})
    tasks = [
        MonitoringTask("critical-latency", pool[:2], range(24)),
        MonitoringTask("critical-queue", pool[2:4], range(24)),
    ]

    # Rewrite with replication factor 2: aliased copies forced into
    # disjoint trees via the forbidden-pair constraint.
    rewrite = rewrite_ssdp(tasks, factor=2)
    repl_cluster = alias_cluster(cluster, rewrite)
    planner = RemoPlanner(cost, forbidden_pairs=rewrite.forbidden_pairs)
    plan = planner.plan(rewrite.tasks, repl_cluster)
    print(
        f"replicated plan: {plan.tree_count()} trees, raw coverage "
        f"{plan.coverage():.3f}, base-pair coverage "
        f"{replica_plan_coverage(plan, rewrite):.3f}"
    )

    # Sever every edge of the tree carrying one base attribute for the
    # whole run; its alias travels through a different tree.
    victim_attr = sorted(rewrite.alias_groups)[0]
    victim_set = next(s for s in plan.partition.sets if victim_attr in s)
    victim_tree = plan.trees[victim_set].tree
    outages = [LinkOutage(node, victim_set, 0.0, 1e9) for node in victim_tree.nodes]
    print(
        f"severing all {len(outages)} links of the tree delivering "
        f"{sorted(victim_set)}"
    )

    base_pairs = [p for p in plan.pairs if p.attribute in rewrite.alias_groups]
    registry = ReplicatedRegistry(
        MetricRegistry(base_pairs, seed=1), rewrite.alias_to_base
    )
    for label, injector in [
        ("no failures", FailureInjector()),
        ("path severed", FailureInjector(link_outages=outages)),
    ]:
        stats = MonitoringSimulation(
            plan,
            repl_cluster,
            registry=registry,
            config=SimulationConfig(seed=2),
            failures=injector,
        ).run(15)
        print(
            f"  {label:<13} fresh={stats.mean_fresh_coverage:.3f} "
            f"dropped(failure)={stats.messages_dropped_failure}"
        )
    print(
        "\nWith SSDP, the aliased copies keep flowing through the "
        "second tree: the collector still sees every attribute value "
        "despite the dead path."
    )


if __name__ == "__main__":
    main()
