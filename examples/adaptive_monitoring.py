#!/usr/bin/env python3
"""Runtime topology adaptation under task churn.

Monitoring tasks in real deployments change constantly: debugging
sessions swap attributes in and out, ad hoc usage checks come and go.
This example runs the :class:`AdaptiveMonitoringService` over a stream
of task-update batches (the paper's protocol: each batch touches 5% of
the nodes and replaces half the attributes monitored there) and
compares the four adaptation strategies of Section 4.

Run:  python examples/adaptive_monitoring.py
"""

import time

from repro import AdaptationStrategy, AdaptiveMonitoringService, CostModel
from repro.cluster.topology import make_uniform_cluster, default_attribute_pool
from repro.workloads.tasks import TaskSampler
from repro.workloads.updates import TaskUpdateStream


def main() -> None:
    cluster = make_uniform_cluster(
        n_nodes=60,
        capacity=500.0,
        attrs_per_node=16,
        attribute_pool=default_attribute_pool(32),
        central_capacity=1500.0,
        seed=5,
    )
    cost = CostModel(per_message=20.0, per_value=1.0)
    tasks = TaskSampler(cluster, seed=6).sample_many(20, (2, 5), (15, 40), prefix="job-")

    print("Applying 6 update batches under each adaptation strategy...\n")
    header = f"{'strategy':<13} {'plan CPU s':>11} {'adapt msgs':>11} {'coverage':>9} {'ops':>4}"
    print(header)
    print("-" * len(header))
    for strategy in AdaptationStrategy:
        svc = AdaptiveMonitoringService(cluster, cost, strategy=strategy)
        svc.initialize(tasks, now=0.0)
        stream = TaskUpdateStream(cluster, tasks, seed=7)
        cpu = 0.0
        adapt_msgs = 0
        applied = 0
        for step in range(6):
            batch = stream.next_batch()
            started = time.perf_counter()
            report = svc.apply_changes(batch, now=float(step + 1))
            cpu += time.perf_counter() - started
            adapt_msgs += report.adaptation_messages
            applied += len(report.applied_ops)
        print(
            f"{strategy.value:<13} {cpu:>11.3f} {adapt_msgs:>11} "
            f"{svc.plan.coverage():>9.3f} {applied:>4}"
        )

    print(
        "\nDIRECT_APPLY is cheapest but never optimizes; REBUILD pays "
        "full planning and reconfiguration on every batch; ADAPTIVE "
        "optimizes only when the benefit outweighs the reconfiguration "
        "cost (Section 4.2's cost-benefit throttling)."
    )


if __name__ == "__main__":
    main()
