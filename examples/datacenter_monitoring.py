#!/usr/bin/env python3
"""Datacenter application-provisioning monitoring.

The scenario from the paper's introduction: application provisioning
requires continuously collecting performance attributes (CPU, memory,
packet-size distributions, ...) from application-hosting servers.
This example builds a heterogeneous 120-node cluster, a mixed workload
of dashboard / capacity / diagnosis tasks, plans it with REMO, and then
*runs* the plan in the discrete-event simulator to measure what a user
would see: freshness, percentage error, and traffic.

Run:  python examples/datacenter_monitoring.py
"""

from repro import CostModel, MonitoringTask, RemoPlanner, SingletonSetPlanner
from repro.cluster.topology import make_heterogeneous_cluster
from repro.simulation import MonitoringSimulation, SimulationConfig

OS_ATTRS = [
    "cpu",
    "mem",
    "net_in",
    "net_out",
    "disk_io",
    "pkt_small",
    "pkt_medium",
    "pkt_large",
    "ctx_switches",
    "load1",
]


def main() -> None:
    # Heterogeneous capacities: co-located application load leaves
    # different monitoring headroom on different hosts.
    cluster = make_heterogeneous_cluster(
        n_nodes=120,
        capacity_low=200.0,
        capacity_high=500.0,
        attrs_per_node=len(OS_ATTRS),
        attribute_pool=OS_ATTRS,
        central_capacity=1200.0,
        seed=11,
    )
    cost = CostModel(per_message=25.0, per_value=1.0)

    tasks = [
        # Fleet-wide dashboard at the highest frequency.
        MonitoringTask("fleet-cpu-mem", ["cpu", "mem"], range(120)),
        # Capacity planning: packet size distributions on the web tier.
        MonitoringTask(
            "pkt-distribution",
            ["pkt_small", "pkt_medium", "pkt_large"],
            range(0, 60),
        ),
        # Diagnosis of a perceived bottleneck on one rack.
        MonitoringTask(
            "rack7-deep-dive",
            ["cpu", "load1", "ctx_switches", "disk_io", "net_in", "net_out"],
            range(84, 96),
        ),
        # Batch tier I/O watch, half frequency.
        MonitoringTask(
            "batch-io", ["disk_io", "net_in", "net_out"], range(60, 120), frequency=0.5
        ),
    ]

    for name, planner in [
        ("REMO", RemoPlanner(cost)),
        ("SINGLETON-SET", SingletonSetPlanner(cost)),
    ]:
        plan = planner.plan(tasks, cluster)
        sim = MonitoringSimulation(
            plan, cluster, config=SimulationConfig(seed=3, hop_latency=0.02)
        )
        stats = sim.run(25)
        print(
            f"{name:<15} coverage={plan.coverage():.3f} trees={plan.tree_count():3d} "
            f"error={stats.mean_percentage_error:.4f} "
            f"fresh={stats.mean_fresh_coverage:.3f} "
            f"msgs/period={stats.messages_sent // 25}"
        )

    plan = RemoPlanner(cost).plan(tasks, cluster)
    print("\nper-node budget utilisation under REMO (top 5):")
    usage = plan.node_usage()
    for node_id, used in sorted(usage.items(), key=lambda kv: -kv[1])[:5]:
        budget = cluster.capacity(node_id)
        print(f"  node {node_id:3d}: {used:7.1f} / {budget:7.1f} ({100*used/budget:5.1f}%)")


if __name__ == "__main__":
    main()
