#!/usr/bin/env python3
"""Live monitoring: execute a plan on the asyncio runtime.

Plans the quickstart workload with REMO, then actually runs it --
one concurrent agent per node batching values up its collection tree
under the ``C + a*x`` budget, a collector scoring coverage and error
each period.  Halfway through, one tree's relay node is crashed to show
failure detection (missed heartbeats) and recovery.

Run:  python examples/live_monitoring.py
"""

from repro import RemoPlanner, check_plan_for_cluster
from repro.runtime import AgentOutage, MonitoringRuntime, RuntimeConfig
from repro.workloads.presets import quickstart_workload


def main() -> None:
    cluster, cost, tasks = quickstart_workload()
    plan = RemoPlanner(cost).plan(tasks, cluster)
    print(
        f"planned {plan.tree_count()} trees covering "
        f"{plan.coverage():.1%} of requested pairs"
    )

    # Same pre-launch gate as ``python -m repro run``: never start
    # agents for a plan the static verifier rejects.
    report = check_plan_for_cluster(plan, cluster)
    if report.has_errors:
        print(report.format(with_hints=True))
        raise SystemExit(1)

    # Pick a relay (interior) node from the first tree and schedule a
    # crash for periods [6, 12): its whole subtree goes dark, the
    # collector flags it after two missed heartbeats, and freshness
    # recovers once it comes back.
    victim = None
    for result in plan.trees.values():
        tree = result.tree
        for node in tree.nodes:
            if tree.parent(node) is not None and tree.children(node):
                victim = node
                break
        if victim is not None:
            break
    outages = [AgentOutage(node=victim, start=6, end=12)] if victim is not None else []
    if victim is not None:
        print(f"scheduling a crash of relay node {victim} for periods [6, 12)")

    config = RuntimeConfig(
        period_seconds=0.05,
        failure_timeout=2,
        outages=outages,
    )
    runtime = MonitoringRuntime(plan, cluster, config=config)
    result = runtime.run(18)

    print()
    print(result.render("live quickstart run"))
    print()
    print("period-by-period freshness (watch the dip during the outage):")
    for sample in result.samples:
        bar = "#" * round(sample.fresh_fraction * 40)
        print(f"  period {sample.period:>2}  {sample.fresh_fraction:6.1%}  {bar}")
    if result.failure_events:
        print()
        print("collector failure detections:")
        for event in result.failure_events:
            print(f"  period {event.period:>2}: node {event.node} {event.kind}")


if __name__ == "__main__":
    main()
