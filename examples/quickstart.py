#!/usr/bin/env python3
"""Quickstart: plan a monitoring overlay and inspect it.

Builds a 64-node cluster, registers a handful of application state
monitoring tasks, plans the forest of collection trees with REMO, and
compares the result against the two classic baselines (one tree per
attribute / one tree for everything).

Run:  python examples/quickstart.py
"""

from repro import (
    CostModel,
    MonitoringTask,
    OneSetPlanner,
    RemoPlanner,
    SingletonSetPlanner,
    make_uniform_cluster,
)

def main() -> None:
    # A cluster of 64 nodes; each can spend 300 cost units per period
    # on monitoring I/O and observes 12 of 24 attribute types.  The
    # central collector is finite too -- that is the whole game.
    cluster = make_uniform_cluster(
        n_nodes=64,
        capacity=300.0,
        attrs_per_node=12,
        central_capacity=900.0,
        seed=7,
    )

    # Messages cost C + a*x: a fixed 20-unit per-message overhead plus
    # 1 unit per attribute value carried (Section 2.3 of the paper).
    cost = CostModel(per_message=20.0, per_value=1.0)

    # Three overlapping monitoring tasks (note the de-duplication:
    # cpu-ish attributes over overlapping node sets are collected once).
    pool = sorted({a for node in cluster for a in node.attributes})
    tasks = [
        MonitoringTask("dashboard", pool[:3], range(0, 64)),
        MonitoringTask("debug-tier1", pool[:6], range(0, 24)),
        MonitoringTask("capacity-planning", pool[3:10], range(16, 56)),
    ]

    print("Planning with REMO and both baselines...\n")
    planners = {
        "REMO": RemoPlanner(cost),
        "SINGLETON-SET": SingletonSetPlanner(cost),
        "ONE-SET": OneSetPlanner(cost),
    }
    print(f"{'scheme':<15} {'coverage':>9} {'trees':>6} {'traffic/period':>15}")
    for name, planner in planners.items():
        plan = planner.plan(tasks, cluster)
        print(
            f"{name:<15} {plan.coverage():>9.3f} {plan.tree_count():>6} "
            f"{plan.total_message_cost():>15.1f}"
        )

    plan = RemoPlanner(cost).plan(tasks, cluster)
    print("\nREMO's attribute partition (one collection tree per set):")
    for attr_set, result in sorted(plan.trees.items(), key=lambda kv: sorted(kv[0])):
        tree = result.tree
        print(
            f"  {sorted(attr_set)} -> {len(tree)} nodes, height {tree.height()}, "
            f"root {tree.root}, {tree.pair_count()} pairs"
        )

    # Plans are verifiable: this raises if any capacity constraint or
    # bookkeeping invariant is violated.
    plan.validate(
        {node.node_id: node.capacity for node in cluster},
        cluster.central_capacity,
    )
    print("\nplan validated: no node exceeds its capacity budget")


if __name__ == "__main__":
    main()
