#!/usr/bin/env python3
"""Quickstart: plan a monitoring overlay and inspect it.

Builds a 64-node cluster, registers a handful of application state
monitoring tasks, plans the forest of collection trees with REMO, and
compares the result against the two classic baselines (one tree per
attribute / one tree for everything).

Run:  python examples/quickstart.py
"""

from repro import (
    OneSetPlanner,
    RemoPlanner,
    SingletonSetPlanner,
    check_plan_for_cluster,
)
from repro.workloads.presets import quickstart_workload

def main() -> None:
    # A cluster of 64 nodes; each can spend 300 cost units per period
    # on monitoring I/O and observes 12 of 24 attribute types.  The
    # central collector is finite too -- that is the whole game.
    # Messages cost C + a*x: a fixed 20-unit per-message overhead plus
    # 1 unit per attribute value carried (Section 2.3 of the paper).
    # The same workload backs ``python -m repro check --preset quickstart``.
    cluster, cost, tasks = quickstart_workload()

    print("Planning with REMO and both baselines...\n")
    planners = {
        "REMO": RemoPlanner(cost),
        "SINGLETON-SET": SingletonSetPlanner(cost),
        "ONE-SET": OneSetPlanner(cost),
    }
    print(f"{'scheme':<15} {'coverage':>9} {'trees':>6} {'traffic/period':>15}")
    for name, planner in planners.items():
        plan = planner.plan(tasks, cluster)
        print(
            f"{name:<15} {plan.coverage():>9.3f} {plan.tree_count():>6} "
            f"{plan.total_message_cost():>15.1f}"
        )

    plan = RemoPlanner(cost).plan(tasks, cluster)
    print("\nREMO's attribute partition (one collection tree per set):")
    for attr_set, result in sorted(plan.trees.items(), key=lambda kv: sorted(kv[0])):
        tree = result.tree
        print(
            f"  {sorted(attr_set)} -> {len(tree)} nodes, height {tree.height()}, "
            f"root {tree.root}, {tree.pair_count()} pairs"
        )

    # Plans are verifiable: the static verifier recomputes every cost
    # from scratch and reports REMOxxx diagnostics on any violation
    # (same engine as ``python -m repro check``).
    report = check_plan_for_cluster(plan, cluster)
    if report:
        print("\n" + report.format(with_hints=True))
        raise SystemExit(1)
    print("\nplan verified: all structural and capacity invariants hold")


if __name__ == "__main__":
    main()
