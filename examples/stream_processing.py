#!/usr/bin/env python3
"""Monitoring a System S-style stream processing application.

Recreates the paper's real-system experiment in miniature: a
YieldMonitor-like chip-manufacturing-test analytics dataflow is placed
across a cluster, synthetic monitoring tasks (dashboards, diagnosis,
provisioning) are planned by REMO, and the discrete-event simulator
measures the average percentage error of the collected attribute
values against the live application state -- the Fig. 8 metric.

Run:  python examples/stream_processing.py
"""

from repro import CostModel, OneSetPlanner, RemoPlanner, SingletonSetPlanner
from repro.simulation import MonitoringSimulation, SimulationConfig
from repro.streams import (
    StreamMetricRegistry,
    build_stream_cluster,
    make_yieldmonitor,
    yieldmonitor_tasks,
)


def main() -> None:
    # ~200 analytic processes over 60 nodes; every node exposes
    # operator rates/queues plus OS gauges (30-50 attributes each in
    # the full-size configuration).
    app = make_yieldmonitor(n_nodes=60, n_lines=25, seed=42)
    counts = [len(app.node_attributes(n)) for n in app.nodes()]
    print(
        f"application: {len(app.graph)} operators on {len(app.nodes())} nodes, "
        f"{min(counts)}-{max(counts)} attributes per node"
    )

    cluster = build_stream_cluster(app, capacity=420.0, central_capacity=1400.0)
    tasks = yieldmonitor_tasks(app, count=40, seed=43)
    cost = CostModel(per_message=20.0, per_value=1.0)

    print(f"workload: {len(tasks)} monitoring tasks\n")
    print(f"{'scheme':<15} {'coverage':>9} {'trees':>6} {'%error':>8} {'fresh':>7}")
    for name, planner in [
        ("REMO", RemoPlanner(cost)),
        ("SINGLETON-SET", SingletonSetPlanner(cost)),
        ("ONE-SET", OneSetPlanner(cost)),
    ]:
        plan = planner.plan(tasks, cluster)
        stats = MonitoringSimulation(
            plan,
            cluster,
            registry=StreamMetricRegistry(app),
            config=SimulationConfig(seed=9),
        ).run(20)
        print(
            f"{name:<15} {plan.coverage():>9.3f} {plan.tree_count():>6} "
            f"{stats.mean_percentage_error:>8.4f} {stats.mean_fresh_coverage:>7.3f}"
        )

    print(
        "\nExpected shape (paper, Fig. 8): REMO's percentage error is "
        "30-50% below the baselines'."
    )


if __name__ == "__main__":
    main()
