"""Property test: planner output is diagnostic-free on random workloads.

This is the tentpole guarantee the verifier exists to defend -- every
plan the search produces, on any observable workload, satisfies every
structural and capacity invariant.  Hypothesis drives random clusters
and task mixes through the planner and the full checker stack.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checks import check_plan_for_cluster
from repro.cluster.node import Cluster, SimNode
from repro.cluster.topology import default_attribute_pool
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.core.tasks import MonitoringTask


@st.composite
def workloads(draw):
    """A random (cluster, cost, tasks) triple with observable pairs."""
    n_nodes = draw(st.integers(min_value=4, max_value=24))
    pool = default_attribute_pool(draw(st.integers(min_value=2, max_value=8)))
    rnd = draw(st.randoms(use_true_random=False))
    nodes = []
    for node_id in range(n_nodes):
        k = rnd.randint(1, len(pool))
        attrs = frozenset(rnd.sample(pool, k))
        capacity = draw(st.floats(min_value=30.0, max_value=300.0))
        nodes.append(SimNode(node_id=node_id, capacity=capacity, attributes=attrs))
    central = draw(st.floats(min_value=60.0, max_value=2000.0))
    cluster = Cluster(nodes, central_capacity=central)

    per_message = draw(st.floats(min_value=0.5, max_value=25.0))
    per_value = draw(st.floats(min_value=0.1, max_value=4.0))
    cost = CostModel(per_message=per_message, per_value=per_value)

    n_tasks = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    for t in range(n_tasks):
        attrs = tuple(rnd.sample(pool, rnd.randint(1, len(pool))))
        lo = rnd.randint(0, n_nodes - 1)
        hi = rnd.randint(lo + 1, n_nodes)
        tasks.append(MonitoringTask(f"t{t}", attrs, range(lo, hi)))
    return cluster, cost, tasks


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(workloads())
def test_planner_output_has_no_diagnostics(workload):
    cluster, cost, tasks = workload
    planner = RemoPlanner(cost, candidate_budget=4, max_iterations=8)
    try:
        plan = planner.plan(tasks, cluster)
    except ValueError:
        # Task node-sets that miss every observing node yield an empty
        # observable workload; nothing to verify.
        return
    report = check_plan_for_cluster(plan, cluster)
    assert not report.has_errors, report.format(with_hints=True)
