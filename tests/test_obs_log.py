"""Tests for structured logging and the flight recorder (`repro.obs.log`)."""

import io
import json

import pytest

from repro.obs import log, names, trace


@pytest.fixture(autouse=True)
def clean_ring():
    log.clear()
    yield
    log.clear()
    log.uninstall_sink()
    log.set_console(None)


class TestEmit:
    def test_event_shape(self):
        event = log.emit(
            names.LOG_SERVE_READY, lane=names.LANE_SERVE, port=8080, host="x"
        )
        assert event["event"] == names.LOG_SERVE_READY
        assert event["lane"] == names.LANE_SERVE
        assert event["severity"] == "info"
        assert event["fields"] == {"port": 8080, "host": "x"}
        assert isinstance(event["pid"], int)
        assert "trace_id" not in event  # no ambient trace context

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            log.emit(names.LOG_SERVE_READY, severity="fatal")

    def test_trace_correlation(self):
        ctx = trace.new_root_context()
        with trace.attach(ctx):
            event = log.emit(names.LOG_SERVE_READY)
        assert event["trace_id"] == ctx.trace_id
        assert event["span_id"] == ctx.span_id

    def test_ring_is_bounded(self):
        for i in range(log.DEFAULT_RING_EVENTS + 50):
            log.emit(names.LOG_SERVE_READY, i=i)
        events = log.recent()
        assert len(events) == log.DEFAULT_RING_EVENTS
        # Oldest entries were evicted; the tail survives.
        assert events[-1]["fields"] == {"i": log.DEFAULT_RING_EVENTS + 49}

    def test_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with log.sink(str(path)):
            log.emit(names.LOG_SERVE_READY, port=1)
            log.emit(names.LOG_SERVE_STOPPED)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in lines] == [
            names.LOG_SERVE_READY,
            names.LOG_SERVE_STOPPED,
        ]

    def test_console_echo(self):
        stream = io.StringIO()
        log.set_console(stream)
        log.emit(names.LOG_SERVE_READY, severity="warning", port=9)
        assert stream.getvalue() == f"[warning] {names.LOG_SERVE_READY} port=9\n"


class TestFlightRecorder:
    def test_record_includes_ring_and_span_tail(self):
        with trace.installed():
            with trace.span(names.SPAN_RUNTIME_PERIOD, lane=names.LANE_ENGINE):
                pass
            log.emit(names.LOG_DEPLOY_WORKER_START, role="worker-0")
            record = log.flight_record("test crash")
        assert record["flight_record"] == 1
        assert record["reason"] == "test crash"
        assert [e["event"] for e in record["events"]] == [
            names.LOG_DEPLOY_WORKER_START
        ]
        assert [s["name"] for s in record["spans"]] == [names.SPAN_RUNTIME_PERIOD]

    def test_span_tail_is_bounded(self):
        with trace.installed() as tracer:
            for _ in range(10):
                with trace.span(names.SPAN_RUNTIME_PERIOD):
                    pass
            record = log.flight_record("x", max_spans=3)
            assert len(tracer.spans()) == 10
        assert len(record["spans"]) == 3

    def test_dump_writes_artifact_and_logs_itself(self, tmp_path):
        path = tmp_path / "flight.json"
        log.emit(names.LOG_DEPLOY_WORKER_CRASH, severity="error", role="w")
        assert log.dump_flight(str(path), reason="boom") == str(path)
        record = json.loads(path.read_text())
        events = [e["event"] for e in record["events"]]
        assert events == [names.LOG_DEPLOY_WORKER_CRASH, names.LOG_FLIGHT_DUMP]
        assert record["reason"] == "boom"
