"""End-to-end tests for the control-plane service (`repro serve`).

A real :class:`ControlPlaneServer` runs on an ephemeral port in a
background thread; every interaction goes over HTTP through the
synchronous :class:`ControlPlaneClient`, exactly as an operator's
script would.
"""

import asyncio
import http.client
import importlib
import json
import re
import sys
import threading
from pathlib import Path

import pytest

from repro.core.attributes import NodeAttributePair
from repro.obs import names, trace
from repro.obs.export import check_prometheus_text, parse_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.runtime import RuntimeConfig
from repro.serve import (
    ControlPlane,
    ControlPlaneClient,
    ControlPlaneClientError,
    ControlPlaneServer,
)
from repro.workloads.presets import quickstart_workload

FAST = RuntimeConfig(period_seconds=0.02, seed=3)


class ServerThread:
    """A control-plane server on its own event loop, in a thread."""

    def __init__(self, controlplane):
        self._controlplane = controlplane
        self._server = None
        self._loop = None
        self._stop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = ControlPlaneServer(self._controlplane, port=0)
        await self._server.start()
        self._ready.set()
        await self._stop.wait()
        await self._server.stop()

    def start(self):
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("control-plane server failed to start")
        return self._server.port

    def stop(self):
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)


@pytest.fixture()
def controlplane():
    cluster, cost, _tasks = quickstart_workload()
    return ControlPlane(
        cluster, cost, collectors=2, config=FAST, metrics=MetricsRegistry()
    )


@pytest.fixture()
def client(controlplane):
    server = ServerThread(controlplane)
    port = server.start()
    with ControlPlaneClient("127.0.0.1", port) as cli:
        yield cli
    server.stop()


@pytest.fixture()
def server_port(controlplane):
    server = ServerThread(controlplane)
    port = server.start()
    yield port
    server.stop()


class TestTraceparent:
    """Every response carries a W3C traceparent; inbound ones are adopted."""

    PATTERN = re.compile(r"^00-([0-9a-f]{32})-[0-9a-f]{16}-01$")
    INBOUND = "00-" + "ab" * 16 + "-00000000000000ff-01"

    def _get(self, port, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("GET", "/health", headers=headers or {})
            response = conn.getresponse()
            response.read()
            return response.getheader("traceparent")
        finally:
            conn.close()

    def test_response_mints_traceparent(self, server_port):
        header = self._get(server_port)
        match = self.PATTERN.match(header or "")
        assert match, f"malformed traceparent {header!r}"
        assert match.group(1) != "0" * 32

    def test_inbound_traceparent_adopted(self, server_port):
        header = self._get(server_port, headers={"traceparent": self.INBOUND})
        match = self.PATTERN.match(header or "")
        assert match
        assert match.group(1) == "ab" * 16  # same trace, the server's span

    def test_request_span_joins_inbound_trace(self, server_port):
        with trace.installed() as tracer:
            self._get(server_port, headers={"traceparent": self.INBOUND})
            spans = [
                s for s in tracer.spans() if s.name == names.SPAN_SERVE_REQUEST
            ]
        assert spans, "no serve.request span recorded"
        (span,) = spans
        assert span.trace_id == "ab" * 16
        assert span.attrs["path"] == "/health"
        assert span.attrs["status"] == 200


class TestTwoTenantEndToEnd:
    """The acceptance scenario: two tenants, overlapping tasks, two
    collector shards, online adaptation, reconciled metrics."""

    def test_full_lifecycle(self, controlplane, client):
        assert client.health()["ok"] is True
        # Overlapping submissions: both tenants want attr00/attr01 on
        # nodes 0-5; beta additionally wants attr02.
        client.submit_task("acme", "cpu", ["attr00", "attr01"], [0, 1, 2, 3, 4, 5])
        client.submit_task("beta", "cpu", ["attr00", "attr01"], [0, 1, 2, 3, 4, 5])
        client.submit_task("beta", "mem", ["attr02"], [0, 1, 2, 3])

        # Per-tenant dedup: the planner-side pair set is the union, so
        # the overlapping pairs are counted once with multiplicity 2.
        status = client.status()
        assert status["tenants"] == ["acme", "beta"]
        assert status["tasks"] == 3
        assert status["pairs"] == 6 * 2 + 4  # union, not 6*2 + 6*2 + 4
        assert status["pending_ops"] == 3
        overlap = NodeAttributePair(0, "attr00")
        assert controlplane.tenants.tenant_multiplicity(overlap) == 2

        # First adaptation builds the plan and shards the collectors.
        record = client.adapt()
        assert record["coverage"] == pytest.approx(1.0)
        assert record["shards"]["shards"] == 2
        plan = client.plan()
        assert plan["coverage"] == pytest.approx(1.0)
        assert plan["shards"]["shards"] == 2

        report = client.run(4)
        assert report["coverage"]["final"] == pytest.approx(1.0)
        assert report["collectors"] == 2
        assert report["periods"] == 4
        assert len(report["per_period"]) == 4

        # Online adaptation: beta retires a task, acme grows one; the
        # shared pairs survive because acme still needs them.
        client.delete_task("beta", "cpu")
        client.submit_task("acme", "disk", ["attr03"], [0, 1])
        record2 = client.adapt()
        assert record2["sequence"] == 1
        assert record2["ops"] == 2
        assert controlplane.tenants.tenant_multiplicity(overlap) == 1
        report2 = client.run(4)
        assert report2["coverage"]["final"] == pytest.approx(1.0)
        assert report2["run"] == 1

        # /metrics reconciles with the run reports: both are views of
        # the same registry, so the scrape equals the latest report's
        # cumulative counter (run 2's snapshot includes run 1).
        prom = client.metrics_text()
        assert check_prometheus_text(prom) == []
        samples = parse_prometheus_text(prom)
        sent = sum(
            value
            for series, value in samples.items()
            if series == "messages_sent" or series.startswith("messages_sent{")
        )
        assert sent == report2["messages"]["sent"]
        assert sent > report["messages"]["sent"] > 0
        runs = sum(
            value
            for series, value in samples.items()
            if series.startswith("controlplane_runs_total")
        )
        assert runs == 2.0
        adapts = sum(
            value
            for series, value in samples.items()
            if series.startswith("controlplane_adaptations_total")
        )
        assert adapts == 2.0

        # The report archive and its NDJSON stream agree.
        archived = client.reports()
        assert [r["run"] for r in archived] == [0, 1]
        streamed = client.reports_stream()
        assert streamed == sorted(
            (json.loads(json.dumps(r, sort_keys=True)) for r in archived),
            key=lambda r: r["run"],
        )


class TestErrorMapping:
    def test_duplicate_task_is_409(self, client):
        client.submit_task("acme", "cpu", ["attr00"], [0, 1])
        with pytest.raises(ControlPlaneClientError) as err:
            client.submit_task("acme", "cpu", ["attr00"], [0, 1])
        assert err.value.status == 409

    def test_unknown_task_is_404(self, client):
        with pytest.raises(ControlPlaneClientError) as err:
            client.get_task("ghost", "nothing")
        assert err.value.status == 404
        with pytest.raises(ControlPlaneClientError) as err:
            client.delete_task("ghost", "nothing")
        assert err.value.status == 404

    def test_bad_task_id_is_400(self, client):
        # A separator in the tenant segment never reaches the handler
        # (the router 404s the malformed path); a separator in the
        # JSON-carried task id is the namespace-integrity 400.
        with pytest.raises(ControlPlaneClientError) as err:
            client.submit_task("acme", "bad/task", ["attr00"], [0])
        assert err.value.status == 400

    def test_adapt_without_changes_is_409(self, client):
        with pytest.raises(ControlPlaneClientError) as err:
            client.adapt()
        assert err.value.status == 409

    def test_run_without_plan_is_409(self, client):
        with pytest.raises(ControlPlaneClientError) as err:
            client.run(2)
        assert err.value.status == 409

    def test_bad_periods_is_400(self, client):
        client.submit_task("acme", "cpu", ["attr00"], [0, 1])
        client.adapt()
        with pytest.raises(ControlPlaneClientError) as err:
            client.run(0)
        assert err.value.status == 400


class TestBenchSmoke:
    def test_churn_bench_emits_results(self, tmp_path, monkeypatch):
        bench_dir = str(Path(__file__).resolve().parent.parent / "benchmarks")
        monkeypatch.syspath_prepend(bench_dir)
        monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
        bench = importlib.import_module("bench_controlplane_churn")
        rc = bench.main(["--ops", "12", "--tenants", "2", "--collectors", "2"])
        assert rc == 0
        payload = json.loads((tmp_path / "BENCH_controlplane.json").read_text())
        assert payload["bench"] == "controlplane_churn"
        assert payload["collectors"] == 2
        ops = {row["op"] for row in payload["rows"]}
        assert {"submit", "delete"} <= ops
        for row in payload["rows"]:
            assert row["ops_per_sec"] > 0
            assert row["p99_ms"] >= row["p50_ms"] >= 0
        # Leave no stale module behind for other tests.
        sys.modules.pop("bench_controlplane_churn", None)
