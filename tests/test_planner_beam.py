"""Bounded-beam search knobs: default-off bit-identity and envelopes.

``beam_width`` truncates the ranked candidate list each improvement
iteration; ``early_termination`` stops the guided search once an
iteration's relative gain falls under a threshold.  Both default to
off, and the defaults must reproduce the unbounded planner's plans bit
for bit (the seed-identity contract).  Bounded runs may legitimately
search less, but their plans must still satisfy every capacity
invariant and land inside the documented objective envelope (see
DESIGN.md): coverage >= 95% of the default plan's, total message cost
<= 110% of it.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.cluster.topology import default_attribute_pool, make_uniform_cluster
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.workloads.tasks import TaskSampler

COST = CostModel(per_message=20.0, per_value=1.0)


def _bench_workload(n: int, seed: int = 1):
    """The CLI-default regime the scaling bench uses (tasks = nodes)."""
    cluster = make_uniform_cluster(
        n_nodes=n,
        capacity=400.0,
        attrs_per_node=16,
        attribute_pool=default_attribute_pool(32),
        central_capacity=1200.0,
        seed=seed,
    )
    tasks = TaskSampler(cluster, seed=seed + 1).sample_many(
        n, (2, 5), (max(5, n // 6), max(6, n // 2))
    )
    return cluster, tasks


class TestKnobValidation:
    def test_beam_width_must_be_positive(self):
        with pytest.raises(ValueError):
            RemoPlanner(COST, beam_width=0)
        with pytest.raises(ValueError):
            RemoPlanner(COST, beam_width=-2)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_early_termination_must_be_a_fraction(self, bad):
        with pytest.raises(ValueError):
            RemoPlanner(COST, early_termination=bad)


class TestDefaultBitIdentity:
    def test_none_equals_wide_beam(self):
        """A beam wider than any candidate list truncates nothing, so
        it must reproduce the default (beam_width=None) plan exactly."""
        cluster, tasks = _bench_workload(40)
        unbounded, _ = RemoPlanner(COST).plan_with_stats(tasks, cluster)
        wide, _ = RemoPlanner(COST, beam_width=10_000).plan_with_stats(tasks, cluster)
        assert unbounded.fingerprint() == wide.fingerprint()

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_defaults_are_seed_stable(self, seed):
        """Planning the same seed workload twice with two separately
        constructed default planners must agree bit for bit."""
        cluster, tasks = _bench_workload(30, seed=seed)
        a, _ = RemoPlanner(COST).plan_with_stats(tasks, cluster)
        b, _ = RemoPlanner(COST).plan_with_stats(tasks, cluster)
        assert a.fingerprint() == b.fingerprint()


class TestBoundedBeamEnvelope:
    def test_bounded_beam_invariants_and_envelope_at_200(self):
        """At the bench's 200-node regime a narrow beam must still emit
        a capacity-feasible plan inside the documented envelope."""
        cluster, tasks = _bench_workload(200)
        caps = {n.node_id: n.capacity for n in cluster}
        default_plan, _ = RemoPlanner(COST).plan_with_stats(tasks, cluster)
        beam_plan, _ = RemoPlanner(COST, beam_width=2).plan_with_stats(tasks, cluster)
        beam_plan.validate(caps, cluster.central_capacity)
        assert beam_plan.coverage() >= 0.95 * default_plan.coverage()
        assert beam_plan.total_message_cost() <= 1.10 * default_plan.total_message_cost()

    def test_early_termination_invariants(self):
        cluster, tasks = _bench_workload(60)
        caps = {n.node_id: n.capacity for n in cluster}
        default_plan, _ = RemoPlanner(COST).plan_with_stats(tasks, cluster)
        et_plan, _ = RemoPlanner(COST, early_termination=0.05).plan_with_stats(
            tasks, cluster
        )
        et_plan.validate(caps, cluster.central_capacity)
        assert et_plan.coverage() >= 0.95 * default_plan.coverage()


class TestCliSurface:
    def test_beam_width_flag_reaches_planning_payload(self, capsys):
        rc = main(
            [
                "plan",
                "--nodes",
                "12",
                "--tasks",
                "3",
                "--pool",
                "8",
                "--seed",
                "5",
                "--beam-width",
                "3",
                "--json",
            ]
        )
        assert rc == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        planning = payload["planning"]
        assert planning["beam_width"] == 3
        assert planning["exhaustive"] is False
        assert "memo_hits" in planning and "memo_misses" in planning

    def test_default_plan_identical_with_and_without_flags(self, capsys):
        """`repro plan` without knobs equals an explicit wide beam."""
        args = ["plan", "--nodes", "14", "--tasks", "4", "--pool", "8", "--seed", "3", "--json"]
        assert main(args) == 0
        import json

        base = json.loads(capsys.readouterr().out)
        assert main(args + ["--beam-width", "9999"]) == 0
        wide = json.loads(capsys.readouterr().out)
        drop = "planning_seconds"  # wall time, not part of the plan
        assert {k: v for k, v in base["summary"].items() if k != drop} == {
            k: v for k, v in wide["summary"].items() if k != drop
        }
        assert base["trees"] == wide["trees"]
