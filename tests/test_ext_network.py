"""Tests for the network-aware planning extension."""

import pytest

from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.core.planner import RemoPlanner
from repro.ext.network import NetworkModel, forwarding_cost, network_cost_fn

COST = CostModel(4.0, 1.0)


class TestNetworkModel:
    def test_uniform_is_one_hop(self):
        net = NetworkModel.uniform()
        assert net.distance(1, 2) == 1.0
        assert net.distance(3, 3) == 0.0
        assert net.distance(5, -1) == 1.0

    def test_ring_distances(self):
        net = NetworkModel.ring(10)
        assert net.distance(0, 1) == pytest.approx(1.0)
        assert net.distance(0, 5) == pytest.approx(5.0)
        assert net.distance(0, 9) == pytest.approx(1.0)  # shorter arc

    def test_grid_manhattan(self):
        net = NetworkModel.grid(width=4)
        assert net.distance(0, 5) == pytest.approx(2.0)  # (0,0)->(1,1)
        assert net.distance(0, -1) == pytest.approx(0.0)  # collector at (0,0)

    def test_negative_distance_rejected(self):
        net = NetworkModel(lambda a, b: -1.0)
        with pytest.raises(ValueError):
            net.distance(0, 1)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel.ring(0)
        with pytest.raises(ValueError):
            NetworkModel.grid(0)


class TestForwardingCost:
    def plan_for(self, cluster):
        pairs = pairs_for(range(6), ["a"])
        return ForestBuilder(COST).build(Partition.one_set(["a"]), pairs, cluster)

    def test_uniform_network_costs_nothing_extra(self, small_cluster):
        plan = self.plan_for(small_cluster)
        assert forwarding_cost(plan, NetworkModel.uniform()) == pytest.approx(0.0)

    def test_long_paths_cost_more(self, small_cluster):
        plan = self.plan_for(small_cluster)
        near = forwarding_cost(plan, NetworkModel.uniform(hops=1.0))
        far = forwarding_cost(plan, NetworkModel.uniform(hops=3.0))
        assert far > near

    def test_cost_fn_adds_forwarding(self, small_cluster):
        plan = self.plan_for(small_cluster)
        fn = network_cost_fn(NetworkModel.uniform(hops=3.0))
        assert fn(plan) > plan.total_message_cost()


class TestNetworkAwarePlanning:
    def test_planner_accepts_cost_fn(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        net = NetworkModel.ring(6)
        planner = RemoPlanner(COST, plan_cost_fn=network_cost_fn(net))
        plan = planner.plan(pairs, small_cluster)
        assert plan.coverage() > 0

    def test_network_awareness_reduces_forwarding(self, small_cluster):
        """At equal coverage, the network-aware planner's plan should
        never cause more forwarding than the oblivious one."""
        pairs = pairs_for(range(6), ["a", "b", "c"])
        net = NetworkModel.ring(6, collector_position=0.0)
        oblivious = RemoPlanner(COST).plan(pairs, small_cluster)
        aware = RemoPlanner(COST, plan_cost_fn=network_cost_fn(net)).plan(
            pairs, small_cluster
        )
        if aware.collected_pair_count() == oblivious.collected_pair_count():
            assert forwarding_cost(aware, net) <= forwarding_cost(oblivious, net) + 1e-6
