"""Property tests: incremental tree maintenance matches recomputation.

The tree model maintains incoming/outgoing values, message weights, and
send/receive costs *delta by delta* -- attach, detach, move, and local
update each propagate only their change along the ancestor path, with
early termination once nothing downstream can differ.  These tests
drive random mutation sequences through a :class:`MonitoringTree` and,
after every operation, compare the cached state against the from-scratch
oracle in :mod:`repro.checks.recompute` and the tree's own
``validate()`` invariants.  Any bookkeeping drift -- a stale ``_in``
residue, a miscounted message-weight contributor, an early exit taken
too eagerly -- surfaces here.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checks import assert_tree_matches_recompute
from repro.core.cost import AggregationKind, AggregationSpec, CostModel
from repro.trees.model import MonitoringTree

ATTRS = ("cpu", "mem", "net", "disk", "io")

#: Funnel mix exercised by the aggregation-aware runs: a saturating
#: funnel, a TOP_K cap, and one holistic attribute (identity).
AGG_MAP = {
    "cpu": AggregationSpec(kind=AggregationKind.SUM),
    "mem": AggregationSpec(kind=AggregationKind.TOP_K, k=2),
}


@st.composite
def mutation_runs(draw):
    """A random (cost, capacities, aggregation, op-script) quadruple."""
    rnd = draw(st.randoms(use_true_random=False))
    per_message = draw(st.floats(min_value=0.5, max_value=20.0))
    per_value = draw(st.floats(min_value=0.1, max_value=3.0))
    cost = CostModel(per_message=per_message, per_value=per_value)

    n_nodes = draw(st.integers(min_value=3, max_value=14))
    # Tight capacities exercise the rejection/early-exit paths; loose
    # ones let deep structures form so long delta walks happen.
    tight = draw(st.booleans())
    capacities = {
        node: (
            draw(st.floats(min_value=40.0, max_value=160.0)) if tight else 1e9
        )
        for node in range(n_nodes)
    }
    central = draw(st.floats(min_value=50.0, max_value=500.0)) if tight else 1e9
    aggregation = AGG_MAP if draw(st.booleans()) else None
    n_ops = draw(st.integers(min_value=5, max_value=30))
    return rnd, cost, capacities, central, aggregation, n_ops


def _random_demand(rnd):
    attrs = rnd.sample(ATTRS, rnd.randint(1, len(ATTRS)))
    return {a: rnd.uniform(0.1, 3.0) for a in attrs}


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(mutation_runs())
def test_incremental_state_matches_recompute_oracle(run):
    rnd, cost, capacities, central, aggregation, n_ops = run
    tree = MonitoringTree(
        attributes=ATTRS,
        cost_model=cost,
        capacities=capacities,
        central_capacity=central,
        aggregation=aggregation,
    )
    next_node = 0
    for _ in range(n_ops):
        members = tree.nodes
        op = rnd.choice(("add", "add", "add", "update", "move", "remove"))
        if op == "add" or not members:
            if next_node >= len(capacities):
                continue
            parent = rnd.choice(members) if members else None
            tree.add_node(
                next_node, parent, _random_demand(rnd), rnd.uniform(0.5, 2.0)
            )
            next_node += 1
        elif op == "update":
            node = rnd.choice(members)
            # Occasionally clear the demand entirely (pure relay).
            demand = {} if rnd.random() < 0.2 else _random_demand(rnd)
            tree.update_local(node, demand, rnd.uniform(0.5, 2.0))
        elif op == "move" and len(members) >= 3:
            branch = rnd.choice([n for n in members if tree.parent(n) is not None])
            in_branch = set(tree.subtree_nodes(branch))
            hosts = [n for n in members if n not in in_branch]
            if hosts:
                tree.move_branch(branch, rnd.choice(hosts))
        elif op == "remove" and len(members) >= 2:
            branch = rnd.choice([n for n in members if tree.parent(n) is not None])
            tree.remove_branch(branch)
        # Whether the operation committed or was refused on capacity
        # grounds, the cached state must match a from-scratch pass.
        if len(tree) > 0:
            assert_tree_matches_recompute(tree)
            tree.validate()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(mutation_runs())
def test_readonly_probes_leave_no_trace(run):
    """can_add_node / can_move_branch simulations must not mutate."""
    rnd, cost, capacities, central, aggregation, n_ops = run
    tree = MonitoringTree(
        attributes=ATTRS,
        cost_model=cost,
        capacities=capacities,
        central_capacity=central,
        aggregation=aggregation,
    )
    next_node = 0
    for _ in range(n_ops):
        members = tree.nodes
        if not members or (rnd.random() < 0.6 and next_node < len(capacities)):
            parent = rnd.choice(members) if members else None
            tree.add_node(
                next_node, parent, _random_demand(rnd), rnd.uniform(0.5, 2.0)
            )
            next_node += 1
            continue
        # Fire read-only probes, including infeasible ones, then check
        # the overlay simulation left the real tables untouched.
        if next_node < len(capacities):
            tree.can_add_node(next_node, rnd.choice(members), _random_demand(rnd))
        movable = [n for n in members if tree.parent(n) is not None]
        if movable:
            branch = rnd.choice(movable)
            target = rnd.choice(members)
            if branch != target:
                tree.can_move_branch(branch, target)
        assert_tree_matches_recompute(tree)
        tree.validate()
