"""Unit tests for the cost model and funnel functions."""

import pytest

from repro.core.cost import AggregationKind, AggregationSpec, CostModel


class TestCostModel:
    def test_message_cost_linear_in_values(self):
        model = CostModel(per_message=2.0, per_value=0.5)
        assert model.message_cost(0) == pytest.approx(2.0)
        assert model.message_cost(10) == pytest.approx(7.0)

    def test_overhead_ratio(self):
        assert CostModel(8.0, 2.0).overhead_ratio == pytest.approx(4.0)

    def test_star_root_cost_linear_in_message_count(self):
        """The Fig. 2 observation: root cost scales with #messages."""
        model = CostModel(per_message=2.0, per_value=1.0)
        costs = [model.star_root_cost(n) for n in (16, 32, 64)]
        assert costs[1] == pytest.approx(2 * costs[0])
        assert costs[2] == pytest.approx(4 * costs[0])

    def test_star_root_cost_grows_slowly_with_payload(self):
        """One big message is far cheaper than many small ones."""
        model = CostModel(per_message=2.0, per_value=0.01)
        many_small = model.star_root_cost(256, values_per_child=1)
        one_big = model.message_cost(256)
        assert one_big < many_small / 50

    def test_with_ratio(self):
        model = CostModel(2.0, 1.0).with_ratio(16.0)
        assert model.per_message == pytest.approx(16.0)
        assert model.per_value == pytest.approx(1.0)

    def test_rejects_negative_per_message(self):
        with pytest.raises(ValueError):
            CostModel(per_message=-1.0)

    def test_rejects_nonpositive_per_value(self):
        with pytest.raises(ValueError):
            CostModel(per_value=0.0)

    def test_rejects_negative_values_in_message(self):
        with pytest.raises(ValueError):
            CostModel().message_cost(-1)

    def test_rejects_negative_ratio(self):
        with pytest.raises(ValueError):
            CostModel().with_ratio(-2.0)

    def test_rejects_negative_children(self):
        with pytest.raises(ValueError):
            CostModel().star_root_cost(-1)


class TestFunnels:
    def test_holistic_forwards_everything(self):
        assert AggregationSpec(AggregationKind.HOLISTIC).funnel(37) == 37

    def test_sum_collapses_to_one(self):
        assert AggregationSpec(AggregationKind.SUM).funnel(100) == 1

    def test_max_min_avg_count_collapse(self):
        for kind in (AggregationKind.MAX, AggregationKind.MIN, AggregationKind.AVG, AggregationKind.COUNT):
            assert AggregationSpec(kind).funnel(42) == 1

    def test_zero_incoming_always_zero(self):
        for kind in AggregationKind:
            assert AggregationSpec(kind, k=5).funnel(0) == 0

    def test_top_k_caps_at_k(self):
        spec = AggregationSpec(AggregationKind.TOP_K, k=10)
        assert spec.funnel(4) == 4
        assert spec.funnel(10) == 10
        assert spec.funnel(400) == 10

    def test_distinct_uses_holistic_upper_bound(self):
        assert AggregationSpec(AggregationKind.DISTINCT).funnel(25) == 25

    def test_top_k_rejects_bad_k(self):
        with pytest.raises(ValueError):
            AggregationSpec(AggregationKind.TOP_K, k=0).funnel(3)

    def test_rejects_negative_incoming(self):
        with pytest.raises(ValueError):
            AggregationSpec(AggregationKind.SUM).funnel(-1)
