"""Tests for span tracing and the three exporters."""

import asyncio
import json

import pytest

from repro.obs import trace
from repro.obs.export import (
    check_prometheus_text,
    chrome_trace_events,
    parse_prometheus_text,
    prometheus_text,
    read_jsonl_spans,
    span_from_dict,
    span_to_dict,
    write_chrome_trace,
    write_jsonl_spans,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer


class TestDisabledPath:
    def test_span_is_shared_noop(self):
        assert trace.active_tracer() is None
        a = trace.span("x")
        b = trace.span("y", lane="z", attr=1)
        assert a is b  # one shared handle, no allocation per call
        with a as handle:
            handle.set(k="v")
        assert a.elapsed == 0.0

    def test_timer_still_measures(self):
        with trace.timer("t") as t:
            sum(range(1000))
        assert t.elapsed > 0.0

    def test_event_and_ingest_are_noops(self):
        trace.event("nothing", k=1)
        trace.ingest([Span(name="s", start=0.0, duration=1.0)])
        assert trace.drain_local() == []


class TestRecording:
    def test_span_records_name_attrs_lane(self):
        with trace.installed() as tracer:
            with trace.span("work", lane="engine", size=3) as sp:
                sp.set(verdict="ok")
        spans = tracer.spans()
        assert len(spans) == 1
        span = spans[0]
        assert span.name == "work"
        assert span.lane == "engine"
        assert span.attrs == {"size": 3, "verdict": "ok"}
        assert span.duration > 0.0
        assert span.kind == "span"

    def test_nesting_records_parent_ids(self):
        with trace.installed() as tracer:
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        inner, outer = tracer.spans()  # inner closes first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_event_links_to_enclosing_span(self):
        with trace.installed() as tracer:
            with trace.span("outer"):
                trace.event("decision", verdict="apply")
        event, outer = tracer.spans()
        assert event.kind == "instant"
        assert event.duration == 0.0
        assert event.parent_id == outer.span_id

    def test_installed_restores_previous(self):
        with trace.installed() as first:
            with trace.installed() as second:
                assert trace.active_tracer() is second
            assert trace.active_tracer() is first
        assert trace.active_tracer() is None

    def test_asyncio_tasks_have_independent_parents(self):
        async def worker(name):
            with trace.span(name):
                await asyncio.sleep(0)
                trace.event(f"{name}.mark")

        async def main():
            await asyncio.gather(worker("a"), worker("b"))

        with trace.installed() as tracer:
            asyncio.run(main())
        by_name = {s.name: s for s in tracer.spans()}
        # Each task's event is parented to its own span, not its
        # sibling's -- the contextvar is task-scoped.
        assert by_name["a.mark"].parent_id == by_name["a"].span_id
        assert by_name["b.mark"].parent_id == by_name["b"].span_id

    def test_worker_roundtrip_via_drain_and_ingest(self):
        with trace.installed() as tracer:
            with trace.span("parent-side"):
                pass
            shipped = trace.drain_local()  # what a worker would send back
            assert tracer.spans() == []
            trace.ingest(shipped)
            assert [s.name for s in tracer.spans()] == ["parent-side"]


class TestJsonlRoundTrip:
    def test_span_dict_round_trip(self):
        span = Span(
            name="n",
            start=1.5,
            duration=0.25,
            attrs={"rank": 3},
            pid=10,
            tid=20,
            span_id=7,
            parent_id=6,
            kind="span",
            lane="planner",
        )
        assert span_from_dict(span_to_dict(span)) == span

    def test_file_round_trip(self, tmp_path):
        with trace.installed() as tracer:
            with trace.span("a", lane="x", k=1):
                pass
            trace.event("b")
        path = tmp_path / "spans.jsonl"
        write_jsonl_spans(tracer.spans(), str(path))
        assert read_jsonl_spans(str(path)) == tracer.spans()


class TestChromeTrace:
    def _sample_spans(self):
        with trace.installed() as tracer:
            for _ in range(3):
                with trace.span("tick", lane="engine"):
                    with trace.span("wave", lane="node-1"):
                        pass
            trace.event("accept", lane="planner")
        return tracer

    def test_written_file_is_valid_json(self, tmp_path):
        tracer = self._sample_spans()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer.spans(), str(path), epoch=tracer.epoch)
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["traceEvents"]

    def test_events_have_required_fields(self):
        tracer = self._sample_spans()
        events = chrome_trace_events(tracer.spans(), epoch=tracer.epoch)
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] != "M":
                assert event["ts"] >= 0.0

    def test_ts_monotonic_per_thread(self):
        tracer = self._sample_spans()
        events = chrome_trace_events(tracer.spans(), epoch=tracer.epoch)
        last = {}
        for event in events:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, 0.0)
            last[key] = event["ts"]

    def test_lanes_become_named_threads(self):
        tracer = self._sample_spans()
        events = chrome_trace_events(tracer.spans(), epoch=tracer.epoch)
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert names == {"engine", "node-1", "planner"}
        # Distinct lanes map to distinct tids.
        tids = {e["tid"] for e in events if e["ph"] == "M"}
        assert len(tids) == 3


class TestPrometheus:
    def _registry(self):
        reg = MetricsRegistry()
        reg.incr("messages_sent", 3, node=1)
        reg.incr("messages_sent", 2, node=2)
        reg.set_gauge("coverage", 0.97)
        for v in [1.0, 2.0, 3.0]:
            reg.observe("latency_s", v)
        return reg

    def test_exposition_is_well_formed(self):
        text = prometheus_text(self._registry())
        assert check_prometheus_text(text) == []

    def test_type_comments_present(self):
        text = prometheus_text(self._registry())
        assert "# TYPE messages_sent counter" in text
        assert "# TYPE coverage gauge" in text
        assert "# TYPE latency_s summary" in text

    def test_parse_round_trip(self):
        text = prometheus_text(self._registry())
        samples = parse_prometheus_text(text)
        assert samples['messages_sent{node="1"}'] == 3.0
        assert samples['messages_sent{node="2"}'] == 2.0
        assert samples["coverage"] == 0.97
        assert samples["latency_s_count"] == 3.0
        assert samples["latency_s_sum"] == 6.0
        assert samples['latency_s{quantile="0.5"}'] == 2.0

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not a sample line")

    def test_checker_flags_malformed_lines(self):
        problems = check_prometheus_text("ok_metric 1.0\nbroken{ 2.0\n")
        assert len(problems) == 1
        assert "line 2" in problems[0]

    def test_empty_registry_exports_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestTracerBasics:
    def test_drain_empties(self):
        tracer = Tracer()
        tracer.record(Span(name="a", start=0.0, duration=1.0))
        assert len(tracer) == 1
        drained = tracer.drain()
        assert [s.name for s in drained] == ["a"]
        assert len(tracer) == 0

    def test_ids_are_unique(self):
        tracer = Tracer()
        assert tracer.next_id() != tracer.next_id()


class TestBoundedTracer:
    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(max_spans=0)

    def test_record_keeps_first_and_counts_drops(self):
        from repro.obs import names
        from repro.obs.metrics import use_registry

        registry = MetricsRegistry()
        tracer = Tracer(max_spans=2)
        with use_registry(registry):
            for i in range(5):
                tracer.record(Span(name=f"s{i}", start=float(i), duration=0.1))
        assert [s.name for s in tracer.spans()] == ["s0", "s1"]
        assert tracer.dropped == 3
        assert registry.counter(names.TRACE_SPANS_DROPPED) == 3

    def test_ingest_respects_cap(self):
        from repro.obs import names
        from repro.obs.metrics import use_registry

        registry = MetricsRegistry()
        tracer = Tracer(max_spans=3)
        tracer.record(Span(name="own", start=0.0, duration=0.1))
        with use_registry(registry):
            tracer.ingest(
                Span(name=f"w{i}", start=float(i), duration=0.1) for i in range(4)
            )
        assert [s.name for s in tracer.spans()] == ["own", "w0", "w1"]
        assert tracer.dropped == 2
        assert registry.counter(names.TRACE_SPANS_DROPPED) == 2


class TestTraceContext:
    def test_traceparent_round_trip(self):
        ctx = trace.new_root_context()
        assert ctx.span_id == 0
        parsed = trace.parse_traceparent(trace.format_traceparent(ctx))
        assert parsed == ctx

    @pytest.mark.parametrize(
        "value",
        [
            "",
            "junk",
            "00-short-0000000000000001-01",
            "00-" + "0" * 32 + "-0000000000000001-01",  # all-zero trace id
            "00-" + "g" * 32 + "-0000000000000001-01",  # non-hex
            "00-" + "a" * 32 + "-xyz-01",
        ],
    )
    def test_malformed_traceparent_returns_none(self, value):
        assert trace.parse_traceparent(value) is None

    def test_attach_sets_current_context(self):
        assert trace.current_context() is None
        ctx = trace.new_root_context()
        with trace.attach(ctx):
            assert trace.current_context() == ctx
        assert trace.current_context() is None

    def test_attach_none_is_noop(self):
        with trace.attach(None):
            assert trace.current_context() is None

    def test_spans_join_the_attached_trace(self):
        ctx = trace.new_root_context()
        with trace.installed() as tracer:
            with trace.attach(ctx):
                with trace.span("outer") as outer:
                    child_ctx = outer.context()
                    with trace.span("inner"):
                        pass
                    trace.event("mark")
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].trace_id == ctx.trace_id
        assert spans["outer"].parent_id is None
        assert child_ctx is not None and child_ctx.trace_id == ctx.trace_id
        assert spans["inner"].trace_id == ctx.trace_id
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["mark"].trace_id == ctx.trace_id

    def test_trace_id_survives_jsonl_round_trip(self, tmp_path):
        ctx = trace.new_root_context()
        with trace.installed() as tracer:
            with trace.attach(ctx):
                with trace.span("x"):
                    pass
        path = tmp_path / "spans.jsonl"
        write_jsonl_spans(tracer.spans(), str(path))
        (loaded,) = read_jsonl_spans(str(path))
        assert loaded.trace_id == ctx.trace_id

    def test_tasks_inherit_context_at_spawn_time(self):
        # asyncio tasks snapshot contextvars at creation: attaching
        # around ensure_future is how tick handlers hand the period's
        # trace to their wave tasks.
        ctx = trace.new_root_context()

        async def wave(tracer):
            with trace.span("wave"):
                await asyncio.sleep(0)

        async def scenario():
            with trace.installed() as tracer:
                with trace.attach(ctx):
                    task = asyncio.ensure_future(wave(tracer))
                await task
                return tracer.spans()

        (span,) = asyncio.run(scenario())
        assert span.trace_id == ctx.trace_id
