"""Unit tests for cross-tree capacity allocation policies."""

import pytest

from repro.core.allocation import (
    AllocationPolicy,
    CapacityLedger,
    build_order,
    preallocate,
)
from repro.core.partition import Partition

S_A = frozenset({"a"})
S_B = frozenset({"b"})
S_CD = frozenset({"c", "d"})


class TestBuildOrder:
    def test_ordered_builds_smallest_first(self):
        part = Partition([S_A, S_B, S_CD])
        volumes = {S_A: 50, S_B: 5, S_CD: 20}
        order = build_order(AllocationPolicy.ORDERED, part, volumes)
        assert order == [S_B, S_CD, S_A]

    def test_other_policies_are_deterministic(self):
        part = Partition([S_B, S_A])
        for policy in (AllocationPolicy.UNIFORM, AllocationPolicy.ON_DEMAND):
            assert build_order(policy, part, {}) == build_order(policy, part, {})

    def test_is_sequential_flags(self):
        assert AllocationPolicy.ON_DEMAND.is_sequential
        assert AllocationPolicy.ORDERED.is_sequential
        assert not AllocationPolicy.UNIFORM.is_sequential
        assert not AllocationPolicy.PROPORTIONAL.is_sequential


class TestPreallocate:
    def test_uniform_divides_equally(self):
        part = Partition([S_A, S_B])
        slices = preallocate(
            AllocationPolicy.UNIFORM,
            part,
            participation={7: [S_A, S_B]},
            capacities={7: 100.0},
            set_volumes={S_A: 10, S_B: 90},
            node_volumes={(7, S_A): 1, (7, S_B): 9},
        )
        assert slices[S_A][7] == pytest.approx(50.0)
        assert slices[S_B][7] == pytest.approx(50.0)

    def test_proportional_follows_node_volumes(self):
        part = Partition([S_A, S_B])
        slices = preallocate(
            AllocationPolicy.PROPORTIONAL,
            part,
            participation={7: [S_A, S_B]},
            capacities={7: 100.0},
            set_volumes={S_A: 10, S_B: 90},
            node_volumes={(7, S_A): 1, (7, S_B): 3},
        )
        assert slices[S_A][7] == pytest.approx(25.0)
        assert slices[S_B][7] == pytest.approx(75.0)

    def test_slices_sum_to_capacity(self):
        part = Partition([S_A, S_B, S_CD])
        slices = preallocate(
            AllocationPolicy.UNIFORM,
            part,
            participation={1: [S_A, S_B, S_CD], 2: [S_A]},
            capacities={1: 60.0, 2: 10.0},
            set_volumes={},
            node_volumes={},
        )
        total_1 = sum(slices[s].get(1, 0.0) for s in part.sets)
        assert total_1 == pytest.approx(60.0)
        assert slices[S_A][2] == pytest.approx(10.0)

    def test_sequential_policy_rejected(self):
        with pytest.raises(ValueError):
            preallocate(
                AllocationPolicy.ON_DEMAND,
                Partition([S_A]),
                {},
                {},
                {},
                {},
            )


class TestCapacityLedger:
    def test_view_snapshot_does_not_shrink_mid_build(self):
        ledger = CapacityLedger({1: 50.0}, central_capacity=100.0)
        view = ledger.view()
        ledger.charge({1: 20.0}, central_usage=10.0)
        assert view[1] == pytest.approx(50.0)
        assert ledger.remaining(1) == pytest.approx(30.0)

    def test_charge_accumulates(self):
        ledger = CapacityLedger({1: 50.0}, central_capacity=100.0)
        ledger.charge({1: 20.0}, 5.0)
        ledger.charge({1: 10.0}, 5.0)
        assert ledger.remaining(1) == pytest.approx(20.0)
        assert ledger.central_remaining == pytest.approx(90.0)

    def test_remaining_clamped_at_zero(self):
        ledger = CapacityLedger({1: 10.0}, central_capacity=5.0)
        ledger.charge({1: 100.0}, 100.0)
        assert ledger.remaining(1) == 0.0
        assert ledger.central_remaining == 0.0

    def test_unknown_node_has_zero(self):
        ledger = CapacityLedger({}, central_capacity=1.0)
        assert ledger.remaining(42) == 0.0
