"""Tests for the TreeBuilderKind factory enum."""

import pytest

from repro.core.cost import CostModel
from repro.trees import (
    AdaptiveTreeBuilder,
    ChainTreeBuilder,
    MaxAvailableTreeBuilder,
    StarTreeBuilder,
    TreeBuilderKind,
)

COST = CostModel(2.0, 1.0)


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            (TreeBuilderKind.STAR, StarTreeBuilder),
            (TreeBuilderKind.CHAIN, ChainTreeBuilder),
            (TreeBuilderKind.MAX_AVB, MaxAvailableTreeBuilder),
            (TreeBuilderKind.ADAPTIVE, AdaptiveTreeBuilder),
        ],
    )
    def test_create_instantiates_matching_class(self, kind, cls):
        builder = kind.create(cost_model=COST)
        assert isinstance(builder, cls)
        assert builder.cost is COST

    def test_values_are_stable_identifiers(self):
        assert TreeBuilderKind("adaptive") is TreeBuilderKind.ADAPTIVE
        assert {k.value for k in TreeBuilderKind} == {
            "star",
            "chain",
            "max_avb",
            "adaptive",
        }

    def test_adaptive_kwargs_forwarded(self):
        builder = TreeBuilderKind.ADAPTIVE.create(
            cost_model=COST, construction="star", max_adjust_rounds_per_node=1
        )
        assert builder.construction == "star"
        assert builder.max_adjust_rounds_per_node == 1
