"""Unit tests for the adjusting procedure and its Section 5.1 optimizations."""

import math

import pytest

from repro.core.cost import CostModel
from repro.trees.adaptive import AdaptiveTreeBuilder
from repro.trees.adjust import TreeAdjuster
from repro.trees.base import TreeBuildRequest
from repro.trees.model import MonitoringTree

COST = CostModel(per_message=2.0, per_value=1.0)


def star_tree(n_children, capacity_root, capacity_leaf=100.0):
    caps = {0: capacity_root}
    caps.update({i: capacity_leaf for i in range(1, n_children + 1)})
    tree = MonitoringTree(("a",), COST, caps, central_capacity=math.inf)
    tree.add_node(0, None, {"a": 1.0})
    for i in range(1, n_children + 1):
        assert tree.add_node(i, 0, {"a": 1.0}), f"failed to attach {i}"
    return tree


@pytest.mark.parametrize(
    "branch_based,subtree_only",
    [(False, False), (True, False), (False, True), (True, True)],
)
class TestRelieve:
    def test_relieve_frees_overhead_at_congested_node(self, branch_based, subtree_only):
        # Root with 4 children at exactly its capacity; relieving must
        # reduce its branch count by one (freeing C).
        tree = star_tree(4, capacity_root=sum(COST.message_cost(1) for _ in range(4)) + COST.message_cost(5))
        used_before = tree.used(0)
        degree_before = tree.degree(0)
        adjuster = TreeAdjuster(branch_based=branch_based, subtree_only=subtree_only)
        relieved = adjuster.relieve(tree, [0], failed_cost=COST.message_cost(1))
        assert relieved
        assert tree.degree(0) == degree_before - 1
        assert tree.used(0) < used_before
        tree.validate()

    def test_relieve_preserves_node_set(self, branch_based, subtree_only):
        tree = star_tree(5, capacity_root=1000.0)
        nodes_before = set(tree.nodes)
        adjuster = TreeAdjuster(branch_based=branch_based, subtree_only=subtree_only)
        adjuster.relieve(tree, [0], failed_cost=3.0)
        assert set(tree.nodes) == nodes_before
        tree.validate()

    def test_relieve_fails_when_everyone_is_full(self, branch_based, subtree_only):
        # Leaves have just enough to send their own message, nothing more.
        tree = star_tree(3, capacity_root=1000.0, capacity_leaf=COST.message_cost(1))
        adjuster = TreeAdjuster(branch_based=branch_based, subtree_only=subtree_only)
        assert not adjuster.relieve(tree, [0], failed_cost=3.0)
        tree.validate()

    def test_relieve_ignores_nodes_not_in_tree(self, branch_based, subtree_only):
        tree = star_tree(3, capacity_root=1000.0)
        adjuster = TreeAdjuster(branch_based=branch_based, subtree_only=subtree_only)
        # Congested list holds an unknown node: nothing to do.
        result = adjuster.relieve(tree, [777], failed_cost=3.0)
        assert result in (True, False)
        tree.validate()


class TestOptimizationEquivalence:
    def test_all_variants_grow_comparable_trees(self):
        """Optimized adjusting must not cost more than ~2% coverage
        (the paper reports < 2% penalty)."""
        results = {}
        for branch_based, subtree_only in [(False, False), (True, True)]:
            builder = AdaptiveTreeBuilder(
                COST,
                adjuster=TreeAdjuster(branch_based=branch_based, subtree_only=subtree_only),
            )
            req = TreeBuildRequest(
                attributes=frozenset({"a"}),
                demands={i: {"a": 1.0} for i in range(60)},
                capacities={i: 16.0 for i in range(60)},
                central_capacity=500.0,
            )
            results[(branch_based, subtree_only)] = len(builder.build(req).tree)
        basic = results[(False, False)]
        optimized = results[(True, True)]
        assert optimized >= basic * 0.9

    def test_probe_count_lower_with_subtree_only(self):
        def probes(subtree_only):
            adjuster = TreeAdjuster(branch_based=True, subtree_only=subtree_only)
            builder = AdaptiveTreeBuilder(COST, adjuster=adjuster)
            req = TreeBuildRequest(
                attributes=frozenset({"a"}),
                demands={i: {"a": 1.0} for i in range(60)},
                capacities={i: 16.0 for i in range(60)},
                central_capacity=500.0,
            )
            builder.build(req)
            return adjuster.probe_count

        assert probes(True) <= probes(False)


class TestBasicReattachRollback:
    def test_rollback_restores_original_shape(self):
        # Root at capacity; leaves too tight to host anything, so the
        # per-node reattach must fail and restore the branch.
        tree = star_tree(3, capacity_root=1000.0, capacity_leaf=COST.message_cost(1))
        edges_before = tree.edges()
        adjuster = TreeAdjuster(branch_based=False, subtree_only=False)
        assert not adjuster.relieve(tree, [0], failed_cost=3.0)
        assert tree.edges() == edges_before
        tree.validate()
