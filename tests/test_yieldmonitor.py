"""Tests for the YieldMonitor-like application generator."""

import pytest

from repro.core.schemes import as_pair_set
from repro.streams.app import build_stream_cluster
from repro.streams.yieldmonitor import make_yieldmonitor, yieldmonitor_tasks


class TestShape:
    def test_published_deployment_shape(self):
        """~200+ processes over 200 nodes, 30-50 attributes per node."""
        app = make_yieldmonitor(n_nodes=200, n_lines=50, seed=11)
        assert len(app.graph) > 200
        assert len(app.nodes()) == 200
        counts = [len(app.node_attributes(n)) for n in app.nodes()]
        assert min(counts) >= 6  # at least the OS gauges
        assert 30 <= sum(counts) / len(counts) <= 50 or max(counts) >= 10

    def test_small_shape_for_tests(self):
        app = make_yieldmonitor(n_nodes=20, n_lines=8, seed=1)
        assert len(app.nodes()) == 20
        app.graph.validate()

    def test_deterministic_by_seed(self):
        a1 = make_yieldmonitor(n_nodes=20, n_lines=8, seed=5)
        a2 = make_yieldmonitor(n_nodes=20, n_lines=8, seed=5)
        assert a1.placement == a2.placement

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            make_yieldmonitor(n_nodes=0)

    def test_rates_flow_to_sink(self):
        app = make_yieldmonitor(n_nodes=10, n_lines=4, seed=2)
        for _ in range(10):
            app.step()
        sink = app.graph.operator("yield_sink")
        assert sink.rate_in > 0


class TestTasks:
    def test_tasks_reference_real_nodes(self):
        app = make_yieldmonitor(n_nodes=20, n_lines=8, seed=3)
        tasks = yieldmonitor_tasks(app, 15, seed=4)
        assert len(tasks) == 15
        nodes = set(app.nodes())
        for task in tasks:
            assert task.nodes <= nodes

    def test_tasks_have_observable_pairs(self):
        app = make_yieldmonitor(n_nodes=20, n_lines=8, seed=3)
        cluster = build_stream_cluster(app, capacity=100.0)
        tasks = yieldmonitor_tasks(app, 15, seed=4)
        pairs = as_pair_set(tasks)
        observable = sum(
            1
            for p in pairs
            if p.node in cluster and cluster.node(p.node).observes(p.attribute)
        )
        assert observable > 0
        assert observable >= len(pairs) * 0.3  # tasks are mostly sensible

    def test_task_ids_unique(self):
        app = make_yieldmonitor(n_nodes=20, n_lines=8, seed=3)
        tasks = yieldmonitor_tasks(app, 20, seed=4)
        ids = [t.task_id for t in tasks]
        assert len(set(ids)) == len(ids)

    def test_rejects_nonpositive_count(self):
        app = make_yieldmonitor(n_nodes=10, n_lines=4, seed=1)
        with pytest.raises(ValueError):
            yieldmonitor_tasks(app, 0)
