"""The static plan verifier: clean plans, corruption fixtures, differ.

Each corruption class must be caught with its own distinct primary
diagnostic code -- that distinctness is what makes the codes usable as
regression anchors -- and a clean planner output must be entirely
diagnostic-free.
"""

from __future__ import annotations

import pytest

from repro.checks import (
    CODES,
    DiagnosticReport,
    PlanCheckError,
    Severity,
    assert_plan_valid,
    check_adaptation_step,
    check_plan,
    check_plan_for_cluster,
    describe_codes,
    inject_fault,
    recompute_tree,
)
from repro.core.partition import MergeOp, Partition, SplitOp
from repro.core.planner import RemoPlanner


@pytest.fixture
def planned(cost, medium_cluster, task_factory):
    tasks = [
        task_factory("t0", ("attr00", "attr01", "attr02"), range(0, 40)),
        task_factory("t1", ("attr02", "attr03", "attr04", "attr05"), range(10, 30)),
        task_factory("t2", ("attr06", "attr07"), range(5, 25)),
    ]
    plan = RemoPlanner(cost).plan(tasks, medium_cluster)
    return plan, medium_cluster


# ----------------------------------------------------------------------
# Clean plans
# ----------------------------------------------------------------------
def test_planner_output_is_diagnostic_free(planned):
    plan, cluster = planned
    report = check_plan_for_cluster(plan, cluster)
    assert not report, report.format(with_hints=True)


def test_assert_plan_valid_passes_and_returns_report(planned):
    plan, cluster = planned
    report = assert_plan_valid(plan, cluster)
    assert isinstance(report, DiagnosticReport)
    assert not report.has_errors


def test_debug_checks_planning_matches_plain_planning(cost, small_cluster, task_factory):
    tasks = [task_factory("t", ("a", "b", "c"), range(6))]
    plain = RemoPlanner(cost).plan(tasks, small_cluster)
    checked = RemoPlanner(cost).plan(tasks, small_cluster, debug_checks=True)
    assert checked.partition == plain.partition
    assert checked.collected_pair_count() == plain.collected_pair_count()


def test_recompute_matches_cached_bookkeeping(planned):
    plan, _cluster = planned
    for result in plan.trees.values():
        tree = result.tree
        accounting = recompute_tree(tree)
        assert accounting.pair_count == tree.pair_count()
        for node, acc in accounting.nodes.items():
            assert acc.send == pytest.approx(tree.send_cost(node), abs=1e-9)
            assert acc.recv == pytest.approx(tree.recv_cost(node), abs=1e-9)


# ----------------------------------------------------------------------
# Corruption fixtures: each class -> its own code
# ----------------------------------------------------------------------
def test_dropped_tree_is_caught(planned):
    plan, cluster = planned
    inject_fault(plan, "drop-tree")
    report = check_plan_for_cluster(plan, cluster)
    assert "REMO102" in report.codes()
    assert report.has_errors


def test_cycle_is_caught(planned):
    plan, cluster = planned
    inject_fault(plan, "cycle")
    report = check_plan_for_cluster(plan, cluster)
    assert "REMO111" in report.codes()
    # The cycle is the *only* failure class present: the injector keeps
    # the parent/children mirror consistent and never touches costs.
    assert set(report.codes()) == {"REMO111"}


def test_overload_is_caught_via_recomputation(planned):
    plan, cluster = planned
    inject_fault(plan, "overload")
    report = check_plan_for_cluster(plan, cluster)
    assert "REMO201" in report.codes()
    # The injector keeps bookkeeping consistent, so no drift reported.
    assert "REMO203" not in report.codes()


def test_stale_cost_is_caught_only_by_the_drift_check(planned):
    plan, cluster = planned
    inject_fault(plan, "stale-cost")
    report = check_plan_for_cluster(plan, cluster)
    assert set(report.codes()) == {"REMO203"}


def test_corruption_classes_have_distinct_primary_codes(
    cost, medium_cluster, task_factory
):
    tasks = [
        task_factory("t0", ("attr00", "attr01", "attr02"), range(0, 40)),
        task_factory("t1", ("attr02", "attr03", "attr04", "attr05"), range(10, 30)),
        task_factory("t2", ("attr06", "attr07"), range(5, 25)),
    ]
    primaries = {}
    for kind in ("drop-tree", "cycle", "overload", "stale-cost"):
        plan = RemoPlanner(cost).plan(tasks, medium_cluster)
        inject_fault(plan, kind)
        report = check_plan_for_cluster(plan, medium_cluster)
        assert report.has_errors, f"{kind} went undetected"
        primaries[kind] = report.codes()[0]
        assert primaries[kind] in CODES
    assert len(set(primaries.values())) == 4, primaries


def test_fault_injection_raises_on_unknown_kind(planned):
    plan, _cluster = planned
    with pytest.raises(ValueError, match="unknown fault kind"):
        inject_fault(plan, "bit-rot")


def test_assert_plan_valid_raises_with_codes_in_message(planned):
    plan, cluster = planned
    inject_fault(plan, "stale-cost")
    with pytest.raises(PlanCheckError, match="REMO203"):
        assert_plan_valid(plan, cluster, context="corrupted fixture")


def test_check_plan_without_capacities_skips_budget_checks(planned):
    plan, _cluster = planned
    inject_fault(plan, "overload")
    report = check_plan(plan)  # no budgets supplied
    assert "REMO201" not in report.codes()


# ----------------------------------------------------------------------
# Adaptation differ
# ----------------------------------------------------------------------
def test_adaptation_differ_accepts_a_faithful_trail():
    before = Partition.singletons({"a", "b", "c"})
    op = MergeOp(frozenset({"a"}), frozenset({"b"}))
    after = before.apply(op)
    report = DiagnosticReport()
    check_adaptation_step(before, after, [op], report)
    assert not report


def test_adaptation_differ_flags_illegal_op():
    before = Partition.singletons({"a", "b", "c"})
    bogus = MergeOp(frozenset({"a", "b"}), frozenset({"c"}))  # not a member set
    report = DiagnosticReport()
    check_adaptation_step(before, before, [bogus], report)
    assert report.codes() == ["REMO301"]


def test_adaptation_differ_flags_divergent_result():
    before = Partition.singletons({"a", "b", "c"})
    op = MergeOp(frozenset({"a"}), frozenset({"b"}))
    lied_about = before.apply(MergeOp(frozenset({"a"}), frozenset({"c"})))
    report = DiagnosticReport()
    check_adaptation_step(before, lied_about, [op], report)
    assert report.codes() == ["REMO302"]


def test_adaptation_differ_flags_universe_change():
    before = Partition.singletons({"a", "b"})
    after = Partition.singletons({"a", "b", "c"})
    report = DiagnosticReport()
    check_adaptation_step(before, after, [], report)
    assert report.codes() == ["REMO303"]


def test_adaptation_differ_replays_splits():
    before = Partition.one_set({"a", "b", "c"})
    op = SplitOp(frozenset({"a", "b", "c"}), "c")
    after = before.apply(op)
    report = DiagnosticReport()
    check_adaptation_step(before, after, [op], report)
    assert not report


# ----------------------------------------------------------------------
# Diagnostics framework
# ----------------------------------------------------------------------
def test_code_registry_is_complete_and_partitioned_by_family():
    for info in describe_codes():
        assert info.code.startswith("REMO")
        family = info.code[4]
        assert family in {"1", "2", "3"}
        assert info.hint
        assert isinstance(info.severity, Severity)


def test_report_formatting_and_filtering():
    report = DiagnosticReport()
    report.add("REMO105", "partition", "spare attribute")
    report.add("REMO201", "node 3", "over budget")
    assert len(report) == 2
    assert report.has_errors
    assert [d.code for d in report.warnings] == ["REMO105"]
    assert "WARNING REMO105 [partition]: spare attribute" in report.format()
    assert report.by_code("REMO201")[0].location == "node 3"
    assert "hint:" in report.format(with_hints=True)


def test_severity_override():
    report = DiagnosticReport()
    report.add("REMO201", "node 1", "advisory only", severity=Severity.WARNING)
    assert not report.has_errors
