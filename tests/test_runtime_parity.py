"""Runtime / simulator parity and `repro run --json` contract tests.

The acceptance bar for the live runtime: the same plan and
``MetricRegistry`` seed, executed through both
:class:`~repro.simulation.engine.MonitoringSimulation` (lock-step
discrete events) and :class:`~repro.runtime.engine.MonitoringRuntime`
(concurrent asyncio agents), must agree on collected-pair coverage to
within five percentage points.
"""

import json

import pytest

from repro.cli import main
from repro.cluster.metrics import MetricRegistry
from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.core.planner import RemoPlanner
from repro.runtime import MonitoringRuntime, RuntimeConfig
from repro.simulation import MonitoringSimulation, SimulationConfig
from repro.workloads.presets import quickstart_workload

COST = CostModel(2.0, 1.0)

#: Acceptance tolerance: five percentage points of coverage.
TOLERANCE = 0.05


def run_both(plan, cluster, periods=12, seed=9):
    """One plan, two engines, same registry seed."""
    sim_stats = MonitoringSimulation(
        plan,
        cluster,
        registry=MetricRegistry(plan.pairs, seed=seed),
        config=SimulationConfig(seed=seed),
    ).run(periods)
    runtime_report = MonitoringRuntime(
        plan,
        cluster,
        registry=MetricRegistry(plan.pairs, seed=seed),
        # 0.05s periods: wide enough for a full wave even on a loaded
        # machine -- 0.02s made the quickstart case flake when the
        # suite's heavier tests run first.
        config=RuntimeConfig(period_seconds=0.05, seed=seed),
    ).run(periods)
    return sim_stats, runtime_report


class TestCoverageParity:
    def test_parity_on_feasible_plan(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        plan = ForestBuilder(COST).build(
            Partition.singletons({"a", "b"}), pairs, small_cluster
        )
        sim_stats, runtime_report = run_both(plan, small_cluster)
        sim_coverage = sum(p.received_fraction for p in sim_stats.periods) / len(
            sim_stats.periods
        )
        assert runtime_report.mean_coverage == pytest.approx(
            sim_coverage, abs=TOLERANCE
        )
        assert runtime_report.final_coverage == pytest.approx(
            sim_stats.periods[-1].received_fraction, abs=TOLERANCE
        )

    def test_parity_on_partial_coverage_plan(self, tight_cluster):
        # A plan that cannot collect everything: both engines should
        # agree on how much actually arrives.
        pairs = pairs_for(range(20), ["a", "b", "c", "d"])
        plan = ForestBuilder(COST).build(
            Partition.singletons({"a", "b", "c", "d"}), pairs, tight_cluster
        )
        assert plan.coverage() < 1.0
        sim_stats, runtime_report = run_both(plan, tight_cluster)
        sim_coverage = sum(p.received_fraction for p in sim_stats.periods) / len(
            sim_stats.periods
        )
        assert runtime_report.mean_coverage == pytest.approx(
            sim_coverage, abs=TOLERANCE
        )

    def test_parity_on_quickstart_remo_plan(self):
        cluster, cost, tasks = quickstart_workload()
        plan = RemoPlanner(cost).plan(tasks, cluster)
        sim_stats, runtime_report = run_both(plan, cluster, periods=8)
        sim_coverage = sum(p.received_fraction for p in sim_stats.periods) / len(
            sim_stats.periods
        )
        assert runtime_report.mean_coverage == pytest.approx(
            sim_coverage, abs=TOLERANCE
        )
        # Both engines should deliver what the planner promised.
        assert runtime_report.final_coverage == pytest.approx(
            plan.coverage(), abs=TOLERANCE
        )

    def test_runtime_message_count_matches_simulator(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plan = ForestBuilder(COST).build(
            Partition.singletons({"a"}), pairs, small_cluster
        )
        sim_stats, runtime_report = run_both(plan, small_cluster, periods=6)
        assert runtime_report.messages_sent == sim_stats.messages_sent


class TestRunCliJson:
    def test_run_json_reports_required_fields(self, capsys):
        rc = main(
            [
                "run",
                "--nodes", "12", "--tasks", "3", "--pool", "8",
                "--scheme", "singleton",
                "--periods", "4", "--period-seconds", "0.02", "--seed", "2",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        # The acceptance contract: messages, drops, coverage, and
        # failure-detection events are all present and consistent.
        assert payload["command"] == "run"
        assert payload["messages"]["sent"] > 0
        assert payload["messages"]["dropped_capacity"] == 0
        assert payload["coverage"]["final"] > 0.0
        assert payload["failure_events"] == []
        assert payload["plan_check"] == {"errors": 0, "warnings": 0}
        assert len(payload["per_period"]) == 4

    def test_run_json_surfaces_failure_events(self, capsys):
        rc = main(
            [
                "run",
                "--nodes", "10", "--tasks", "3", "--pool", "6",
                "--scheme", "singleton",
                "--periods", "8", "--period-seconds", "0.02", "--seed", "2",
                "--failure-timeout", "2",
                "--fail-node", "1:1:20",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(
            e["node"] == 1 and e["kind"] == "down" for e in payload["failure_events"]
        )

    def test_run_quickstart_preset(self, capsys):
        rc = main(
            [
                "run", "--preset", "quickstart",
                "--periods", "3", "--period-seconds", "0.02", "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "quickstart"
        assert payload["coverage"]["final"] > 0.9

    def test_run_table_output(self, capsys):
        rc = main(
            [
                "run",
                "--nodes", "10", "--tasks", "3", "--pool", "6",
                "--scheme", "singleton",
                "--periods", "3", "--period-seconds", "0.02",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "live run" in out
        assert "mean coverage" in out
        assert "runtime counters" in out

    def test_run_rejects_malformed_outage_spec(self):
        with pytest.raises(SystemExit):
            main(["run", "--fail-node", "nonsense"])
        with pytest.raises(SystemExit):
            main(["run", "--fail-node", "1:5:2"])
