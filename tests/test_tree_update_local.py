"""Tests for in-place local-demand mutation (DIRECT-APPLY's tree patching)."""

import math

import pytest

from repro.core.cost import CostModel
from repro.trees.model import MonitoringTree

COST = CostModel(per_message=2.0, per_value=1.0)


def tree_with_chain(caps=None, attrs=("a", "b")):
    capacities = caps if caps is not None else {i: 100.0 for i in range(6)}
    tree = MonitoringTree(attrs, COST, capacities, central_capacity=math.inf)
    tree.add_node(0, None, {"a": 1.0})
    tree.add_node(1, 0, {"a": 1.0})
    tree.add_node(2, 1, {"a": 1.0})
    return tree


class TestUpdateLocal:
    def test_add_attribute_updates_costs_upstream(self):
        tree = tree_with_chain()
        before_root = tree.outgoing_values(0)
        assert tree.update_local(2, {"a": 1.0, "b": 1.0})
        assert tree.outgoing_values(2) == pytest.approx(2.0)
        assert tree.outgoing_values(0) == pytest.approx(before_root + 1.0)
        tree.validate()

    def test_remove_attribute_shrinks_costs(self):
        tree = tree_with_chain()
        tree.update_local(2, {"a": 1.0, "b": 1.0})
        send_before = tree.send_cost(0)
        assert tree.update_local(2, {"a": 1.0})
        assert tree.send_cost(0) < send_before
        tree.validate()

    def test_empty_demand_leaves_relay(self):
        tree = tree_with_chain()
        assert tree.update_local(1, {})
        assert tree.local_demand(1) == {}
        # Node 1 still relays node 2's value.
        assert tree.outgoing_values(1) == pytest.approx(1.0)
        assert tree.pair_count() == 2
        tree.validate()

    def test_infeasible_growth_reverts(self):
        # Root capacity exactly fits the current chain.
        tree = tree_with_chain()
        used = tree.used(0)
        tree.capacities = {0: used + 0.5, 1: 100.0, 2: 100.0}
        before = tree.local_demand(2)
        assert not tree.update_local(2, {"a": 1.0, "b": 1.0})
        assert tree.local_demand(2) == before
        tree.validate()

    def test_noop_update_succeeds(self):
        tree = tree_with_chain()
        assert tree.update_local(2, {"a": 1.0})
        tree.validate()

    def test_unknown_node_rejected(self):
        tree = tree_with_chain()
        with pytest.raises(ValueError):
            tree.update_local(99, {"a": 1.0})

    def test_foreign_attribute_rejected(self):
        tree = tree_with_chain()
        with pytest.raises(ValueError):
            tree.update_local(2, {"zzz": 1.0})

    def test_negative_weight_rejected(self):
        tree = tree_with_chain()
        with pytest.raises(ValueError):
            tree.update_local(2, {"a": -1.0})

    def test_pair_count_tracks_updates(self):
        tree = tree_with_chain()
        assert tree.pair_count() == 3
        tree.update_local(2, {"a": 1.0, "b": 1.0})
        assert tree.pair_count() == 4
        tree.update_local(2, {})
        assert tree.pair_count() == 2

    def test_message_weight_update(self):
        tree = tree_with_chain()
        assert tree.update_local(2, {"a": 0.5}, msg_weight=0.5)
        assert tree.message_weight(2) == pytest.approx(0.5)
        # Upstream still sends at full rate (its own weight is 1.0).
        assert tree.message_weight(0) == pytest.approx(1.0)
        tree.validate()

    def test_check_false_applies_unconditionally(self):
        tree = tree_with_chain()
        tree.capacities = {0: 0.1, 1: 0.1, 2: 0.1}
        assert tree.update_local(2, {"a": 1.0, "b": 1.0}, check=False)
        assert tree.local_demand(2) == {"a": 1.0, "b": 1.0}
