"""Tests for aggregation-aware planning (Section 6.1 / Fig. 12a)."""


from repro.core.attributes import pairs_for
from repro.core.cost import AggregationKind, CostModel
from repro.core.planner import RemoPlanner
from repro.ext.aggregation import uniform_aggregation

HEAVY = CostModel(per_message=10.0, per_value=1.0)


class TestUniformAggregation:
    def test_assigns_every_attribute(self):
        agg = uniform_aggregation(["a", "b"], AggregationKind.MAX)
        assert set(agg) == {"a", "b"}
        assert all(spec.kind is AggregationKind.MAX for spec in agg.values())

    def test_top_k_parameter(self):
        agg = uniform_aggregation(["a"], AggregationKind.TOP_K, k=3)
        assert agg["a"].k == 3


class TestAggregationAwarePlanning:
    def test_awareness_never_hurts_coverage(self, tight_cluster):
        pairs = pairs_for(range(20), ["a", "b", "c"])
        agg = uniform_aggregation(["a", "b", "c"], AggregationKind.MAX)
        oblivious = RemoPlanner(HEAVY).plan(pairs, tight_cluster)
        aware = RemoPlanner(HEAVY, aggregation=agg).plan(pairs, tight_cluster)
        assert aware.collected_pair_count() >= oblivious.collected_pair_count()

    def test_aware_plans_carry_less_traffic(self, tight_cluster):
        """MAX trees relay a single partial result per hop."""
        pairs = pairs_for(range(20), ["a"])
        agg = uniform_aggregation(["a"], AggregationKind.MAX)
        oblivious = RemoPlanner(HEAVY).plan(pairs, tight_cluster)
        aware = RemoPlanner(HEAVY, aggregation=agg).plan(pairs, tight_cluster)
        if aware.collected_pair_count() == oblivious.collected_pair_count():
            assert aware.total_message_cost() <= oblivious.total_message_cost()

    def test_plan_validates_under_aggregation(self, tight_cluster):
        pairs = pairs_for(range(20), ["a", "b"])
        agg = uniform_aggregation(["a", "b"], AggregationKind.SUM)
        plan = RemoPlanner(HEAVY, aggregation=agg).plan(pairs, tight_cluster)
        plan.validate(
            {n.node_id: n.capacity for n in tight_cluster},
            tight_cluster.central_capacity,
        )
