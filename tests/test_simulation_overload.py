"""Tests for graceful degradation under capacity overload."""

import pytest

from repro.cluster.node import Cluster, SimNode
from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.simulation import MonitoringSimulation, SimulationConfig

COST = CostModel(2.0, 1.0)


def overloaded_setup(root_budget_delta: float):
    """Plan against generous capacity, then simulate with the tree
    root's budget set to ``used + root_budget_delta`` (negative deltas
    overload it)."""
    plan_nodes = [
        SimNode(i, capacity=100.0, attributes=frozenset({"a"})) for i in range(8)
    ]
    plan_cluster = Cluster(plan_nodes, central_capacity=500.0)
    pairs = pairs_for(range(8), ["a"])
    plan = ForestBuilder(COST).build(Partition.one_set(["a"]), pairs, plan_cluster)
    tree = plan.trees[frozenset({"a"})].tree
    root = tree.root
    root_budget = max(tree.used(root) + root_budget_delta, 1e-6)
    sim_nodes = [
        SimNode(
            i,
            capacity=root_budget if i == root else 100.0,
            attributes=frozenset({"a"}),
        )
        for i in range(8)
    ]
    sim_cluster = Cluster(sim_nodes, central_capacity=500.0)
    return plan, sim_cluster


class TestPayloadTrimming:
    def test_mild_overload_trims_values_not_messages(self):
        plan, cluster = overloaded_setup(root_budget_delta=-2.0)
        stats = MonitoringSimulation(
            plan, cluster, config=SimulationConfig(seed=1)
        ).run(5)
        assert stats.values_trimmed > 0
        assert stats.messages_dropped_capacity == 0
        # Most pairs still arrive.
        assert stats.mean_fresh_coverage > 0.5

    def test_trimming_is_graded_in_overload(self):
        fresh = []
        for delta in (0.0, -2.0, -4.0):
            plan, cluster = overloaded_setup(root_budget_delta=delta)
            stats = MonitoringSimulation(
                plan, cluster, config=SimulationConfig(seed=1)
            ).run(5)
            fresh.append(stats.mean_fresh_coverage)
        assert fresh[0] >= fresh[1] >= fresh[2]
        assert fresh[0] == pytest.approx(1.0)

    def test_severe_overload_drops_whole_message(self):
        plan, cluster = overloaded_setup(root_budget_delta=-1e9)
        stats = MonitoringSimulation(
            plan, cluster, config=SimulationConfig(seed=1)
        ).run(5)
        assert stats.messages_dropped_capacity > 0

    def test_enforcement_off_ignores_budgets(self):
        plan, cluster = overloaded_setup(root_budget_delta=-1e9)
        stats = MonitoringSimulation(
            plan,
            cluster,
            config=SimulationConfig(seed=1, enforce_capacity=False),
        ).run(5)
        assert stats.messages_dropped_capacity == 0
        assert stats.values_trimmed == 0
        assert stats.mean_fresh_coverage == pytest.approx(1.0)


class TestEdgeMultiset:
    def test_rename_costs_nothing(self, small_cluster):
        """An attribute retired system-wide shrinks a set's label but not
        its structure: zero reconfiguration messages."""
        pairs_ab = pairs_for(range(6), ["a", "b"])
        pairs_a = pairs_for(range(6), ["a"])
        plan_ab = ForestBuilder(COST).build(
            Partition.one_set(["a", "b"]), pairs_ab, small_cluster
        )
        plan_a = ForestBuilder(COST).build(
            Partition.one_set(["a"]), pairs_a, small_cluster
        )
        # Same builder inputs modulo payload: structure may coincide; if
        # it does, the multiset diff must be zero despite different keys.
        if plan_ab.edge_multiset() == plan_a.edge_multiset():
            assert plan_a.adaptation_cost_from(plan_ab) == 0

    def test_multiset_diff_counts_multiplicity(self):
        from repro.core.plan import MonitoringPlan

        old = {(1, 0): 2, (2, 0): 1}
        new = {(1, 0): 1, (3, 0): 1}
        assert MonitoringPlan.edge_multiset_diff(old, new) == 3

    def test_structural_change_is_counted(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        split = ForestBuilder(COST).build(
            Partition([{"a"}, {"b"}]), pairs, small_cluster
        )
        merged = ForestBuilder(COST).build(
            Partition.one_set(["a", "b"]), pairs, small_cluster
        )
        assert merged.adaptation_cost_from(split) > 0
