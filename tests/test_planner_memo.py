"""Memoized candidate evaluation: cache transparency and bounds.

The planner threads a :class:`TreeMemo` through candidate evaluation
so unchanged partition sets reuse tree-construction results instead of
rebuilding.  The contract under test: memoization must be *invisible*
in the output (bit-identical plans with the memo on, off, or shrunk to
a single entry), bounded in size, and consistent with the tree
recompute oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.topology import default_attribute_pool, make_uniform_cluster
from repro.core.cost import CostModel
from repro.core.forest import TreeMemo
from repro.core.planner import RemoPlanner

COST = CostModel(per_message=4.0, per_value=1.0)


def _workload(n_nodes: int, seed: int):
    cluster = make_uniform_cluster(
        n_nodes=n_nodes,
        capacity=80.0,
        attrs_per_node=6,
        attribute_pool=default_attribute_pool(8),
        central_capacity=400.0,
        seed=seed,
    )
    from repro.workloads.tasks import TaskSampler

    tasks = TaskSampler(cluster, seed=seed + 1).sample_many(
        6, (2, 4), (3, max(4, n_nodes // 2))
    )
    return cluster, tasks


class TestTreeMemoUnit:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            TreeMemo(0)
        with pytest.raises(ValueError):
            TreeMemo(-3)

    def test_size_bound_holds_under_pressure(self):
        memo = TreeMemo(max_entries=2)
        for i in range(10):
            memo.put(("k", i), i)
            assert len(memo._entries) <= 2
        # Newest entries survive; the rest were evicted oldest-first.
        assert memo.get(("k", 9)) == 9
        assert memo.get(("k", 8)) == 8
        assert memo.get(("k", 0)) is None

    def test_lru_recency_protects_hit_entries(self):
        memo = TreeMemo(max_entries=2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refresh "a"
        memo.put("c", 3)  # evicts "b", the least recently used
        assert memo.get("a") == 1
        assert memo.get("b") is None
        assert memo.get("c") == 3

    def test_hit_miss_counters(self):
        memo = TreeMemo(max_entries=4)
        assert memo.get("x") is None
        memo.put("x", 1)
        assert memo.get("x") == 1
        assert (memo.hits, memo.misses) == (1, 1)


class TestMemoTransparency:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_nodes=st.integers(min_value=8, max_value=20),
        seed=st.integers(min_value=0, max_value=40),
    )
    def test_cached_and_cold_plans_identical(self, n_nodes, seed):
        """Property: the memo never changes the plan, only its cost."""
        cluster, tasks = _workload(n_nodes, seed)
        cached, _ = RemoPlanner(COST, memo_size=128).plan_with_stats(tasks, cluster)
        cold, _ = RemoPlanner(COST, memo_size=0).plan_with_stats(tasks, cluster)
        assert cached.fingerprint() == cold.fingerprint()

    def test_tiny_memo_identical_to_default(self):
        """Eviction churn (capacity 1) must not alter results either."""
        cluster, tasks = _workload(16, 7)
        tiny, _ = RemoPlanner(COST, memo_size=1).plan_with_stats(tasks, cluster)
        default, _ = RemoPlanner(COST).plan_with_stats(tasks, cluster)
        assert tiny.fingerprint() == default.fingerprint()

    def test_memo_counters_flow_into_stats(self):
        cluster, tasks = _workload(16, 3)
        _, stats = RemoPlanner(COST).plan_with_stats(tasks, cluster)
        assert stats.memo_misses > 0  # every build is at least a miss
        assert stats.memo_hits >= 0

    def test_memoized_trees_pass_recompute_oracle(self):
        """Ledger-keyed invalidation: every tree in a memoized plan must
        agree with a full bottom-up recompute of its cached state."""
        cluster, tasks = _workload(18, 11)
        plan, stats = RemoPlanner(COST, memo_size=128).plan_with_stats(tasks, cluster)
        assert stats.memo_misses > 0
        for result in plan.trees.values():
            result.tree.validate()
        plan.validate(
            {n.node_id: n.capacity for n in cluster}, cluster.central_capacity
        )
