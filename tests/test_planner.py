"""Unit tests for the REMO guided local-search planner."""

import pytest

from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.partition import Partition
from repro.core.planner import RemoPlanner, objective
from repro.core.schemes import OneSetPlanner, SingletonSetPlanner

HEAVY = CostModel(per_message=10.0, per_value=1.0)
LIGHT = CostModel(per_message=2.0, per_value=1.0)


class TestSearchMechanics:
    def test_stats_reflect_search_effort(self, medium_cluster):
        pairs = pairs_for(range(20), ["attr00", "attr01"])
        pairs = {p for p in pairs if medium_cluster.node(p.node).observes(p.attribute)}
        planner = RemoPlanner(HEAVY, candidate_budget=4, max_iterations=10)
        plan, stats = planner.plan_with_stats(pairs, medium_cluster)
        assert stats.iterations >= 1
        # Each iteration evaluates at most budget (+3 full-rebuild
        # fallbacks); initialization seeds add a handful more.
        seed_allowance = 8
        assert stats.candidates_evaluated <= stats.iterations * (4 + 3) + seed_allowance
        assert stats.elapsed_seconds > 0

    def test_merges_identical_node_sets(self, small_cluster):
        """Two attributes on the same nodes should share one tree."""
        pairs = pairs_for(range(6), ["a", "b"])
        planner = RemoPlanner(HEAVY)
        plan = planner.plan(pairs, small_cluster)
        assert plan.tree_count() == 1

    def test_objective_never_regresses(self, tight_cluster):
        pairs = pairs_for(range(20), ["a", "b", "c"])
        sp_plan = SingletonSetPlanner(LIGHT).plan(pairs, tight_cluster)
        remo_plan = RemoPlanner(LIGHT).plan(pairs, tight_cluster)
        assert objective(remo_plan) >= objective(sp_plan)

    def test_initial_partition_override(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        planner = RemoPlanner(LIGHT, max_iterations=1)
        plan = planner.plan(
            pairs, small_cluster, initial_partition=Partition.one_set(["a", "b"])
        )
        assert plan.coverage() > 0

    def test_initial_partition_universe_mismatch_rejected(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        planner = RemoPlanner(LIGHT)
        with pytest.raises(ValueError):
            planner.plan(
                pairs, small_cluster, initial_partition=Partition.one_set(["a", "b"])
            )

    def test_first_improvement_mode(self, medium_cluster):
        pairs = {
            p
            for p in pairs_for(range(40), ["attr00", "attr01", "attr02"])
            if p.node in medium_cluster
            and medium_cluster.node(p.node).observes(p.attribute)
        }
        eager = RemoPlanner(HEAVY, first_improvement=True)
        plan, stats = eager.plan_with_stats(pairs, medium_cluster)
        assert plan.coverage() > 0

    def test_forbidden_pairs_never_merged(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "a#r1"])
        planner = RemoPlanner(
            HEAVY, forbidden_pairs={frozenset({"a", "a#r1"})}
        )
        plan = planner.plan(pairs, small_cluster)
        for attr_set in plan.partition.sets:
            assert not {"a", "a#r1"} <= set(attr_set)

    def test_plan_validates(self, tight_cluster):
        pairs = pairs_for(range(20), ["a", "b", "c", "d"])
        plan = RemoPlanner(LIGHT).plan(pairs, tight_cluster)
        plan.validate(
            {n.node_id: n.capacity for n in tight_cluster},
            tight_cluster.central_capacity,
        )


class TestConfiguration:
    def test_bad_candidate_budget_rejected(self):
        with pytest.raises(ValueError):
            RemoPlanner(LIGHT, candidate_budget=0)

    def test_bad_max_iterations_rejected(self):
        with pytest.raises(ValueError):
            RemoPlanner(LIGHT, max_iterations=0)

    def test_unbounded_budget_allowed(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b"])
        planner = RemoPlanner(HEAVY, candidate_budget=None, max_iterations=4)
        assert planner.plan(pairs, small_cluster).coverage() > 0

    def test_empty_workload_rejected(self, small_cluster):
        with pytest.raises(ValueError):
            RemoPlanner(LIGHT).plan([], small_cluster)


class TestAgainstBaselines:
    def test_beats_or_matches_both_baselines_heavy_overhead(self, medium_cluster):
        pairs = {
            p
            for p in pairs_for(range(40), ["attr%02d" % i for i in range(8)])
            if p.node in medium_cluster
            and medium_cluster.node(p.node).observes(p.attribute)
        }
        sp = SingletonSetPlanner(HEAVY).plan(pairs, medium_cluster)
        op = OneSetPlanner(HEAVY).plan(pairs, medium_cluster)
        remo = RemoPlanner(HEAVY).plan(pairs, medium_cluster)
        assert remo.collected_pair_count() >= sp.collected_pair_count()
        assert remo.collected_pair_count() >= op.collected_pair_count()

    def test_light_load_prefers_fewer_trees_than_singleton(self, small_cluster):
        pairs = pairs_for(range(6), ["a", "b", "c"])
        remo = RemoPlanner(HEAVY).plan(pairs, small_cluster)
        sp = SingletonSetPlanner(HEAVY).plan(pairs, small_cluster)
        assert remo.tree_count() <= sp.tree_count()
        assert remo.total_message_cost() <= sp.total_message_cost()
