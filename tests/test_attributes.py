"""Unit tests for node-attribute pair primitives."""

import pytest

from repro.core.attributes import (
    NodeAttributePair,
    attributes_of,
    group_by_attribute,
    group_by_node,
    nodes_of,
    pairs_for,
)


class TestNodeAttributePair:
    def test_fields(self):
        pair = NodeAttributePair(3, "cpu")
        assert pair.node == 3
        assert pair.attribute == "cpu"

    def test_as_tuple(self):
        assert NodeAttributePair(1, "mem").as_tuple() == (1, "mem")

    def test_hashable_and_equal(self):
        assert NodeAttributePair(1, "a") == NodeAttributePair(1, "a")
        assert len({NodeAttributePair(1, "a"), NodeAttributePair(1, "a")}) == 1

    def test_distinct_nodes_differ(self):
        assert NodeAttributePair(1, "a") != NodeAttributePair(2, "a")

    def test_ordering_is_total(self):
        pairs = [NodeAttributePair(2, "a"), NodeAttributePair(1, "b"), NodeAttributePair(1, "a")]
        ordered = sorted(pairs)
        assert ordered[0] == NodeAttributePair(1, "a")
        assert ordered[-1] == NodeAttributePair(2, "a")

    def test_immutable(self):
        pair = NodeAttributePair(0, "a")
        with pytest.raises(AttributeError):
            pair.node = 5


class TestHelpers:
    def test_pairs_for_is_cross_product(self):
        pairs = pairs_for([1, 2], ["a", "b"])
        assert len(pairs) == 4
        assert NodeAttributePair(2, "b") in pairs

    def test_pairs_for_empty_nodes(self):
        assert pairs_for([], ["a"]) == set()

    def test_attributes_of(self):
        pairs = pairs_for([1, 2], ["a", "b"])
        assert attributes_of(pairs) == {"a", "b"}

    def test_nodes_of(self):
        pairs = pairs_for([1, 2], ["a"])
        assert nodes_of(pairs) == {1, 2}

    def test_group_by_attribute(self):
        pairs = pairs_for([1, 2], ["a"]) | {NodeAttributePair(3, "b")}
        grouped = group_by_attribute(pairs)
        assert grouped["a"] == {1, 2}
        assert grouped["b"] == {3}

    def test_group_by_node(self):
        pairs = pairs_for([1], ["a", "b"]) | {NodeAttributePair(2, "a")}
        grouped = group_by_node(pairs)
        assert grouped[1] == {"a", "b"}
        assert grouped[2] == {"a"}
