"""Tests for SSDP/DSDP replication (Section 6.2 / Fig. 12b)."""

import pytest

from repro.cluster.metrics import MetricRegistry
from repro.core.attributes import NodeAttributePair
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.core.schemes import observable_pairs
from repro.core.tasks import MonitoringTask
from repro.ext.reliability import (
    ReplicatedRegistry,
    alias_cluster,
    alias_name,
    base_of,
    replica_plan_coverage,
    rewrite_dsdp,
    rewrite_ssdp,
)

COST = CostModel(4.0, 1.0)


class TestNaming:
    def test_alias_roundtrip(self):
        assert alias_name("cpu", 0) == "cpu"
        assert alias_name("cpu", 2) == "cpu#r2"
        assert base_of("cpu#r2") == "cpu"
        assert base_of("cpu") == "cpu"

    def test_base_of_ignores_lookalikes(self):
        assert base_of("metric#rx") == "metric#rx"


class TestSsdpRewrite:
    def test_factor_two_duplicates_tasks(self):
        tasks = [MonitoringTask("t", ["a", "b"], [1, 2])]
        rewrite = rewrite_ssdp(tasks, factor=2)
        assert len(rewrite.tasks) == 2
        replica = rewrite.tasks[1]
        assert replica.attributes == {"a#r1", "b#r1"}
        assert replica.nodes == {1, 2}

    def test_forbidden_pairs_separate_aliases(self):
        tasks = [MonitoringTask("t", ["a"], [1])]
        rewrite = rewrite_ssdp(tasks, factor=3)
        assert frozenset({"a", "a#r1"}) in rewrite.forbidden_pairs
        assert frozenset({"a", "a#r2"}) in rewrite.forbidden_pairs
        assert frozenset({"a#r1", "a#r2"}) in rewrite.forbidden_pairs

    def test_factor_one_is_identity(self):
        tasks = [MonitoringTask("t", ["a"], [1])]
        rewrite = rewrite_ssdp(tasks, factor=1)
        assert len(rewrite.tasks) == 1
        assert rewrite.forbidden_pairs == set()

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            rewrite_ssdp([], factor=0)


class TestDsdpRewrite:
    def test_replica_count_is_min_group_size(self):
        rewrite = rewrite_dsdp("t", "disk", [[1, 2, 3], [4, 5]])
        assert len(rewrite.tasks) == 2  # min(3, 2)

    def test_replicas_pick_distinct_nodes(self):
        rewrite = rewrite_dsdp("t", "disk", [[1, 2], [3, 4]])
        nodes_0 = rewrite.tasks[0].nodes
        nodes_1 = rewrite.tasks[1].nodes
        assert nodes_0 == {1, 3}
        assert nodes_1 == {2, 4}

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            rewrite_dsdp("t", "disk", [[]])


class TestPlannedReplication:
    def test_aliases_end_up_in_distinct_trees(self, small_cluster):
        tasks = [MonitoringTask("t", ["a"], range(6))]
        rewrite = rewrite_ssdp(tasks, factor=2)
        cluster = alias_cluster(small_cluster, rewrite)
        planner = RemoPlanner(COST, forbidden_pairs=rewrite.forbidden_pairs)
        plan = planner.plan(rewrite.tasks, cluster)
        for attr_set in plan.partition.sets:
            assert not {"a", "a#r1"} <= set(attr_set)

    def test_replica_coverage_counts_any_path(self, small_cluster):
        tasks = [MonitoringTask("t", ["a"], range(6))]
        rewrite = rewrite_ssdp(tasks, factor=2)
        cluster = alias_cluster(small_cluster, rewrite)
        planner = RemoPlanner(COST, forbidden_pairs=rewrite.forbidden_pairs)
        plan = planner.plan(rewrite.tasks, cluster)
        assert replica_plan_coverage(plan, rewrite) >= plan.coverage() - 1e-9

    def test_alias_cluster_extends_observability(self, small_cluster):
        tasks = [MonitoringTask("t", ["a"], range(6))]
        rewrite = rewrite_ssdp(tasks, factor=2)
        cluster = alias_cluster(small_cluster, rewrite)
        assert cluster.node(0).observes("a#r1")
        pairs = observable_pairs(rewrite.tasks, cluster)
        assert NodeAttributePair(0, "a#r1") in pairs


class TestReplicatedRegistry:
    def test_alias_reads_base_truth(self):
        base_pair = NodeAttributePair(0, "a")
        base = MetricRegistry([base_pair], seed=1)
        registry = ReplicatedRegistry(base, {"a#r1": "a"})
        alias_pair = NodeAttributePair(0, "a#r1")
        assert registry.value(alias_pair) == pytest.approx(base.value(base_pair))
        registry.advance_all()
        assert registry.value(alias_pair) == pytest.approx(base.value(base_pair))

    def test_contains_and_ensure(self):
        base_pair = NodeAttributePair(0, "a")
        base = MetricRegistry([base_pair], seed=1)
        registry = ReplicatedRegistry(base, {"a#r1": "a"})
        assert NodeAttributePair(0, "a#r1") in registry
        registry.ensure(NodeAttributePair(0, "a#r1"))
        assert len(registry) == 1
