"""Unit tests for monitoring tasks and the de-duplicating task manager."""

import pytest

from repro.core.attributes import NodeAttributePair
from repro.core.tasks import (
    DuplicateTaskError,
    MonitoringTask,
    TaskManager,
    UnknownTaskError,
)


class TestMonitoringTask:
    def test_pairs_is_cross_product(self):
        task = MonitoringTask("t", ["a", "b"], [1, 2])
        assert task.pairs() == {
            NodeAttributePair(1, "a"),
            NodeAttributePair(1, "b"),
            NodeAttributePair(2, "a"),
            NodeAttributePair(2, "b"),
        }

    def test_size(self):
        assert MonitoringTask("t", ["a", "b"], [1, 2, 3]).size == 6

    def test_rejects_empty_attributes(self):
        with pytest.raises(ValueError):
            MonitoringTask("t", [], [1])

    def test_rejects_empty_nodes(self):
        with pytest.raises(ValueError):
            MonitoringTask("t", ["a"], [])

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            MonitoringTask("", ["a"], [1])

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            MonitoringTask("t", ["a"], [1], frequency=0.0)
        with pytest.raises(ValueError):
            MonitoringTask("t", ["a"], [1], frequency=1.5)

    def test_with_attributes_keeps_rest(self):
        task = MonitoringTask("t", ["a"], [1], frequency=0.5)
        updated = task.with_attributes(["b", "c"])
        assert updated.attributes == {"b", "c"}
        assert updated.nodes == {1}
        assert updated.frequency == 0.5

    def test_with_nodes(self):
        task = MonitoringTask("t", ["a"], [1])
        assert task.with_nodes([2, 3]).nodes == {2, 3}


class TestTaskManagerDeduplication:
    def test_duplicate_pair_counted_once(self):
        """The paper's motivating example: cpu on node b shared by t1, t2."""
        manager = TaskManager()
        manager.add_task(MonitoringTask("t1", ["cpu"], ["a", "b"]))
        manager.add_task(MonitoringTask("t2", ["cpu"], ["b", "c"]))
        assert manager.pair_count() == 3
        assert manager.multiplicity(NodeAttributePair("b", "cpu")) == 2

    def test_add_reports_only_new_pairs(self):
        manager = TaskManager()
        manager.add_task(MonitoringTask("t1", ["cpu"], [1, 2]))
        delta = manager.add_task(MonitoringTask("t2", ["cpu"], [2, 3]))
        assert delta.added == frozenset({NodeAttributePair(3, "cpu")})
        assert delta.removed == frozenset()

    def test_remove_keeps_shared_pairs(self):
        manager = TaskManager()
        manager.add_task(MonitoringTask("t1", ["cpu"], [1, 2]))
        manager.add_task(MonitoringTask("t2", ["cpu"], [2, 3]))
        delta = manager.remove_task("t1")
        assert delta.removed == frozenset({NodeAttributePair(1, "cpu")})
        assert NodeAttributePair(2, "cpu") in manager.pairs()

    def test_modify_nets_out(self):
        manager = TaskManager()
        manager.add_task(MonitoringTask("t", ["a"], [1, 2]))
        delta = manager.modify_task(MonitoringTask("t", ["a"], [2, 3]))
        assert delta.added == frozenset({NodeAttributePair(3, "a")})
        assert delta.removed == frozenset({NodeAttributePair(1, "a")})

    def test_duplicate_id_rejected(self):
        manager = TaskManager([MonitoringTask("t", ["a"], [1])])
        with pytest.raises(DuplicateTaskError):
            manager.add_task(MonitoringTask("t", ["b"], [2]))

    def test_unknown_id_rejected(self):
        with pytest.raises(UnknownTaskError):
            TaskManager().remove_task("nope")

    def test_tasks_requiring(self):
        manager = TaskManager(
            [
                MonitoringTask("t1", ["a"], [1]),
                MonitoringTask("t2", ["a", "b"], [1, 2]),
            ]
        )
        requiring = manager.tasks_requiring(NodeAttributePair(1, "a"))
        assert {t.task_id for t in requiring} == {"t1", "t2"}

    def test_len_and_contains(self):
        manager = TaskManager([MonitoringTask("t", ["a"], [1])])
        assert len(manager) == 1
        assert "t" in manager
        assert "x" not in manager


class TestTaskManagerBatches:
    def test_batch_add_remove_cancels(self):
        manager = TaskManager()
        task = MonitoringTask("t", ["a"], [1])
        delta = manager.apply([("add", task), ("remove", task)])
        assert delta.is_empty
        assert len(manager) == 0

    def test_batch_modify_sequence_nets(self):
        manager = TaskManager([MonitoringTask("t", ["a"], [1])])
        delta = manager.apply(
            [
                ("modify", MonitoringTask("t", ["b"], [1])),
                ("modify", MonitoringTask("t", ["a"], [1])),
            ]
        )
        assert delta.is_empty

    def test_batch_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            TaskManager().apply([("replace", MonitoringTask("t", ["a"], [1]))])

    def test_refcount_never_negative(self):
        manager = TaskManager()
        manager.add_task(MonitoringTask("t1", ["a"], [1]))
        manager.remove_task("t1")
        assert manager.pair_count() == 0
        assert manager.multiplicity(NodeAttributePair(1, "a")) == 0
