"""Additional forest-builder coverage: pre-divided central slices,
builder substitution, and aggregation plumbing."""

import pytest

from repro.core.allocation import AllocationPolicy
from repro.core.attributes import pairs_for
from repro.core.cost import AggregationKind, AggregationSpec, CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.trees.chain import ChainTreeBuilder
from repro.trees.star import StarTreeBuilder

COST = CostModel(2.0, 1.0)


class TestPredividedCentral:
    def test_uniform_splits_collector_evenly(self, tight_cluster):
        pairs = pairs_for(range(20), ["a", "b"])
        plan = ForestBuilder(COST, allocation=AllocationPolicy.UNIFORM).build(
            Partition([{"a"}, {"b"}]), pairs, tight_cluster
        )
        # Each tree's root message must fit half the collector budget.
        half = tight_cluster.central_capacity / 2
        for result in plan.trees.values():
            assert result.tree.central_used() <= half + 1e-9

    def test_proportional_weights_by_volume(self, tight_cluster):
        # Attribute "a" requested on all 20 nodes, "b" on none after
        # clipping... use uneven pair sets instead.
        pairs = pairs_for(range(20), ["a"]) | pairs_for(range(4), ["b"])
        plan = ForestBuilder(COST, allocation=AllocationPolicy.PROPORTIONAL).build(
            Partition([{"a"}, {"b"}]), pairs, tight_cluster
        )
        plan.validate(
            {n.node_id: n.capacity for n in tight_cluster},
            tight_cluster.central_capacity,
        )
        big = plan.trees[frozenset({"a"})].tree
        small = plan.trees[frozenset({"b"})].tree
        # The big set's tree gets the larger collector slice, hence can
        # deliver at least as many pairs.
        assert big.pair_count() >= small.pair_count()


class TestBuilderSubstitution:
    @pytest.mark.parametrize("builder_cls", [StarTreeBuilder, ChainTreeBuilder])
    def test_forest_accepts_any_builder(self, small_cluster, builder_cls):
        pairs = pairs_for(range(6), ["a", "b"])
        forest = ForestBuilder(COST, tree_builder=builder_cls(COST))
        plan = forest.build(Partition([{"a"}, {"b"}]), pairs, small_cluster)
        assert plan.coverage() == pytest.approx(1.0)
        for result in plan.trees.values():
            result.tree.validate()

    def test_chain_forest_is_deeper_than_star_forest(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        star = ForestBuilder(COST, tree_builder=StarTreeBuilder(COST)).build(
            Partition([{"a"}]), pairs, small_cluster
        )
        chain = ForestBuilder(COST, tree_builder=ChainTreeBuilder(COST)).build(
            Partition([{"a"}]), pairs, small_cluster
        )
        assert chain.max_tree_depth() > star.max_tree_depth()


class TestAggregationPlumbing:
    def test_forest_passes_aggregation_to_trees(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        agg = {"a": AggregationSpec(AggregationKind.SUM)}
        plan = ForestBuilder(COST, aggregation=agg).build(
            Partition([{"a"}]), pairs, small_cluster
        )
        tree = plan.trees[frozenset({"a"})].tree
        # Root forwards a single partial sum regardless of tree size.
        assert tree.outgoing_values(tree.root) == pytest.approx(1.0)

    def test_aggregated_forest_carries_less_traffic(self, small_cluster):
        pairs = pairs_for(range(6), ["a"])
        plain = ForestBuilder(COST).build(Partition([{"a"}]), pairs, small_cluster)
        agg = ForestBuilder(
            COST, aggregation={"a": AggregationSpec(AggregationKind.MAX)}
        ).build(Partition([{"a"}]), pairs, small_cluster)
        assert agg.total_message_cost() < plain.total_message_cost()
