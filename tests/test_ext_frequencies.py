"""Tests for heterogeneous update frequency support (Section 6.3)."""

import pytest

from repro.core.attributes import NodeAttributePair
from repro.core.cost import CostModel
from repro.core.planner import RemoPlanner
from repro.core.tasks import MonitoringTask, TaskManager
from repro.ext.frequencies import frequency_weights

HEAVY = CostModel(10.0, 1.0)


class TestFrequencyWeights:
    def test_pair_weight_is_max_over_tasks(self):
        tasks = [
            MonitoringTask("slow", ["a"], [1], frequency=0.25),
            MonitoringTask("fast", ["a"], [1], frequency=1.0),
        ]
        inputs = frequency_weights(tasks)
        assert inputs.pair_weights[NodeAttributePair(1, "a")] == pytest.approx(1.0)

    def test_msg_weight_is_node_max(self):
        tasks = [
            MonitoringTask("t1", ["a"], [1], frequency=0.2),
            MonitoringTask("t2", ["b"], [1], frequency=0.6),
        ]
        inputs = frequency_weights(tasks)
        assert inputs.msg_weights[1] == pytest.approx(0.6)

    def test_accepts_task_manager(self):
        manager = TaskManager([MonitoringTask("t", ["a"], [1], frequency=0.5)])
        inputs = frequency_weights(manager)
        assert inputs.pair_weights[NodeAttributePair(1, "a")] == pytest.approx(0.5)

    def test_uniform_frequency_is_all_ones(self):
        tasks = [MonitoringTask("t", ["a", "b"], [1, 2])]
        inputs = frequency_weights(tasks)
        assert all(w == 1.0 for w in inputs.pair_weights.values())
        assert all(w == 1.0 for w in inputs.msg_weights.values())


class TestFrequencyAwarePlanning:
    def test_awareness_never_hurts(self, tight_cluster):
        tasks = [
            MonitoringTask("fast", ["a", "b"], range(20), frequency=1.0),
            MonitoringTask("slow", ["c", "d"], range(20), frequency=0.25),
        ]
        inputs = frequency_weights(tasks)
        oblivious = RemoPlanner(HEAVY).plan(tasks, tight_cluster)
        aware = RemoPlanner(HEAVY).plan(
            tasks,
            tight_cluster,
            pair_weights=inputs.pair_weights,
            msg_weights=inputs.msg_weights,
        )
        assert aware.collected_pair_count() >= oblivious.collected_pair_count()

    def test_slow_pairs_cost_less_traffic(self, small_cluster):
        tasks_fast = [MonitoringTask("t", ["a"], range(6), frequency=1.0)]
        tasks_slow = [MonitoringTask("t", ["a"], range(6), frequency=0.25)]
        fast_in = frequency_weights(tasks_fast)
        slow_in = frequency_weights(tasks_slow)
        fast = RemoPlanner(HEAVY).plan(
            tasks_fast, small_cluster,
            pair_weights=fast_in.pair_weights, msg_weights=fast_in.msg_weights,
        )
        slow = RemoPlanner(HEAVY).plan(
            tasks_slow, small_cluster,
            pair_weights=slow_in.pair_weights, msg_weights=slow_in.msg_weights,
        )
        assert slow.total_message_cost() < fast.total_message_cost()

    def test_plan_validates_with_weights(self, tight_cluster):
        tasks = [
            MonitoringTask("fast", ["a"], range(20), frequency=1.0),
            MonitoringTask("slow", ["b"], range(20), frequency=0.5),
        ]
        inputs = frequency_weights(tasks)
        plan = RemoPlanner(HEAVY).plan(
            tasks,
            tight_cluster,
            pair_weights=inputs.pair_weights,
            msg_weights=inputs.msg_weights,
        )
        plan.validate(
            {n.node_id: n.capacity for n in tight_cluster},
            tight_cluster.central_capacity,
        )
