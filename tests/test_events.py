"""Unit tests for the discrete-event queue."""

import pytest

from repro.simulation.events import EventQueue


class TestEventQueue:
    def test_fires_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda t: fired.append(("b", t)))
        queue.schedule(1.0, lambda t: fired.append(("a", t)))
        queue.run_until(3.0)
        assert fired == [("a", 1.0), ("b", 2.0)]

    def test_same_time_fires_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for name in "xyz":
            queue.schedule(1.0, lambda t, n=name: fired.append(n))
        queue.run_until(1.0)
        assert fired == ["x", "y", "z"]

    def test_run_until_leaves_later_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda t: fired.append(1))
        queue.schedule(5.0, lambda t: fired.append(5))
        assert queue.run_until(2.0) == 1
        assert fired == [1]
        assert len(queue) == 1

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, lambda t: fired.append("nope"))
        event.cancel()
        queue.run_until(2.0)
        assert fired == []

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        fired = []

        def chain(t):
            fired.append(t)
            if t < 3:
                queue.schedule(t + 1, chain)

        queue.schedule(1.0, chain)
        queue.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_scheduling_in_past_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda t: None)
        queue.run_until(5.0)
        with pytest.raises(ValueError):
            queue.schedule(1.0, lambda t: None)

    def test_run_all_with_limit(self):
        queue = EventQueue()
        for i in range(10):
            queue.schedule(float(i), lambda t: None)
        assert queue.run_all(max_events=4) == 4
        assert len(queue) == 6

    def test_now_tracks_last_fired(self):
        queue = EventQueue()
        queue.schedule(3.5, lambda t: None)
        queue.run_until(4.0)
        assert queue.now == pytest.approx(4.0)
