"""Crash/recovery paths in the discrete-event simulator.

`tests/test_simulation.py` covers the basic outage plumbing; this file
exercises the interesting trajectories: a node that crashes mid-run and
comes back, an *interior* tree node that dies mid-period taking its
whole subtree dark, and the collector's stale-reading behaviour while
a path is severed.
"""

import pytest

from repro.core.attributes import pairs_for
from repro.core.cost import CostModel
from repro.core.forest import ForestBuilder
from repro.core.partition import Partition
from repro.simulation import (
    FailureInjector,
    LinkOutage,
    MonitoringSimulation,
    NodeOutage,
    SimulationConfig,
)

COST = CostModel(2.0, 1.0)


def one_tree_plan(cluster, n_nodes=6):
    pairs = pairs_for(range(n_nodes), ["a"])
    return ForestBuilder(COST).build(Partition.one_set(["a"]), pairs, cluster)


def interior_node(tree):
    """A node with both a parent and children, if the tree has one."""
    for node in tree.nodes:
        if tree.parent(node) is not None and tree.children(node):
            return node
    return None


def run(plan, cluster, periods, injector=None, seed=1):
    return MonitoringSimulation(
        plan,
        cluster,
        config=SimulationConfig(seed=seed),
        failures=injector or FailureInjector(),
    ).run(periods)


class TestCrashRecovery:
    def test_freshness_dips_then_recovers(self, small_cluster):
        plan = one_tree_plan(small_cluster)
        tree = plan.trees[frozenset({"a"})].tree
        leaf = next(n for n in tree.nodes if not tree.children(n))
        injector = FailureInjector(node_outages=[NodeOutage(leaf, 2.0, 5.0)])
        stats = run(plan, small_cluster, 9, injector)
        dark = [p.fresh_fraction for p in stats.periods if 2 <= p.period < 5]
        after = [p.fresh_fraction for p in stats.periods if p.period >= 5]
        before = [p.fresh_fraction for p in stats.periods if p.period < 2]
        assert max(dark) < 1.0
        assert before[-1] == pytest.approx(1.0)
        assert after[-1] == pytest.approx(1.0)

    def test_error_rises_during_outage_and_recovers(self, small_cluster):
        plan = one_tree_plan(small_cluster)
        tree = plan.trees[frozenset({"a"})].tree
        leaf = next(n for n in tree.nodes if not tree.children(n))
        injector = FailureInjector(node_outages=[NodeOutage(leaf, 2.0, 6.0)])
        stats = run(plan, small_cluster, 10, injector)
        dark_error = max(p.mean_error for p in stats.periods if 3 <= p.period < 6)
        final_error = stats.periods[-1].mean_error
        # Stale readings drift away from the truth while the node is
        # dark, then snap back once it reports again.
        assert dark_error > final_error

    def test_collector_keeps_stale_readings_through_outage(self, small_cluster):
        # Crash severs freshness but NOT received coverage: the
        # collector holds the last reading it saw for every pair.
        plan = one_tree_plan(small_cluster)
        tree = plan.trees[frozenset({"a"})].tree
        leaf = next(n for n in tree.nodes if not tree.children(n))
        injector = FailureInjector(node_outages=[NodeOutage(leaf, 2.0, 5.0)])
        stats = run(plan, small_cluster, 8, injector)
        dark = [p for p in stats.periods if 2 <= p.period < 5]
        assert all(p.received_fraction == pytest.approx(1.0) for p in dark)
        assert any(p.fresh_fraction < 1.0 for p in dark)

    def test_drop_counts_bound_by_outage_window(self, small_cluster):
        plan = one_tree_plan(small_cluster)
        tree = plan.trees[frozenset({"a"})].tree
        leaf = next(n for n in tree.nodes if not tree.children(n))
        short = FailureInjector(node_outages=[NodeOutage(leaf, 2.0, 3.0)])
        long = FailureInjector(node_outages=[NodeOutage(leaf, 2.0, 7.0)])
        short_stats = run(plan, small_cluster, 9, short)
        long_stats = run(plan, small_cluster, 9, long)
        assert 0 < short_stats.messages_dropped_failure
        assert short_stats.messages_dropped_failure < long_stats.messages_dropped_failure


class TestInteriorNodeFailure:
    def test_interior_crash_takes_subtree_dark(self, small_cluster):
        plan = one_tree_plan(small_cluster)
        tree = plan.trees[frozenset({"a"})].tree
        victim = interior_node(tree)
        assert victim is not None, "ONE-SET over 6 nodes should build a multi-level tree"
        subtree = tree.subtree_nodes(victim)
        injector = FailureInjector(node_outages=[NodeOutage(victim, 2.0, 5.0)])
        stats = run(plan, small_cluster, 8, injector)
        # Everything below the dead hop goes stale, not just the victim.
        dark_fresh = min(p.fresh_fraction for p in stats.periods if 2 <= p.period < 5)
        assert dark_fresh <= 1.0 - len(subtree) / len(plan.pairs) + 1e-9
        assert stats.periods[-1].fresh_fraction == pytest.approx(1.0)

    def test_interior_crash_mid_period_loses_that_periods_wave(self, small_cluster):
        # An outage window covering only a fraction of one period still
        # kills the sends scheduled inside it: the wave fires near the
        # period start, so [2.0, 2.5) is enough to lose period 2.
        plan = one_tree_plan(small_cluster)
        tree = plan.trees[frozenset({"a"})].tree
        victim = interior_node(tree)
        assert victim is not None
        injector = FailureInjector(node_outages=[NodeOutage(victim, 2.0, 2.5)])
        stats = run(plan, small_cluster, 6, injector)
        assert stats.messages_dropped_failure > 0
        assert stats.periods[2].fresh_fraction < 1.0
        # One period later the subtree's values flow again.
        assert stats.periods[4].fresh_fraction == pytest.approx(1.0)

    def test_link_outage_equivalent_to_silencing_the_edge(self, small_cluster):
        plan = one_tree_plan(small_cluster)
        attr_set = frozenset({"a"})
        tree = plan.trees[attr_set].tree
        victim = interior_node(tree)
        assert victim is not None
        injector = FailureInjector(
            link_outages=[LinkOutage(victim, attr_set, 2.0, 5.0)]
        )
        stats = run(plan, small_cluster, 8, injector)
        # The victim still receives its children's batches (only its
        # uplink is down), but nothing it relays gets through.
        assert stats.messages_dropped_failure > 0
        assert any(p.fresh_fraction < 1.0 for p in stats.periods if 2 <= p.period < 5)
        assert stats.periods[-1].fresh_fraction == pytest.approx(1.0)


class TestInjectorSemantics:
    def test_blocks_checks_sender_receiver_and_link(self):
        attrs = frozenset({"a"})
        injector = FailureInjector(
            link_outages=[LinkOutage(1, attrs, 0.0, 10.0)],
            node_outages=[NodeOutage(2, 0.0, 10.0)],
        )
        assert injector.blocks(1, 0, attrs, 5.0)  # link down
        assert injector.blocks(2, 0, attrs, 5.0)  # sender down
        assert injector.blocks(0, 2, attrs, 5.0)  # receiver down
        assert not injector.blocks(0, 3, attrs, 5.0)
        # The collector (address -1) is never "down".
        assert not injector.blocks(0, -1, attrs, 5.0)

    def test_outage_windows_are_half_open(self):
        injector = FailureInjector(node_outages=[NodeOutage(1, 2.0, 5.0)])
        assert not injector.node_down(1, 1.999)
        assert injector.node_down(1, 2.0)
        assert injector.node_down(1, 4.999)
        assert not injector.node_down(1, 5.0)

    def test_random_outages_deterministic_for_seed(self):
        edges = [(i, frozenset({"a"})) for i in range(50)]
        a = FailureInjector.random_link_outages(edges, 0.5, 2.0, 20.0, seed=7)
        b = FailureInjector.random_link_outages(edges, 0.5, 2.0, 20.0, seed=7)
        assert a.link_outages == b.link_outages
        assert 0 < len(a.link_outages) < 50

    def test_random_outages_reject_bad_probability(self):
        with pytest.raises(ValueError):
            FailureInjector.random_link_outages([], 1.5, 1.0, 10.0)
