"""Additional adaptation-service coverage: no-op batches, repeated
optimization, and interaction with extensions."""


from repro.core.adaptation import AdaptationStrategy, AdaptiveMonitoringService
from repro.core.cost import AggregationKind, AggregationSpec, CostModel
from repro.core.tasks import MonitoringTask

COST = CostModel(per_message=6.0, per_value=1.0)


class TestEdgeCases:
    def test_empty_batch_is_cheap_noop(self, small_cluster):
        svc = AdaptiveMonitoringService(
            small_cluster, COST, strategy=AdaptationStrategy.ADAPTIVE
        )
        svc.initialize([MonitoringTask("t", ["a", "b"], range(6))], now=0.0)
        before = svc.plan.edge_multiset()
        report = svc.apply_changes([], now=1.0)
        assert report.adaptation_messages == 0
        assert svc.plan.edge_multiset() == before

    def test_first_change_without_initialize_plans_fresh(self, small_cluster):
        svc = AdaptiveMonitoringService(
            small_cluster, COST, strategy=AdaptationStrategy.ADAPTIVE
        )
        report = svc.apply_changes(
            [("add", MonitoringTask("t", ["a"], range(6)))], now=0.0
        )
        assert svc.plan is not None
        # Everything is new: every edge counts as a reconfiguration.
        assert report.adaptation_messages == sum(svc.plan.edge_multiset().values())
        assert report.collected_pairs > 0

    def test_readd_after_full_removal(self, small_cluster):
        svc = AdaptiveMonitoringService(
            small_cluster, COST, strategy=AdaptationStrategy.DIRECT_APPLY
        )
        task = MonitoringTask("t", ["a"], range(6))
        svc.initialize([task], now=0.0)
        svc.apply_changes([("remove", task)], now=1.0)
        assert svc.plan is None
        report = svc.apply_changes([("add", task)], now=2.0)
        assert svc.plan is not None
        assert report.coverage > 0

    def test_repeated_batches_converge(self, medium_cluster):
        """Applying the same modification repeatedly must not churn."""
        svc = AdaptiveMonitoringService(
            medium_cluster, COST, strategy=AdaptationStrategy.ADAPTIVE
        )
        svc.initialize(
            [MonitoringTask("t", ["attr00", "attr01"], range(20))], now=0.0
        )
        task = MonitoringTask("t", ["attr00", "attr02"], range(20))
        first = svc.apply_changes([("modify", task)], now=1.0)
        second = svc.apply_changes([("modify", task)], now=2.0)
        assert second.adaptation_messages <= first.adaptation_messages

    def test_service_with_aggregation(self, small_cluster):
        svc = AdaptiveMonitoringService(
            small_cluster,
            COST,
            strategy=AdaptationStrategy.ADAPTIVE,
            aggregation={"a": AggregationSpec(AggregationKind.MAX)},
        )
        report = svc.initialize(
            [MonitoringTask("t", ["a", "b"], range(6))], now=0.0
        )
        assert report.coverage > 0
        svc.plan.validate(
            {n.node_id: n.capacity for n in small_cluster},
            small_cluster.central_capacity,
        )

    def test_plan_survives_attribute_swap_cycle(self, small_cluster):
        svc = AdaptiveMonitoringService(
            small_cluster, COST, strategy=AdaptationStrategy.NO_THROTTLE
        )
        svc.initialize([MonitoringTask("t", ["a", "b"], range(6))], now=0.0)
        caps = {n.node_id: n.capacity for n in small_cluster}
        for step, attrs in enumerate([["b", "c"], ["c", "a"], ["a", "b"]]):
            svc.apply_changes(
                [("modify", MonitoringTask("t", attrs, range(6)))],
                now=float(step + 1),
            )
            svc.plan.validate(caps, small_cluster.central_capacity)
        assert {a for s in svc.plan.partition.sets for a in s} == {"a", "b"}
