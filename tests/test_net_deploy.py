"""Tests for ``repro deploy``: sharding, specs, and real multi-process runs.

The end-to-end tests spawn genuine worker processes over loopback TCP.
This module stays import-safe for the ``spawn`` start method: children
re-import it as a plain module, never as ``__main__`` with side
effects.
"""

import json

import pytest

from repro.checks import check_shard_assignment
from repro.cli import main
from repro.cluster.metrics import MetricRegistry
from repro.net.deploy import (
    CONTROL_ADDRESS_BASE,
    DeploySpec,
    control_address,
    make_spec,
    parse_chaos_kill,
    participating_nodes,
    run_deploy,
    shard_nodes,
)
from repro.runtime import MonitoringRuntime, RuntimeConfig

#: Small-but-real workload shared by the e2e tests: enough nodes to
#: give every worker a shard, small enough to finish in seconds.
WORKLOAD = {"nodes": 16, "pool": 8, "attrs_per_node": 6, "tasks": 4, "seed": 3}
CONFIG = {"period_seconds": 0.05, "seed": 9}

#: Acceptance tolerance: deploy coverage within five percentage points
#: of the single-process runtime on the identical plan.
TOLERANCE = 0.05

RUN_SCHEMA_KEYS = {
    "requested_pairs",
    "periods",
    "coverage",
    "mean_percentage_error",
    "messages",
    "cost_units_spent",
    "values",
    "failure_events",
    "per_period",
    "wall_seconds",
    "metrics",
}


class TestShardNodes:
    def test_covers_every_node_exactly_once(self):
        nodes = list(range(17))
        shards = shard_nodes(nodes, 4)
        assert len(shards) == 4
        flat = [n for shard in shards for n in shard]
        assert sorted(flat) == nodes
        assert len(flat) == len(set(flat))

    def test_balanced_within_one(self):
        shards = shard_nodes(range(10), 3)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_nodes_leaves_empty_shards(self):
        shards = shard_nodes([1, 2], 4)
        assert sorted(n for s in shards for n in s) == [1, 2]
        assert len(shards) == 4

    def test_deterministic_regardless_of_input_order(self):
        assert shard_nodes([3, 1, 2], 2) == shard_nodes([2, 3, 1], 2)


class TestShardAssignmentCheck:
    def test_clean_split_passes(self):
        report = check_shard_assignment([1, 2, 3, 4], [[1, 3], [2, 4]])
        assert not report

    def test_missing_node_is_remo351(self):
        report = check_shard_assignment([1, 2, 3], [[1], [2]])
        assert report.has_errors
        assert "REMO351" in report.codes()

    def test_duplicate_assignment_is_remo351(self):
        report = check_shard_assignment([1, 2], [[1, 2], [2]])
        assert report.has_errors
        assert "REMO351" in report.codes()

    def test_reserved_address_is_remo352(self):
        report = check_shard_assignment([1], [[1, control_address(0)]])
        assert "REMO352" in report.codes()

    def test_endpoint_collision_is_remo353(self):
        report = check_shard_assignment(
            [1, 2],
            [[1], [2]],
            endpoints=[("127.0.0.1", 9000), ("127.0.0.1", 9000)],
        )
        assert report.has_errors
        assert "REMO353" in report.codes()

    def test_empty_shard_is_remo354_warning(self):
        report = check_shard_assignment([1], [[1], []])
        assert not report.has_errors
        assert "REMO354" in report.codes()


class TestDeploySpec:
    def test_round_trip_through_json(self, tmp_path):
        spec, plan, _cluster, report = make_spec(
            WORKLOAD, "remo", workers=2, periods=4, config=CONFIG,
            rundir=str(tmp_path),
        )
        assert not report.has_errors
        loaded = DeploySpec.load(spec.spec_path)
        assert loaded.as_dict() == spec.as_dict()
        assert loaded.workers == 2

    def test_children_rebuild_the_identical_plan(self, tmp_path):
        spec, plan, _cluster, _report = make_spec(
            WORKLOAD, "remo", workers=2, periods=4, config=CONFIG,
            rundir=str(tmp_path),
        )
        loaded = DeploySpec.load(spec.spec_path)
        _cluster2, _cost2, plan2 = loaded.build_plan()
        assert plan2.pairs == plan.pairs
        assert participating_nodes(plan2) == participating_nodes(plan)

    def test_directory_routes_every_address(self, tmp_path):
        spec, plan, _cluster, _report = make_spec(
            WORKLOAD, "remo", workers=2, periods=4, config=CONFIG,
            rundir=str(tmp_path),
        )
        directory = spec.build_directory()
        for node in participating_nodes(plan):
            assert directory.endpoint_of(node) is not None
        for rank in range(spec.workers):
            assert directory.endpoint_of(control_address(rank)) == (
                spec.worker_endpoints[rank]
            )

    def test_unknown_preset_rejected(self):
        spec = DeploySpec(
            workload={"preset": "warp"}, scheme="remo", periods=1,
            shards=[], worker_endpoints=[],
            collector_endpoint=None, rundir=".",
        )
        with pytest.raises(ValueError, match="preset"):
            spec.build_workload()


class TestParseChaosKill:
    def test_parses_rank_and_seconds(self):
        assert parse_chaos_kill("1:0.5") == (1, 0.5)

    def test_rejects_malformed(self):
        for bad in ("nonsense", "1", "x:1", "1:y", "-1:1"):
            with pytest.raises(ValueError):
                parse_chaos_kill(bad)


class TestDeployEndToEnd:
    def _single_process_coverage(self, plan, cluster):
        report = MonitoringRuntime(
            plan,
            cluster,
            registry=MetricRegistry(sorted(plan.pairs), seed=CONFIG["seed"]),
            config=RuntimeConfig(**CONFIG),
        ).run(6)
        return report.mean_coverage

    def test_two_worker_deploy_matches_single_process(self, tmp_path):
        spec, plan, cluster, report = make_spec(
            WORKLOAD, "remo", workers=2, periods=6, config=CONFIG,
            rundir=str(tmp_path),
        )
        assert not report.has_errors
        outcome = run_deploy(spec, plan=plan)
        assert outcome.restart_total() == 0
        assert outcome.worker_reports == 2

        merged = outcome.report.as_dict()
        assert RUN_SCHEMA_KEYS <= set(merged)
        assert merged["periods"] == 6
        assert len(merged["per_period"]) == 6

        baseline = self._single_process_coverage(plan, cluster)
        assert outcome.report.mean_coverage == pytest.approx(
            baseline, abs=TOLERANCE
        )

    def test_worker_kill_and_restart_completes(self, tmp_path):
        spec, plan, _cluster, report = make_spec(
            WORKLOAD, "remo", workers=2, periods=8, config=CONFIG,
            rundir=str(tmp_path),
        )
        assert not report.has_errors
        outcome = run_deploy(spec, plan=plan, chaos_kill={1: 0.15})
        assert outcome.restarts[1] >= 1
        assert len(outcome.report.samples) == 8
        # The run must still collect most of the plan despite the
        # mid-run restart (coverage is cumulative per period).
        assert outcome.report.final_coverage > 0.5


class TestDeployCli:
    def test_deploy_json_has_run_schema(self, tmp_path, capsys):
        rc = main(
            [
                "deploy",
                "--nodes", "12", "--tasks", "3", "--pool", "6",
                "--scheme", "remo",
                "--workers", "2", "--periods", "4", "--period-seconds", "0.05",
                "--seed", "4", "--rundir", str(tmp_path), "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "deploy"
        assert payload["workers"] == 2
        assert payload["restarts"] == {"0": 0, "1": 0}
        assert RUN_SCHEMA_KEYS <= set(payload)
        assert len(payload["per_period"]) == 4

    def test_deploy_rejects_malformed_chaos_spec(self):
        with pytest.raises(SystemExit):
            main(["deploy", "--chaos-kill", "nonsense"])


def test_control_addresses_are_reserved_negative():
    assert CONTROL_ADDRESS_BASE < 0
    assert control_address(0) == CONTROL_ADDRESS_BASE
    assert control_address(3) < CONTROL_ADDRESS_BASE - 2
